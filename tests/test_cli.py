"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENT_IDS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig02"])
        assert args.experiment == "fig02"
        assert args.scale == "small"
        assert args.seed == 7

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig02", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(ALL_EXPERIMENT_IDS)

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_one_small_experiment(self, capsys):
        # Smallest meaningful run: uses the SMALL scale TELE-popular
        # session (tens of seconds).
        assert main(["fig15", "--scale", "small", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "regenerated" in out
