"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import build_instrumentation, build_parser, main
from repro.experiments import ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig02"])
        assert args.experiment == "fig02"
        assert args.scale == "small"
        assert args.seed == 7
        assert args.metrics is None
        assert args.trace is None
        assert args.log_level is None
        assert args.progress is False

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig02", "--scale", "huge"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["fig02", "--metrics", "m.jsonl", "--trace", "t.jsonl",
             "--log-level", "warning", "--progress"])
        assert args.metrics == "m.jsonl"
        assert args.trace == "t.jsonl"
        assert args.log_level == "warning"
        assert args.progress is True

    def test_jobs_default_is_serial(self):
        assert build_parser().parse_args(["fig06"]).jobs == 1

    def test_jobs_flag(self):
        args = build_parser().parse_args(["fig06", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "--jobs" in capsys.readouterr().out


class TestInstrumentationFromFlags:
    def test_no_flags_means_none(self):
        args = build_parser().parse_args(["fig02"])
        assert build_instrumentation(args) is None

    def test_metrics_flag_enables_bundle(self, tmp_path):
        args = build_parser().parse_args(
            ["fig02", "--metrics", str(tmp_path / "m.jsonl")])
        obs = build_instrumentation(args)
        assert obs is not None and obs.enabled
        assert obs.profiler is not None
        obs.close()


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        ids = [line.split()[0] for line in lines]
        assert ids == list(ALL_EXPERIMENT_IDS)
        # Every line carries a one-line description from the registry.
        for line in lines:
            eid = line.split()[0]
            assert EXPERIMENT_DESCRIPTIONS[eid] in line

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_leading_run_token_is_accepted(self, capsys):
        # "repro run list" == "repro list"
        assert main(["run", "list"]) == 0
        assert "fig06" in capsys.readouterr().out

    def test_runs_one_small_experiment(self, capsys):
        # Smallest meaningful run: uses the SMALL scale TELE-popular
        # session (tens of seconds).
        assert main(["fig15", "--scale", "small", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "regenerated" in out

    def test_obs_flags_produce_parseable_files(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.jsonl"
        trace_path = tmp_path / "t.jsonl"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()

        names = set()
        with open(metrics_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"name", "type", "tags"} <= set(record)
                names.add(record["name"])
        assert len(names) >= 10
        layers = {name.split(".")[0] for name in names}
        assert {"sim", "net", "proto", "streaming"} <= layers

        events = set()
        with open(trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"t", "level", "event"} <= set(record)
                events.add(record["event"])
        assert "session_start" in events
        assert "session_end" in events

    def test_metrics_csv_extension_writes_csv(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.csv"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        header = metrics_path.read_text().splitlines()[0]
        assert header.startswith("name,")
