"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import (build_instrumentation, build_parser,
                       build_report_parser, main)
from repro.experiments import ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig02"])
        assert args.experiment == "fig02"
        assert args.scale == "small"
        assert args.seed == 7
        assert args.metrics is None
        assert args.trace is None
        assert args.log_level is None
        assert args.progress is False

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig02", "--scale", "huge"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["fig02", "--metrics", "m.jsonl", "--trace", "t.jsonl",
             "--log-level", "warning", "--progress"])
        assert args.metrics == "m.jsonl"
        assert args.trace == "t.jsonl"
        assert args.log_level == "warning"
        assert args.progress is True

    def test_jobs_default_is_serial(self):
        assert build_parser().parse_args(["fig06"]).jobs == 1

    def test_jobs_flag(self):
        args = build_parser().parse_args(["fig06", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "--jobs" in capsys.readouterr().out

    def test_spans_flag(self):
        args = build_parser().parse_args(
            ["fig02", "--spans", "out.json"])
        assert args.spans == "out.json"
        assert build_parser().parse_args(["fig02"]).spans is None

    def test_report_parser_defaults(self):
        args = build_report_parser().parse_args([])
        assert args.scale == "small"
        assert args.seed == 7
        assert args.out is None
        assert args.format is None
        assert args.trend == "benchmarks/results/trend.jsonl"
        assert args.no_trend is False


class TestInstrumentationFromFlags:
    def test_no_flags_means_none(self):
        args = build_parser().parse_args(["fig02"])
        assert build_instrumentation(args) is None

    def test_metrics_flag_enables_bundle(self, tmp_path):
        args = build_parser().parse_args(
            ["fig02", "--metrics", str(tmp_path / "m.jsonl")])
        obs = build_instrumentation(args)
        assert obs is not None and obs.enabled
        assert obs.profiler is not None
        obs.close()

    def test_spans_extension_picks_the_sink(self, tmp_path):
        from repro.obs import ChromeTraceSink, JsonlSpanSink
        args = build_parser().parse_args(
            ["fig02", "--spans", str(tmp_path / "s.json")])
        obs = build_instrumentation(args)
        assert isinstance(obs.spans, ChromeTraceSink)
        obs.close()
        args = build_parser().parse_args(
            ["fig02", "--spans", str(tmp_path / "s.jsonl")])
        obs = build_instrumentation(args)
        assert isinstance(obs.spans, JsonlSpanSink)
        obs.close()


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        ids = [line.split()[0] for line in lines]
        assert ids == list(ALL_EXPERIMENT_IDS)
        # Every line carries a one-line description from the registry.
        for line in lines:
            eid = line.split()[0]
            assert EXPERIMENT_DESCRIPTIONS[eid] in line

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_leading_run_token_is_accepted(self, capsys):
        # "repro run list" == "repro list"
        assert main(["run", "list"]) == 0
        assert "fig06" in capsys.readouterr().out

    def test_runs_one_small_experiment(self, capsys):
        # Smallest meaningful run: uses the SMALL scale TELE-popular
        # session (tens of seconds).
        assert main(["fig15", "--scale", "small", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "regenerated" in out

    def test_obs_flags_produce_parseable_files(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.jsonl"
        trace_path = tmp_path / "t.jsonl"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()

        names = set()
        with open(metrics_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"name", "type", "tags"} <= set(record)
                names.add(record["name"])
        assert len(names) >= 10
        layers = {name.split(".")[0] for name in names}
        assert {"sim", "net", "proto", "streaming"} <= layers

        events = set()
        with open(trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"t", "level", "event"} <= set(record)
                events.add(record["event"])
        assert "session_start" in events
        assert "session_end" in events

    def test_metrics_csv_extension_writes_csv(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.csv"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        header = metrics_path.read_text().splitlines()[0]
        assert header.startswith("name,")

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["id"] for r in records] == list(ALL_EXPERIMENT_IDS)
        for record in records:
            assert set(record) == {"id", "description", "paper"}
            assert record["description"] == \
                EXPERIMENT_DESCRIPTIONS[record["id"]]
        # Paper-target prose rides along where the registry has it.
        by_id = {r["id"]: r for r in records}
        assert "TELE" in by_id["fig02"]["paper"]

    def test_crashed_run_still_flushes_artifacts(self, tmp_path,
                                                 monkeypatch, capsys):
        """A mid-run crash must still close every sink: the spans file
        ends up valid (ChromeTraceSink writes on close) and the partial
        metrics are written."""
        import repro.cli as cli_module
        from repro.obs import read_chrome_trace, validate_chrome_trace

        def boom(*args, **kwargs):
            raise RuntimeError("mid-run crash")

        monkeypatch.setattr(cli_module, "run_experiment", boom)
        spans_path = tmp_path / "s.json"
        metrics_path = tmp_path / "m.jsonl"
        with pytest.raises(RuntimeError):
            main(["fig15", "--scale", "small",
                  "--spans", str(spans_path),
                  "--metrics", str(metrics_path)])
        capsys.readouterr()
        events = read_chrome_trace(str(spans_path))
        assert validate_chrome_trace(events) == []
        assert metrics_path.exists()


class TestReportCommand:
    @pytest.fixture
    def fake_scorecard(self, monkeypatch):
        from repro.experiments.scorecard import (PerfBlock, Scorecard,
                                                 Statistic)
        captured = {}

        def fake_build(scale, seed, label=""):
            captured["scale"] = scale
            captured["seed"] = seed
            card = Scorecard(scale=scale.value, seed=seed, label=label)
            card.statistics.append(
                Statistic("fig02", "byte locality (own-ISP share)",
                          0.6, (0.4, 1.0), paper=0.85))
            card.perf = PerfBlock(events_executed=10, wall_seconds=1.0,
                                  events_per_sec=10.0)
            return card

        monkeypatch.setattr("repro.experiments.scorecard.build_scorecard",
                            fake_build)
        return captured

    def test_report_writes_markdown_and_trend(self, tmp_path, capsys,
                                              fake_scorecard):
        out = tmp_path / "card.md"
        trend = tmp_path / "trend.jsonl"
        assert main(["report", "--scale", "small", "--seed", "3",
                     "--out", str(out), "--trend", str(trend)]) == 0
        err = capsys.readouterr().err
        assert "[scorecard: 1/1 in range" in err
        assert "trend record appended" in err
        assert fake_scorecard["seed"] == 3
        assert out.read_text().startswith("# Run-fidelity scorecard")
        record = json.loads(trend.read_text())
        assert record["kind"] == "scorecard"
        assert record["perf"]["events_executed"] == 10

    def test_report_html_by_extension(self, tmp_path, capsys,
                                      fake_scorecard):
        out = tmp_path / "card.html"
        assert main(["report", "--out", str(out), "--no-trend"]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_report_stdout_and_no_trend(self, tmp_path, capsys,
                                        fake_scorecard, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "--no-trend"]) == 0
        out = capsys.readouterr().out
        assert "# Run-fidelity scorecard" in out
        assert not (tmp_path / "benchmarks").exists()

    def test_run_report_spelling(self, tmp_path, capsys,
                                 fake_scorecard):
        # "repro run report" == "repro report".
        assert main(["run", "report", "--no-trend"]) == 0
        assert "scorecard" in capsys.readouterr().out.lower()

    def test_report_perf_from_artifacts(self, tmp_path, capsys,
                                        fake_scorecard):
        spans = tmp_path / "s.jsonl"
        spans.write_text('{"name":"a"}\n')
        assert main(["report", "--no-trend", "--spans-in", str(spans),
                     "--out", str(tmp_path / "card.md")]) == 0
        capsys.readouterr()
        text = (tmp_path / "card.md").read_text()
        assert "spans recorded: 1" in text
