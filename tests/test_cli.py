"""Tests for the command-line interface."""

import io
import json
import sys

import pytest

from repro import __version__
from repro.cli import (build_bench_parser, build_instrumentation,
                       build_parser, build_report_parser,
                       build_status_parser, build_top_parser, main)
from repro.experiments import ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig02"])
        assert args.experiment == "fig02"
        assert args.scale == "small"
        assert args.seed == 7
        assert args.metrics is None
        assert args.trace is None
        assert args.log_level is None
        assert args.progress is False

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig02", "--scale", "huge"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["fig02", "--metrics", "m.jsonl", "--trace", "t.jsonl",
             "--log-level", "warning", "--progress"])
        assert args.metrics == "m.jsonl"
        assert args.trace == "t.jsonl"
        assert args.log_level == "warning"
        assert args.progress is True

    def test_jobs_default_is_serial(self):
        assert build_parser().parse_args(["fig06"]).jobs == 1

    def test_jobs_flag(self):
        args = build_parser().parse_args(["fig06", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "--jobs" in capsys.readouterr().out

    def test_spans_flag(self):
        args = build_parser().parse_args(
            ["fig02", "--spans", "out.json"])
        assert args.spans == "out.json"
        assert build_parser().parse_args(["fig02"]).spans is None

    def test_report_parser_defaults(self):
        args = build_report_parser().parse_args([])
        assert args.scale == "small"
        assert args.seed == 7
        assert args.out is None
        assert args.format is None
        assert args.trend == "benchmarks/results/trend.jsonl"
        assert args.no_trend is False

    def test_progress_jsonl_flag(self):
        args = build_parser().parse_args(
            ["fig06", "--progress-jsonl", "p.jsonl"])
        assert args.progress_jsonl == "p.jsonl"
        assert build_parser().parse_args(["fig06"]).progress_jsonl is None

    def test_bench_parser_diff_and_threshold(self):
        parser = build_bench_parser()
        args = parser.parse_args(["--diff", "a.json", "b.json"])
        assert args.diff == ["a.json", "b.json"]
        assert args.threshold == 0.10
        args = parser.parse_args(["--diff"])
        assert args.diff == []
        args = parser.parse_args(["--threshold", "0.25"])
        assert args.diff is None
        assert args.threshold == 0.25

    def test_status_and_top_parsers(self):
        args = build_status_parser().parse_args(["p.jsonl", "--json"])
        assert args.path == "p.jsonl"
        assert args.json is True
        args = build_top_parser().parse_args(
            ["p.jsonl", "--interval", "0.5", "--iterations", "3"])
        assert args.interval == 0.5
        assert args.iterations == 3

    def test_experiment_help_lists_every_registered_id(self):
        # The help string is generated from the registry; drift between
        # the two is impossible by construction, and this pins it.
        help_text = build_parser().format_help()
        for experiment_id in ALL_EXPERIMENT_IDS:
            assert experiment_id in help_text


class TestRegistryCliSync:
    def test_every_experiment_has_a_description(self):
        assert set(EXPERIMENT_DESCRIPTIONS) == set(ALL_EXPERIMENT_IDS)
        for experiment_id, description in EXPERIMENT_DESCRIPTIONS.items():
            assert description.strip(), f"{experiment_id} undescribed"

    def test_list_outputs_cover_the_registry(self, capsys):
        assert main(["list"]) == 0
        plain = capsys.readouterr().out
        assert main(["list", "--json"]) == 0
        as_json = {r["id"] for r in json.loads(capsys.readouterr().out)}
        listed = {line.split()[0] for line
                  in plain.strip().splitlines()}
        assert listed == as_json == set(ALL_EXPERIMENT_IDS)

    def test_broken_pipe_exits_cleanly(self, monkeypatch):
        # `repro list | head` must not traceback when head exits.
        class _GonePipe:
            def write(self, data):
                raise BrokenPipeError
            def flush(self):
                raise BrokenPipeError
            def fileno(self):
                raise io.UnsupportedOperation("fileno")
        monkeypatch.setattr(sys, "stdout", _GonePipe())
        assert main(["list"]) == 0


class TestInstrumentationFromFlags:
    def test_no_flags_means_none(self):
        args = build_parser().parse_args(["fig02"])
        assert build_instrumentation(args) is None

    def test_metrics_flag_enables_bundle(self, tmp_path):
        args = build_parser().parse_args(
            ["fig02", "--metrics", str(tmp_path / "m.jsonl")])
        obs = build_instrumentation(args)
        assert obs is not None and obs.enabled
        assert obs.profiler is not None
        obs.close()

    def test_spans_extension_picks_the_sink(self, tmp_path):
        from repro.obs import ChromeTraceSink, JsonlSpanSink
        args = build_parser().parse_args(
            ["fig02", "--spans", str(tmp_path / "s.json")])
        obs = build_instrumentation(args)
        assert isinstance(obs.spans, ChromeTraceSink)
        obs.close()
        args = build_parser().parse_args(
            ["fig02", "--spans", str(tmp_path / "s.jsonl")])
        obs = build_instrumentation(args)
        assert isinstance(obs.spans, JsonlSpanSink)
        obs.close()


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        ids = [line.split()[0] for line in lines]
        assert ids == list(ALL_EXPERIMENT_IDS)
        # Every line carries a one-line description from the registry.
        for line in lines:
            eid = line.split()[0]
            assert EXPERIMENT_DESCRIPTIONS[eid] in line

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_leading_run_token_is_accepted(self, capsys):
        # "repro run list" == "repro list"
        assert main(["run", "list"]) == 0
        assert "fig06" in capsys.readouterr().out

    def test_runs_one_small_experiment(self, capsys):
        # Smallest meaningful run: uses the SMALL scale TELE-popular
        # session (tens of seconds).
        assert main(["fig15", "--scale", "small", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "regenerated" in out

    def test_obs_flags_produce_parseable_files(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.jsonl"
        trace_path = tmp_path / "t.jsonl"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()

        names = set()
        with open(metrics_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"name", "type", "tags"} <= set(record)
                names.add(record["name"])
        assert len(names) >= 10
        layers = {name.split(".")[0] for name in names}
        assert {"sim", "net", "proto", "streaming"} <= layers

        events = set()
        with open(trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                assert {"t", "level", "event"} <= set(record)
                events.add(record["event"])
        assert "session_start" in events
        assert "session_end" in events

    def test_metrics_csv_extension_writes_csv(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.csv"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        header = metrics_path.read_text().splitlines()[0]
        assert header.startswith("name,")

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["id"] for r in records] == list(ALL_EXPERIMENT_IDS)
        for record in records:
            assert set(record) == {"id", "description", "paper"}
            assert record["description"] == \
                EXPERIMENT_DESCRIPTIONS[record["id"]]
        # Paper-target prose rides along where the registry has it.
        by_id = {r["id"]: r for r in records}
        assert "TELE" in by_id["fig02"]["paper"]

    def test_crashed_run_still_flushes_artifacts(self, tmp_path,
                                                 monkeypatch, capsys):
        """A mid-run crash must still close every sink: the spans file
        ends up valid (ChromeTraceSink writes on close) and the partial
        metrics are written."""
        import repro.cli as cli_module
        from repro.obs import read_chrome_trace, validate_chrome_trace

        def boom(*args, **kwargs):
            raise RuntimeError("mid-run crash")

        monkeypatch.setattr(cli_module, "run_experiment", boom)
        spans_path = tmp_path / "s.json"
        metrics_path = tmp_path / "m.jsonl"
        with pytest.raises(RuntimeError):
            main(["fig15", "--scale", "small",
                  "--spans", str(spans_path),
                  "--metrics", str(metrics_path)])
        capsys.readouterr()
        events = read_chrome_trace(str(spans_path))
        assert validate_chrome_trace(events) == []
        assert metrics_path.exists()


class TestReportCommand:
    @pytest.fixture
    def fake_scorecard(self, monkeypatch):
        from repro.experiments.scorecard import (PerfBlock, Scorecard,
                                                 Statistic)
        captured = {}

        def fake_build(scale, seed, label=""):
            captured["scale"] = scale
            captured["seed"] = seed
            card = Scorecard(scale=scale.value, seed=seed, label=label)
            card.statistics.append(
                Statistic("fig02", "byte locality (own-ISP share)",
                          0.6, (0.4, 1.0), paper=0.85))
            card.perf = PerfBlock(events_executed=10, wall_seconds=1.0,
                                  events_per_sec=10.0)
            return card

        monkeypatch.setattr("repro.experiments.scorecard.build_scorecard",
                            fake_build)
        return captured

    def test_report_writes_markdown_and_trend(self, tmp_path, capsys,
                                              fake_scorecard):
        out = tmp_path / "card.md"
        trend = tmp_path / "trend.jsonl"
        assert main(["report", "--scale", "small", "--seed", "3",
                     "--out", str(out), "--trend", str(trend)]) == 0
        err = capsys.readouterr().err
        assert "[scorecard: 1/1 in range" in err
        assert "trend record appended" in err
        assert fake_scorecard["seed"] == 3
        assert out.read_text().startswith("# Run-fidelity scorecard")
        record = json.loads(trend.read_text())
        assert record["kind"] == "scorecard"
        assert record["perf"]["events_executed"] == 10

    def test_report_html_by_extension(self, tmp_path, capsys,
                                      fake_scorecard):
        out = tmp_path / "card.html"
        assert main(["report", "--out", str(out), "--no-trend"]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_report_stdout_and_no_trend(self, tmp_path, capsys,
                                        fake_scorecard, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "--no-trend"]) == 0
        out = capsys.readouterr().out
        assert "# Run-fidelity scorecard" in out
        assert not (tmp_path / "benchmarks").exists()

    def test_run_report_spelling(self, tmp_path, capsys,
                                 fake_scorecard):
        # "repro run report" == "repro report".
        assert main(["run", "report", "--no-trend"]) == 0
        assert "scorecard" in capsys.readouterr().out.lower()

    def test_report_perf_from_artifacts(self, tmp_path, capsys,
                                        fake_scorecard):
        spans = tmp_path / "s.jsonl"
        spans.write_text('{"name":"a"}\n')
        assert main(["report", "--no-trend", "--spans-in", str(spans),
                     "--out", str(tmp_path / "card.md")]) == 0
        capsys.readouterr()
        text = (tmp_path / "card.md").read_text()
        assert "spans recorded: 1" in text


class TestProgressTelemetry:
    def test_run_emits_wellformed_progress_stream(self, tmp_path, capsys):
        from repro.obs.live import read_progress
        path = tmp_path / "progress.jsonl"
        assert main(["fig15", "--scale", "small", "--seed", "3",
                     "--progress-jsonl", str(path)]) == 0
        err = capsys.readouterr().err
        assert "[progress (ok)" in err
        records = read_progress(str(path))
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_summary"
        assert "heartbeat" in kinds
        start = records[0]
        assert start["experiment"] == "fig15"
        assert start["seed"] == 3
        footer = records[-1]
        assert footer["status"] == "ok"
        assert footer["events_executed"] > 0
        assert footer["peak_rss_bytes"] > 0
        beat = next(r for r in records if r["kind"] == "heartbeat")
        assert beat["sim_end"] > beat["t"] > 0
        assert beat["peers_by_isp"]
        assert beat["rss_bytes"] > 0

    def test_footer_lands_on_crash(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli_module
        from repro.obs.live import read_progress

        def boom(*args, **kwargs):
            raise RuntimeError("mid-run crash")

        monkeypatch.setattr(cli_module, "run_experiment", boom)
        path = tmp_path / "progress.jsonl"
        with pytest.raises(RuntimeError):
            main(["fig15", "--progress-jsonl", str(path)])
        capsys.readouterr()
        footer = read_progress(str(path))[-1]
        assert footer["kind"] == "run_summary"
        assert footer["status"] == "crashed:RuntimeError"

    def test_footer_lands_on_keyboard_interrupt(self, tmp_path,
                                                monkeypatch, capsys):
        import repro.cli as cli_module
        from repro.obs.live import read_progress

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "run_experiment", interrupted)
        path = tmp_path / "progress.jsonl"
        with pytest.raises(KeyboardInterrupt):
            main(["fig15", "--progress-jsonl", str(path)])
        capsys.readouterr()
        footer = read_progress(str(path))[-1]
        assert footer["status"] == "interrupted"


class TestStatusCommand:
    def _write_stream(self, path, footer=True):
        lines = [
            {"kind": "run_start", "experiment": "fig02", "scale": "small",
             "seed": 7, "jobs": 1, "unix": 1000.0, "wall_seconds": 0.0},
            {"kind": "heartbeat", "t": 60.0, "sim_end": 240.0,
             "viewers": 9, "events_executed": 1200,
             "peers_by_isp": {"ChinaTelecom": 5}, "wall_seconds": 1.0},
        ]
        if footer:
            lines.append({"kind": "run_summary", "status": "ok",
                          "events_executed": 4800,
                          "peak_rss_bytes": 1 << 26, "wall_seconds": 4.0})
        path.write_text("".join(json.dumps(line) + "\n"
                                for line in lines))

    def test_status_on_finished_run(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        self._write_stream(path)
        assert main(["status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "state=finished" in out
        assert "experiment=fig02" in out

    def test_status_json(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        self._write_stream(path)
        assert main(["status", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["state"] == "finished"
        assert summary["events_executed"] == 4800

    def test_status_on_midflight_run_with_torn_tail(self, tmp_path,
                                                    capsys):
        # A live run flushing mid-record: the artifact ends in a torn
        # line and carries no footer.  status must still work and show
        # a running state with an ETA.
        path = tmp_path / "p.jsonl"
        self._write_stream(path, footer=False)
        with open(path, "a") as handle:
            handle.write('{"kind":"heartbeat","t":90.0,"wal')
        assert main(["status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "state=running" in out
        assert "ETA" in out
        assert "60s / 240s" in out  # the torn record was ignored

    def test_status_on_torn_only_first_line(self, tmp_path, capsys):
        # A run caught while flushing its very first record: the file
        # holds nothing but a torn fragment.  That is not "no records
        # yet" (the run IS emitting) and not corruption — status must
        # say so kindly and exit nonzero so scripts can retry.
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start","experiment":"fi')
        assert main(["status", str(path)]) == 1
        err = capsys.readouterr().err
        assert "no complete records yet" in err
        assert "Traceback" not in err

    def test_top_on_torn_only_first_line(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start","experiment":"fi')
        assert main(["top", str(path), "--interval", "0.01",
                     "--iterations", "2"]) == 1
        assert "no complete records yet" in capsys.readouterr().err

    def test_status_on_truly_empty_file_still_exits_zero(self, tmp_path,
                                                         capsys):
        path = tmp_path / "p.jsonl"
        path.write_text("")
        assert main(["status", str(path)]) == 0
        assert "no records yet" in capsys.readouterr().out

    def test_status_missing_file(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_status_corrupt_stream(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        path.write_text('not json\n{"kind":"heartbeat"}\n')
        assert main(["status", str(path)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_top_bounded_iterations(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        self._write_stream(path, footer=False)
        assert main(["top", str(path), "--interval", "0.01",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("state=running") == 2

    def test_top_exits_when_the_run_finishes(self, tmp_path, capsys):
        path = tmp_path / "p.jsonl"
        self._write_stream(path, footer=True)
        # No --iterations bound needed: the footer ends the loop.
        assert main(["top", str(path), "--interval", "0.01"]) == 0
        assert "state=finished" in capsys.readouterr().out
