"""Tests for the contribution-fairness analysis."""

import pytest

from repro.analysis.fairness import (FairnessReport, PeerFairness,
                                     analyze_fairness, gini_coefficient,
                                     session_fairness)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_total_inequality_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.01)

    def test_known_small_case(self):
        # For [0, 1]: G = 0.5.
        assert gini_coefficient([0.0, 1.0]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        a = gini_coefficient([1.0, 2.0, 3.0])
        b = gini_coefficient([10.0, 20.0, 30.0])
        assert a == pytest.approx(b)

    def test_all_zero_is_equal(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([1.0, -1.0])


class FakePeer:
    def __init__(self, address, uploaded, downloaded):
        self.address = address
        self.bytes_uploaded = uploaded
        self.buffer = type("B", (), {"bytes_received": downloaded})()


class TestFairnessReport:
    def test_free_rider_detection(self):
        peers = [FakePeer("a", uploaded=1000, downloaded=1000),
                 FakePeer("b", uploaded=10, downloaded=1000),
                 FakePeer("c", uploaded=2000, downloaded=1000)]
        report = analyze_fairness(peers)
        assert report.free_rider_fraction == pytest.approx(1 / 3)

    def test_share_ratio(self):
        peer = PeerFairness("a", uploaded_bytes=500,
                            downloaded_bytes=1000)
        assert peer.share_ratio == pytest.approx(0.5)
        idle = PeerFairness("b", uploaded_bytes=10, downloaded_bytes=0)
        assert idle.share_ratio is None

    def test_top10_share(self):
        peers = [FakePeer(f"p{i}", uploaded=1, downloaded=1)
                 for i in range(9)]
        peers.append(FakePeer("big", uploaded=91, downloaded=1))
        report = analyze_fairness(peers)
        assert report.top10_upload_share == pytest.approx(0.91)

    def test_render(self):
        report = analyze_fairness([FakePeer("a", 10, 10)])
        assert "Gini" in report.render()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_fairness([])


class TestSessionFairness:
    def test_real_session_has_plausible_inequality(self):
        from repro.workload import ScenarioConfig, run_session
        result = run_session(ScenarioConfig(seed=41, population=20,
                                            duration=300.0, warmup=120.0))
        report = session_fairness(result)
        assert len(report.peers) >= 20
        # Heterogeneous uplinks + latency weighting produce real but not
        # degenerate inequality.
        assert 0.05 < report.upload_gini < 0.95
        assert 0.0 <= report.top10_upload_share <= 1.0
