"""Tests for the multi-day campaign machinery (Figure 6 plumbing).

Uses a micro-campaign (2 days, tiny populations, short sessions) so the
structure — per-day sessions, per-ISP averaging over probe pairs, panel
rendering — is validated quickly; the benchmark suite runs the real
28-day shape.
"""

import copy

import pytest

from repro.experiments.fig06 import Figure6, figure6
from repro.network.isp import ISPCategory
from repro.obs import Instrumentation, RingSink
from repro.streaming.video import Popularity
from repro.workload.campaign import (CampaignConfig, CampaignResult,
                                     _swing_foreign_share, run_campaign)
from repro.workload.diurnal import DiurnalPattern
from repro.workload.popularity import popular_channel_mix


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(
        seed=19,
        days=2,
        popular_population=14,
        unpopular_population=8,
        session_duration=150.0,
        warmup=90.0,
    )
    return run_campaign(config)


class TestCampaignStructure:
    def test_day_counts(self, campaign):
        assert len(campaign.popular) == 2
        assert len(campaign.unpopular) == 2

    def test_each_day_has_all_isp_curves(self, campaign):
        for day in campaign.popular + campaign.unpopular:
            assert set(day.locality_by_isp) == {"CNC", "TELE", "Mason"}

    def test_localities_are_percentages(self, campaign):
        for day in campaign.popular + campaign.unpopular:
            for value in day.locality_by_isp.values():
                assert 0.0 <= value <= 100.0

    def test_population_positive_and_varying_inputs(self, campaign):
        for day in campaign.popular:
            assert day.population >= 10

    def test_series_accessor(self, campaign):
        series = campaign.series(Popularity.POPULAR, "TELE")
        assert len(series) == 2
        missing = campaign.series(Popularity.POPULAR, "Nowhere")
        assert missing == [0.0, 0.0]


class TestFigure6Wrapper:
    def test_render_contains_both_panels(self, campaign):
        # figure6() runs its own campaign; wrap the existing result.
        from repro.experiments.fig06 import Figure6
        fig = Figure6(result=campaign)
        text = fig.render()
        assert "(a) popular" in text
        assert "(b) unpopular" in text
        assert "Mason" in text

    def test_averages_and_swings(self, campaign):
        from repro.experiments.fig06 import Figure6
        fig = Figure6(result=campaign)
        avg = fig.average_locality(Popularity.POPULAR, "TELE")
        assert avg is None or 0.0 <= avg <= 100.0
        swing = fig.variability(Popularity.POPULAR, "Mason")
        assert swing >= 0.0


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        config = CampaignConfig(seed=23, days=1, popular_population=8,
                                unpopular_population=6,
                                session_duration=120.0, warmup=60.0)
        a = run_campaign(config)
        b = run_campaign(config)
        assert (a.popular[0].locality_by_isp
                == b.popular[0].locality_by_isp)
        assert a.popular[0].population == b.popular[0].population


class TestConfigMutationSafety:
    """A config object is input, never scratch space: campaigns must
    leave it untouched so it can be reused for identical reruns."""

    TINY = dict(seed=29, days=1, popular_population=8,
                unpopular_population=6, session_duration=120.0,
                warmup=60.0)

    def test_config_unchanged_and_reusable(self):
        config = CampaignConfig(**self.TINY)
        snapshot = copy.deepcopy(config)
        first = run_campaign(config)
        assert config == snapshot
        second = run_campaign(config)
        assert first.popular == second.popular
        assert first.unpopular == second.unpopular

    def test_parallel_run_leaves_config_unchanged(self):
        config = CampaignConfig(**self.TINY)
        snapshot = copy.deepcopy(config)
        run_campaign(config, jobs=2)
        assert config == snapshot

    def test_swing_foreign_share_copies_the_mix(self):
        mix = popular_channel_mix()
        before = mix.categories[ISPCategory.FOREIGN].weight
        swung = _swing_foreign_share(mix, 3.0)
        assert mix.categories[ISPCategory.FOREIGN].weight == before
        assert (swung.categories[ISPCategory.FOREIGN].weight
                == pytest.approx(before * 3.0))
        # Non-foreign categories are shared content-wise but the input
        # mapping itself must not have been touched.
        assert mix == popular_channel_mix()

    def test_figure6_does_not_mutate_caller_config(self):
        config = CampaignConfig(**self.TINY)
        obs = Instrumentation(trace=RingSink())
        figure6(config, instrumentation=obs)
        assert config.instrumentation is None
