"""Behavioural tests pinning the paper's protocol observations.

Each test corresponds to a sentence in the paper's Section 2: the gossip
cadence, the 60-entry list cap, the tracker back-off, and the enclosed
own-list in peer-list requests.
"""

import pytest

from repro.capture import (PEER_LIST_REPLY, PEER_LIST_REQUEST,
                           TRACKER_QUERY, Direction, ProbeSniffer)
from repro.protocol import messages as m
from repro.sim import Simulator
from repro.workload.scenario import ScenarioConfig, SessionScenario


@pytest.fixture(scope="module")
def session():
    """A small session with a sniffed probe, shared by the assertions."""
    config = ScenarioConfig(seed=29, population=20, duration=360.0,
                            warmup=120.0)
    return SessionScenario(config).run()


class TestGossipCadence:
    def test_requests_roughly_every_20_seconds(self, session):
        """"a peer periodically queries its neighbors ... once every 20
        seconds" — per gossip round the probe sends `gossip_fanout`
        requests, so the per-round spacing of outgoing bursts is ~20s."""
        trace = session.probe().trace
        request_times = sorted(r.time for r in
                               trace.outgoing(PEER_LIST_REQUEST))
        assert len(request_times) >= 6
        # Collapse each burst (fanout requests share a round).
        rounds = [request_times[0]]
        for t in request_times[1:]:
            if t - rounds[-1] > 5.0:
                rounds.append(t)
        gaps = [b - a for a, b in zip(rounds, rounds[1:])]
        average_gap = sum(gaps) / len(gaps)
        config = session.config.protocol
        assert (config.gossip_interval * 0.5
                <= average_gap
                <= config.gossip_interval * 2.0)

    def test_requests_enclose_own_list(self, session):
        """"by sending the peer list maintained by itself"."""
        trace = session.probe().trace
        outgoing = trace.outgoing(PEER_LIST_REQUEST)
        # After warm-up the probe has neighbors to enclose.
        late = [r for r in outgoing if r.time > outgoing[0].time + 60.0]
        assert any(len(r.payload.enclosed) > 0 for r in late)


class TestListCap:
    def test_no_list_exceeds_60_entries(self, session):
        trace = session.probe().trace
        for record in trace.incoming(PEER_LIST_REPLY):
            assert len(record.payload.peers) <= 60
        for record in trace.incoming("TrackerReply"):
            assert len(record.payload.peers) <= 60


class TestTrackerBackoff:
    def test_query_rate_drops_after_startup(self, session):
        """"a peer significantly reduces the frequency of querying
        tracker servers" once playback is satisfactory."""
        trace = session.probe().trace
        queries = [r.time for r in trace.outgoing(TRACKER_QUERY)]
        assert queries, "no tracker queries captured"
        session_start = queries[0]
        duration = session.config.duration
        early = [t for t in queries
                 if t - session_start < duration * 0.3]
        late = [t for t in queries
                if t - session_start >= duration * 0.7]
        # The initial burst queries all five groups; the steady state
        # should be much quieter per unit time.
        early_rate = len(early) / (duration * 0.3)
        late_rate = len(late) / (duration * 0.3)
        assert early_rate > late_rate

    def test_peer_mainly_relies_on_neighbors(self, session):
        """"it mainly connects to new peers referred by its neighbors":
        most received list entries come from peers, not trackers."""
        from repro.analysis.locality import returned_by_source
        buckets = returned_by_source(session.probe().trace,
                                     session.directory,
                                     session.infrastructure)
        from_peers = sum(sum(c.values()) for bucket, c in buckets.items()
                         if bucket.endswith("_p"))
        from_trackers = sum(sum(c.values())
                            for bucket, c in buckets.items()
                            if bucket.endswith("_s"))
        assert from_peers > from_trackers


class TestConnectOnArrival:
    def test_hello_follows_list_quickly(self, session):
        """"always tries to connect to the listed peers as soon as the
        list is received": some Hello leaves within a second of a list
        arriving."""
        trace = session.probe().trace
        replies = [r.time for r in trace.incoming(PEER_LIST_REPLY,
                                                  "TrackerReply")]
        hellos = [r.time for r in trace.outgoing("Hello")]
        assert hellos, "probe never attempted connections"
        quick = 0
        for hello_time in hellos:
            if any(0.0 <= hello_time - t <= 1.0 for t in replies):
                quick += 1
        assert quick >= 1
