"""Determinism equivalence for the hot-path fast paths.

The engine/transport/scheduler overhaul is pure mechanics: pooled
events, single-event delivery scheduling, cached pair classification,
and bitmask sub-piece sets must not move a single RNG draw or reorder a
single event.  These tests run the same seed-11 session under every
configuration the fast paths special-case — taps installed or not,
faults armed or not, observability on or off, campaign ``jobs`` 1 or
2 — and assert the deterministic outputs are identical (or, for the
tap/obs axes, identical *to the baseline*, proving observers are pure
readers).
"""

import hashlib

from repro.experiments.fig06 import Figure6
from repro.faults import FaultSchedule, LinkDegradation, ServerOutage
from repro.obs import Instrumentation, MetricsRegistry
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig, run_campaign
from repro.workload.scenario import ScenarioConfig, SessionScenario


def _config(**overrides) -> ScenarioConfig:
    base = dict(seed=11, population=16, warmup=60.0, duration=120.0)
    base.update(overrides)
    return ScenarioConfig(**base)


def _counters(result):
    """Every deterministic counter the fast paths touch."""
    sim = result.deployment.sim
    udp = result.deployment.internet.udp
    return (sim.events_executed, udp.datagrams_sent,
            udp.datagrams_delivered, udp.datagrams_lost,
            udp.datagrams_dropped_uplink, udp.datagrams_dropped_offline,
            udp.datagrams_dropped_fault, udp.bytes_delivered)


def _run(**overrides):
    return SessionScenario(_config(**overrides)).run()


def _fault_schedule() -> FaultSchedule:
    return FaultSchedule(events=(
        ServerOutage(target="trackers", start=80.0, duration=30.0),
        LinkDegradation(pair_class="intra_isp", start=100.0, duration=40.0,
                        latency_multiplier=2.0, extra_loss=0.3),
    ))


class TestSessionEquivalence:
    def test_run_twice_byte_identical(self):
        assert _counters(_run()) == _counters(_run())

    def test_tap_installed_is_pure_observer(self):
        # The transport skips every _notify call when no tap is
        # installed; installing one must change nothing but the
        # observations themselves.
        baseline = _counters(_run())
        events = []

        def hook(sim, deployment, manager, probe_peers):
            deployment.internet.udp.add_tap(
                lambda kind, datagram, time: events.append(kind))

        tapped = _run(run_hook=hook)
        assert _counters(tapped) == baseline
        # ... and the tap really fired, so the gated path still works.
        assert "send" in events or "recv" in events

    def test_observability_on_is_pure_observer(self):
        baseline = _counters(_run())
        obs = Instrumentation(metrics=MetricsRegistry())
        assert _counters(_run(instrumentation=obs)) == baseline

    def test_faulted_run_twice_byte_identical(self):
        first = _run(faults=_fault_schedule())
        second = _run(faults=_fault_schedule())
        assert _counters(first) == _counters(second)
        # The fault fast paths are still live: the outage filter dropped
        # datagrams and the injector completed both fault windows.
        assert first.deployment.internet.udp.datagrams_dropped_fault > 0
        assert first.injector.faults_begun == 2
        assert first.injector.faults_ended == 2

    def test_link_degradation_still_bites_through_pair_cache(self):
        # The latency model caches per-ASN-pair classification/params;
        # a PathOverride must still take effect (extra loss visibly
        # changes the loss counter vs the baseline run).
        baseline = _run()
        degraded = _run(faults=_fault_schedule())
        assert (degraded.deployment.internet.udp.datagrams_lost
                > baseline.deployment.internet.udp.datagrams_lost)

    def test_taps_and_faults_together_match_faults_alone(self):
        plain = _counters(_run(faults=_fault_schedule()))

        def hook(sim, deployment, manager, probe_peers):
            deployment.internet.udp.add_tap(lambda *args: None)

        tapped = _counters(_run(faults=_fault_schedule(), run_hook=hook))
        assert tapped == plain


class TestPathSelectionEquivalence:
    """The env switches flip implementations, never outcomes.

    ``REPRO_REFERENCE_PATH=1`` forces the unbatched dispatch and the
    full-rebuild scheduler; ``REPRO_FASTPATH_VERIFY=1`` runs the fast
    paths while asserting them against a from-scratch rebuild on every
    use.  Both are sampled at construction time, so a freshly built
    session under either variable must reproduce the fast path's
    deterministic counters exactly.
    """

    def test_reference_path_matches_fast_path(self, monkeypatch):
        fast = _counters(_run())
        monkeypatch.setenv("REPRO_REFERENCE_PATH", "1")
        assert _counters(_run()) == fast

    def test_verify_mode_matches_fast_path(self, monkeypatch):
        fast = _counters(_run())
        monkeypatch.setenv("REPRO_FASTPATH_VERIFY", "1")
        assert _counters(_run()) == fast

    def test_reference_path_matches_under_faults(self, monkeypatch):
        # Cooldowns, loss overrides and fault drops exercise every
        # invalidation edge of the incremental scheduler view.
        fast = _counters(_run(faults=_fault_schedule()))
        monkeypatch.setenv("REPRO_REFERENCE_PATH", "1")
        assert _counters(_run(faults=_fault_schedule())) == fast


class TestCampaignEquivalence:
    CONFIG = dict(seed=11, days=2, popular_population=8,
                  unpopular_population=5, session_duration=90.0,
                  warmup=45.0)

    @staticmethod
    def _digests(result):
        table = Figure6(result=result).render()
        parts = []
        for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
            for curve in ("CNC", "TELE", "Mason"):
                parts.append(",".join(f"{value:.9e}" for value
                                      in result.series(popularity, curve)))
        return (hashlib.sha256(table.encode()).hexdigest(),
                hashlib.sha256("|".join(parts).encode()).hexdigest())

    def test_jobs_1_and_2_identical(self):
        serial = run_campaign(CampaignConfig(**self.CONFIG), jobs=1)
        parallel = run_campaign(CampaignConfig(**self.CONFIG), jobs=2)
        assert self._digests(serial) == self._digests(parallel)
