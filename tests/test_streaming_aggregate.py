"""Streaming aggregation: exact equivalence and bounded memory.

A month-scale campaign cannot hold every day's artifact in memory to
aggregate at the end.  :class:`StreamingAggregator` folds artifacts one
at a time; these tests pin its two contractual properties:

* the streamed fold is *exactly* ``aggregate_metrics`` over the same
  rows — bootstrap confidence intervals included, not approximately;
* folding N artifacts keeps RSS flat even when each artifact is
  individually large (measured in a clean subprocess so this process's
  own high-water mark cannot mask a leak).
"""

import json
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.analysis.aggregate import (KIND_METRICS, SessionMetrics,
                                      StreamingAggregator,
                                      aggregate_metrics,
                                      read_metrics_artifact,
                                      write_metrics_artifact)
from repro.checkpoint import read_artifact, write_artifact

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _rows(count=9):
    """Deterministic per-session metrics with realistic gaps (every
    third row lacks top10/correlation, as short sessions do)."""
    rows = []
    for index in range(count):
        sparse = index % 3 == 2
        rows.append(SessionMetrics(
            seed=11 + index,
            locality=0.55 + 0.03 * index,
            data_transactions=900 + 17 * index,
            top10_byte_share=None if sparse else 0.6 + 0.02 * index,
            rtt_correlation=None if sparse else -0.4 + 0.05 * index,
            probe_continuity=0.9 + 0.01 * index,
        ))
    return rows


class TestExactEquivalence:
    def test_fold_matches_one_shot_aggregation(self):
        rows = _rows()
        aggregator = StreamingAggregator()
        aggregator.add_many(rows)
        assert aggregator.result() == aggregate_metrics(rows)

    def test_incremental_adds_match_bulk(self):
        rows = _rows()
        one_by_one = StreamingAggregator()
        for row in rows:
            one_by_one.add(row)
        bulk = StreamingAggregator()
        bulk.add_many(rows)
        assert len(one_by_one) == len(bulk) == len(rows)
        assert one_by_one.result() == bulk.result()

    def test_chunked_artifacts_match_one_shot(self, tmp_path):
        rows = _rows(10)
        chunks = [rows[0:4], rows[4:7], rows[7:10]]
        aggregator = StreamingAggregator()
        for index, chunk in enumerate(chunks):
            path = tmp_path / f"day-{index}.json"
            write_metrics_artifact(path, chunk)
            assert aggregator.add_artifact(path) == len(chunk)
        assert aggregator.result() == aggregate_metrics(rows)

    def test_resamples_flow_through(self):
        rows = _rows()
        aggregator = StreamingAggregator(resamples=50)
        aggregator.add_many(rows)
        result = aggregator.result()
        assert result.locality_mean.resamples == 50
        assert result == aggregate_metrics(rows, resamples=50)

    def test_empty_fold_refuses_to_aggregate(self):
        with pytest.raises(ValueError, match="at least one seed"):
            StreamingAggregator().result()

    def test_artifact_round_trip_is_exact(self, tmp_path):
        rows = _rows()
        path = tmp_path / "metrics.json"
        write_metrics_artifact(path, rows)
        assert read_metrics_artifact(path) == rows


# ----------------------------------------------------------------------
# Memory bound
# ----------------------------------------------------------------------
_FOLD_CHILD = """\
import resource
import sys

sys.path.insert(0, sys.argv[1])
from repro.analysis.aggregate import StreamingAggregator

paths = sys.argv[2:]
baseline = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
aggregator = StreamingAggregator(resamples=50)
for path in paths:
    aggregator.add_artifact(path)
result = aggregator.result()
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(len(aggregator), peak - baseline)
"""

#: Artifacts in the fold and junk payload per artifact.
_ARTIFACTS = 20
_PAD_BYTES = 4_000_000


class TestMemoryBound:
    def test_fold_rss_stays_flat(self, tmp_path):
        """Fold 20 artifacts of ~4 MB each (~80 MB total) in a clean
        subprocess: peak RSS growth must stay far below the total —
        only one artifact may ever be resident."""
        rows = _rows(3)
        padding = "x" * _PAD_BYTES
        paths = []
        for index in range(_ARTIFACTS):
            path = tmp_path / f"day-{index:02d}.json"
            write_artifact(path, KIND_METRICS,
                           {"metrics": [asdict(r) for r in rows],
                            "padding": padding})
            paths.append(str(path))
        completed = subprocess.run(
            [sys.executable, "-c", _FOLD_CHILD, SRC, *paths],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr
        folded, grew_kib = map(int, completed.stdout.split())
        assert folded == _ARTIFACTS * len(rows)
        total_kib = _ARTIFACTS * _PAD_BYTES // 1024
        # Holding every payload would grow RSS by >= ~78 MiB; one
        # resident artifact plus parse scratch stays well under half.
        assert grew_kib < total_kib // 2, (
            f"fold grew RSS by {grew_kib} KiB over a {total_kib} KiB "
            f"input set — artifacts are being retained")

    def test_padded_artifact_still_validates(self, tmp_path):
        """The RSS harness rides on real artifacts: padding must not
        defeat digest verification."""
        path = tmp_path / "padded.json"
        write_artifact(path, KIND_METRICS,
                       {"metrics": [asdict(r) for r in _rows(1)],
                        "padding": "x" * 1000})
        payload = read_artifact(path, KIND_METRICS)
        assert len(payload["metrics"]) == 1
        envelope = json.loads(path.read_text())
        envelope["payload"]["padding"] = "y" * 1000
        path.write_text(json.dumps(envelope))
        from repro.checkpoint import CheckpointError
        with pytest.raises(CheckpointError, match="digest mismatch"):
            read_artifact(path, KIND_METRICS)
