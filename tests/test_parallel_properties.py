"""Property tests: job completion order can never leak into results.

The merge layer is the only part of the parallel runner that stands
between worker nondeterminism (completion order, which pool round a job
landed in) and the determinism contract, so it is tested exhaustively:
for *any* permutation of completion order, the merged output is the
same ordered mapping, and the assembled :class:`CampaignResult` places
every day by its index.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import merge_by_key
from repro.streaming.video import Popularity
from repro.workload.campaign import (CampaignConfig, DailyLocality,
                                     assemble_campaign)

# Hashable, collision-friendly key universe (ints, strings, tuples —
# the shapes real jobs use: days, labels, (index, seed) pairs).
_KEYS = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.tuples(st.text(max_size=4), st.integers(0, 50)),
)


@st.composite
def keyed_results(draw):
    keys = draw(st.lists(_KEYS, min_size=1, max_size=12, unique=True))
    values = draw(st.lists(st.integers(), min_size=len(keys),
                           max_size=len(keys)))
    return keys, dict(zip(keys, values))


@given(case=keyed_results(), order=st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_any_completion_order_merges_identically(case, order):
    keys, results = case
    # "Completion order" = the insertion order of the results mapping.
    shuffled_keys = list(results)
    order.shuffle(shuffled_keys)
    shuffled_results = {key: results[key] for key in shuffled_keys}

    merged = merge_by_key(keys, shuffled_results)
    baseline = merge_by_key(keys, results)
    assert list(merged.items()) == list(baseline.items())
    assert list(merged) == list(keys)


@given(case=keyed_results(), missing_index=st.integers(0, 11))
@settings(max_examples=50, deadline=None)
def test_missing_result_always_detected(case, missing_index):
    keys, results = case
    victim = keys[missing_index % len(keys)]
    del results[victim]
    try:
        merge_by_key(keys, results)
    except KeyError:
        pass
    else:  # pragma: no cover - the assertion documents the contract
        raise AssertionError("merge accepted an incomplete result set")


@st.composite
def campaign_days(draw):
    days = draw(st.integers(1, 6))
    locality = st.dictionaries(
        st.sampled_from(["CNC", "TELE", "Mason"]),
        st.floats(0.0, 100.0, allow_nan=False), min_size=3, max_size=3)
    merged = {}
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for day in range(days):
            merged[(popularity.value, day)] = DailyLocality(
                day=day, popularity=popularity,
                population=draw(st.integers(10, 500)),
                locality_by_isp=draw(locality))
    return days, merged


@given(case=campaign_days(), order=st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_campaign_assembly_ignores_completion_order(case, order):
    days, merged = case
    config = CampaignConfig(days=days)

    shuffled_keys = list(merged)
    order.shuffle(shuffled_keys)
    shuffled = {key: merged[key] for key in shuffled_keys}

    result = assemble_campaign(config, shuffled)
    baseline = assemble_campaign(config, merged)
    assert result.popular == baseline.popular
    assert result.unpopular == baseline.unpopular
    # Day i of each panel is the DailyLocality whose key said day i.
    for index, daily in enumerate(result.popular):
        assert daily is merged[(Popularity.POPULAR.value, index)]
    for index, daily in enumerate(result.unpopular):
        assert daily is merged[(Popularity.UNPOPULAR.value, index)]
