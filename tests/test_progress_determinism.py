"""Progress-bus determinism: telemetry must never change the science.

Two contracts:

* a campaign with ``--progress-jsonl`` attached renders byte-identical
  results (Figure 6 table, locality series) to an uninstrumented run of
  the same seed — the bus observes, it never perturbs;
* the deterministic projection of the progress stream
  (:func:`repro.obs.live.deterministic_records`) is identical between a
  serial run and a ``--jobs 2`` run of the same campaign — mode changes
  which *telemetry* records exist (worker processes carry no bus), not
  what the workload reports.
"""

import dataclasses

from repro.experiments.fig06 import Figure6
from repro.obs import Instrumentation, ProgressBus
from repro.obs.live import (KIND_CAMPAIGN_START, KIND_DAY_COMPLETE,
                            deterministic_records, read_progress)
from repro.workload.campaign import CampaignConfig, run_campaign

TINY = CampaignConfig(seed=11, days=2, popular_population=10,
                      unpopular_population=6, session_duration=120.0,
                      warmup=60.0)


def _run(tmp_path, name, jobs=1, with_bus=True):
    path = tmp_path / f"{name}.jsonl"
    instrumentation = None
    if with_bus:
        instrumentation = Instrumentation(progress_bus=ProgressBus(
            str(path)))
    config = dataclasses.replace(TINY, instrumentation=instrumentation)
    result = run_campaign(config, jobs=jobs)
    if instrumentation is not None:
        instrumentation.close()
    return result, path


class TestTelemetryNeutrality:
    def test_campaign_output_identical_with_bus_on_and_off(self, tmp_path):
        bare, _ = _run(tmp_path, "bare", with_bus=False)
        with_bus, path = _run(tmp_path, "bus", with_bus=True)
        assert Figure6(result=bare).render() == \
            Figure6(result=with_bus).render()
        for daily_bare, daily_bus in zip(
                bare.popular + bare.unpopular,
                with_bus.popular + with_bus.unpopular):
            assert daily_bare.locality_by_isp == daily_bus.locality_by_isp
            assert daily_bare.population == daily_bus.population
        # And the stream actually recorded the campaign.
        kinds = [r["kind"] for r in read_progress(str(path))]
        assert kinds.count(KIND_DAY_COMPLETE) == 2 * TINY.days
        assert KIND_CAMPAIGN_START in kinds

    def test_serial_vs_jobs2_streams_agree_deterministically(self, tmp_path):
        serial_result, serial_path = _run(tmp_path, "serial", jobs=1)
        parallel_result, parallel_path = _run(tmp_path, "parallel", jobs=2)
        assert Figure6(result=serial_result).render() == \
            Figure6(result=parallel_result).render()

        serial_view = deterministic_records(read_progress(str(serial_path)))
        parallel_view = deterministic_records(
            read_progress(str(parallel_path)))
        assert serial_view == parallel_view
        # The view keeps the workload records (campaign metadata, every
        # day's results) — it is not vacuously empty.
        kinds = [r["kind"] for r in serial_view]
        assert kinds.count(KIND_DAY_COMPLETE) == 2 * TINY.days

    def test_day_records_carry_locality_in_day_order(self, tmp_path):
        _, path = _run(tmp_path, "ordered", jobs=2)
        days = [r for r in read_progress(str(path))
                if r["kind"] == KIND_DAY_COMPLETE]
        assert [d["day"] for d in days] == [1, 2, 1, 2]
        assert [d["popularity"] for d in days] == \
            ["popular", "popular", "unpopular", "unpopular"]
        for day in days:
            assert set(day["locality_by_isp"]) == {"CNC", "TELE", "Mason"}


class TestPerIspKeyOrdering:
    """Per-ISP mappings in the stream must be emitted key-sorted.

    JSON objects preserve insertion order through a round-trip, so a
    sorted emission order is what makes two streams (or two runs)
    byte-comparable without any reader-side normalisation.  Checked for
    both ``--jobs`` modes: serial streams carry heartbeats, parallel
    streams carry only parent-side records, and every per-ISP dict in
    either must already be ordered.
    """

    @staticmethod
    def _assert_isp_maps_sorted(records):
        checked = 0
        for record in records:
            for field in ("peers_by_isp", "locality_by_isp"):
                mapping = record.get(field)
                if mapping:
                    keys = list(mapping)
                    assert keys == sorted(keys), (record["kind"], field,
                                                  keys)
                    checked += 1
        return checked

    def test_heartbeat_and_day_isp_keys_sorted_serial(self, tmp_path):
        _, path = _run(tmp_path, "keys-serial", jobs=1)
        records = read_progress(str(path))
        heartbeats = [r for r in records if r["kind"] == "heartbeat"]
        assert heartbeats, "serial run emitted no heartbeats"
        assert all("peers_by_isp" in beat for beat in heartbeats)
        assert self._assert_isp_maps_sorted(records) >= len(heartbeats)

    def test_day_isp_keys_sorted_jobs2(self, tmp_path):
        _, path = _run(tmp_path, "keys-jobs2", jobs=2)
        records = read_progress(str(path))
        days = [r for r in records if r["kind"] == KIND_DAY_COMPLETE]
        assert days, "parallel run emitted no day records"
        assert self._assert_isp_maps_sorted(records) >= len(days)

    def test_ordering_survives_a_json_round_trip(self, tmp_path):
        import json
        _, path = _run(tmp_path, "keys-roundtrip", jobs=1)
        for line in open(path, encoding="utf-8"):
            record = json.loads(line)
            assert json.loads(json.dumps(record)) == record
            self._assert_isp_maps_sorted([record])
