"""Tests for the extension features: top-peer pinning and the ISP-aware
tracker, plus the ablation plumbing around them."""

import dataclasses

import pytest

from repro.baselines.isp_tracker import IspAwareTrackerServer
from repro.network.builder import build_internet
from repro.network.isp import ISPCategory
from repro.protocol import messages as m
from repro.protocol.config import ProtocolConfig
from repro.sim import Simulator
from repro.workload import ScenarioConfig, run_session


class TestPinningConfig:
    def test_default_off(self):
        assert ProtocolConfig().pin_top_responders == 0.0

    def test_pinned_session_runs(self):
        protocol = dataclasses.replace(ProtocolConfig(),
                                       pin_top_responders=0.10)
        result = run_session(ScenarioConfig(
            seed=17, population=14, duration=180.0, warmup=80.0,
            protocol=protocol))
        probe = result.probe()
        assert len(probe.report.data) > 0

    def test_pinned_addresses_pick_fastest(self):
        from repro.network.bandwidth import CABLE
        from repro.protocol.peer import PPLivePeer
        from repro.streaming import LiveChannel

        sim = Simulator(seed=1)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        protocol = dataclasses.replace(ProtocolConfig(),
                                       pin_top_responders=0.10)
        peer = PPLivePeer(sim, internet.udp,
                          internet.allocator.allocate(tele), tele, CABLE,
                          protocol, LiveChannel(1, "x"),
                          bootstrap_address="1.2.3.4")
        fast = peer.neighbors.add("1.0.0.50", now=0.0)
        slow = peer.neighbors.add("1.0.0.51", now=0.0)
        fast.record_response(0.1, alpha=1.0)
        slow.record_response(2.0, alpha=1.0)
        pinned = peer._pinned_addresses()
        assert "1.0.0.50" in pinned
        assert "1.0.0.51" not in pinned

    def test_no_history_no_pins(self):
        from repro.network.bandwidth import CABLE
        from repro.protocol.peer import PPLivePeer
        from repro.streaming import LiveChannel

        sim = Simulator(seed=1)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        protocol = dataclasses.replace(ProtocolConfig(),
                                       pin_top_responders=0.10)
        peer = PPLivePeer(sim, internet.udp,
                          internet.allocator.allocate(tele), tele, CABLE,
                          protocol, LiveChannel(1, "x"),
                          bootstrap_address="1.2.3.4")
        peer.neighbors.add("1.0.0.50", now=0.0)
        assert peer._pinned_addresses() == frozenset()


class TestIspAwareTracker:
    @pytest.fixture
    def setup(self):
        sim = Simulator(seed=8)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        tracker = IspAwareTrackerServer(
            sim, internet.udp, internet.allocator.allocate(tele), tele,
            ProtocolConfig(), internet.directory)
        tracker.go_online()
        return sim, internet, tracker

    def _register(self, sim, internet, tracker, isp_name, count):
        from repro.network.bandwidth import CABLE
        from repro.network.transport import Host

        class Silent(Host):
            def handle_datagram(self, datagram):
                pass

        isp = internet.catalog.by_name(isp_name)
        hosts = []
        for _ in range(count):
            host = Silent(sim, internet.udp,
                          internet.allocator.allocate(isp), isp, CABLE)
            host.go_online()
            host.send(tracker.address, m.TrackerQuery(channel_id=1), 20)
            hosts.append(host)
        sim.run()
        return hosts

    def test_same_isp_preferred(self, setup):
        # More registered peers than the 60-entry reply limit, so the
        # internal bias is visible in the sample.
        sim, internet, tracker = setup
        self._register(sim, internet, tracker, "ChinaTelecom", 80)
        self._register(sim, internet, tracker, "ChinaNetcom", 80)

        from repro.network.bandwidth import CABLE
        from repro.network.transport import Host

        class Collector(Host):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.inbox = []

            def handle_datagram(self, datagram):
                self.inbox.append(datagram.payload)

        tele = internet.catalog.by_name("ChinaTelecom")
        client = Collector(sim, internet.udp,
                           internet.allocator.allocate(tele), tele, CABLE)
        client.go_online()
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 20)
        sim.run()
        reply = [p for p in client.inbox
                 if isinstance(p, m.TrackerReply)][0]
        categories = [internet.directory.category_of(a)
                      for a in reply.peers]
        tele_share = categories.count(ISPCategory.TELE) / len(categories)
        assert tele_share > 0.6

    def test_pads_with_external_when_internal_scarce(self, setup):
        sim, internet, tracker = setup
        self._register(sim, internet, tracker, "ChinaNetcom", 20)

        from repro.network.bandwidth import CABLE
        from repro.network.transport import Host

        class Collector(Host):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.inbox = []

            def handle_datagram(self, datagram):
                self.inbox.append(datagram.payload)

        tele = internet.catalog.by_name("ChinaTelecom")
        client = Collector(sim, internet.udp,
                           internet.allocator.allocate(tele), tele, CABLE)
        client.go_online()
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 20)
        sim.run()
        reply = [p for p in client.inbox
                 if isinstance(p, m.TrackerReply)][0]
        assert len(reply.peers) == 20  # all external, still served

    def test_fraction_validated(self, setup):
        sim, internet, _tracker = setup
        tele = internet.catalog.by_name("ChinaTelecom")
        with pytest.raises(ValueError):
            IspAwareTrackerServer(
                sim, internet.udp, internet.allocator.allocate(tele),
                tele, ProtocolConfig(), internet.directory,
                internal_fraction=1.5)

    def test_scenario_flag_builds_aware_trackers(self):
        from repro.workload.scenario import SessionScenario
        scenario = SessionScenario(ScenarioConfig(
            seed=3, population=5, isp_aware_trackers=True))
        sim = Simulator(seed=3)
        deployment = scenario.build_deployment(sim)
        assert all(isinstance(t, IspAwareTrackerServer)
                   for t in deployment.trackers)


class TestNewAblations:
    def test_top_peer_caching_runs(self):
        from repro.experiments import top_peer_caching
        result = top_peer_caching(seed=5, population=12, duration=150.0)
        assert len(result.points) == 2
        assert "A5" in result.render()

    def test_isp_aware_tracker_runs(self):
        from repro.experiments import isp_aware_tracker
        result = isp_aware_tracker(seed=5, population=12, duration=150.0)
        assert len(result.points) == 2
        labels = [p.label for p in result.points]
        assert any("isp-aware" in label for label in labels)
