"""Tests for bootstrap CIs and cross-seed aggregation."""

import random

import pytest

from repro.capture.matching import DataTransaction
from repro.network.addressing import AddressAllocator
from repro.network.asn import AsnDirectory
from repro.network.isp import ISPCategory, default_isp_catalog
from repro.stats.bootstrap import (bootstrap_ci, bootstrap_mean,
                                   bootstrap_share,
                                   transaction_locality_ci)


class TestBootstrapCi:
    def setup_method(self):
        self.rng = random.Random(7)

    def test_point_estimate_is_statistic_of_data(self):
        estimate = bootstrap_mean([1.0, 2.0, 3.0], self.rng,
                                  resamples=200)
        assert estimate.value == pytest.approx(2.0)

    def test_interval_contains_point_for_stable_data(self):
        data = [5.0] * 50
        estimate = bootstrap_mean(data, self.rng, resamples=100)
        assert estimate.low == estimate.high == estimate.value == 5.0

    def test_interval_widens_with_variance(self):
        tight = bootstrap_mean([10.0 + 0.01 * i for i in range(50)],
                               self.rng, resamples=300)
        wide = bootstrap_mean([10.0 + 5.0 * (i % 2) for i in range(50)],
                              self.rng, resamples=300)
        assert wide.half_width > tight.half_width

    def test_coverage_sanity(self):
        # The 95% CI of the mean of N(0,1) over 100 points should usually
        # contain 0; check on a handful of replications.
        data_rng = random.Random(3)
        contained = 0
        for trial in range(10):
            data = [data_rng.gauss(0.0, 1.0) for _ in range(100)]
            est = bootstrap_mean(data, random.Random(trial),
                                 resamples=300)
            if est.low <= 0.0 <= est.high:
                contained += 1
        assert contained >= 8

    def test_share(self):
        flags = [True] * 30 + [False] * 10
        estimate = bootstrap_share(flags, self.rng, resamples=200)
        assert estimate.value == pytest.approx(0.75)
        assert 0.5 < estimate.low <= estimate.high <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([], self.rng)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], self.rng, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], self.rng, resamples=2)

    def test_str_format(self):
        estimate = bootstrap_mean([1.0, 2.0], self.rng, resamples=100)
        assert "95%" in str(estimate)


class TestTransactionLocalityCi:
    def test_ci_around_known_share(self):
        catalog = default_isp_catalog()
        allocator = AddressAllocator(catalog)
        directory = AsnDirectory(catalog, allocator)
        tele = allocator.allocate(catalog.by_name("ChinaTelecom"))
        cnc = allocator.allocate(catalog.by_name("ChinaNetcom"))

        def txn(remote, nbytes):
            return DataTransaction(remote=remote, chunk=0, first=0,
                                   last=0, request_time=0.0,
                                   reply_time=0.1, payload_bytes=nbytes)

        transactions = [txn(tele, 100)] * 80 + [txn(cnc, 100)] * 20
        estimate = transaction_locality_ci(
            transactions, directory, ISPCategory.TELE, random.Random(1))
        assert estimate.value == pytest.approx(0.8)
        assert estimate.low <= 0.8 <= estimate.high
        assert estimate.high - estimate.low < 0.25

    def test_empty_returns_none(self):
        catalog = default_isp_catalog()
        allocator = AddressAllocator(catalog)
        directory = AsnDirectory(catalog, allocator)
        assert transaction_locality_ci([], directory, ISPCategory.TELE,
                                       random.Random(1)) is None


class TestAggregateSessions:
    def test_multi_seed_aggregate(self):
        from repro.analysis.aggregate import aggregate_sessions
        from repro.workload import ScenarioConfig

        config = ScenarioConfig(population=12, duration=180.0,
                                warmup=80.0)
        result = aggregate_sessions(config, seeds=[1, 2, 3],
                                    resamples=100)
        assert len(result.per_seed) == 3
        assert {m.seed for m in result.per_seed} == {1, 2, 3}
        assert 0.0 <= result.locality_mean.value <= 1.0
        text = result.render()
        assert "locality mean" in text
        assert "seed 2" in text

    def test_empty_seed_list_rejected(self):
        from repro.analysis.aggregate import aggregate_sessions
        from repro.workload import ScenarioConfig
        with pytest.raises(ValueError):
            aggregate_sessions(ScenarioConfig(), seeds=[])
