"""Unit tests for the candidate pool and peer-list construction."""

import pytest

from repro.protocol.peerlist import CandidatePool, ListSource


@pytest.fixture
def pool():
    return CandidatePool(self_address="1.0.0.99", capacity=10)


class TestAdd:
    def test_new_candidate(self, pool):
        assert pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        assert "1.0.0.1" in pool
        assert len(pool) == 1

    def test_self_address_ignored(self, pool):
        assert not pool.add("1.0.0.99", now=0.0,
                            source=ListSource.TRACKER)
        assert len(pool) == 0

    def test_resighting_refreshes(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        assert not pool.add("1.0.0.1", now=5.0,
                            source=ListSource.NEIGHBOR)
        candidate = pool.get("1.0.0.1")
        assert candidate.last_seen == 5.0
        assert candidate.times_seen == 2
        # First-seen source is preserved.
        assert candidate.source is ListSource.TRACKER

    def test_add_many_counts_new(self, pool):
        added = pool.add_many(["1.0.0.1", "1.0.0.2", "1.0.0.1"],
                              now=0.0, source=ListSource.ENCLOSED)
        assert added == 2

    def test_capacity_eviction_lru(self):
        pool = CandidatePool("9.9.9.9", capacity=3)
        pool.add("1.0.0.1", now=1.0, source=ListSource.TRACKER)
        pool.add("1.0.0.2", now=2.0, source=ListSource.TRACKER)
        pool.add("1.0.0.3", now=3.0, source=ListSource.TRACKER)
        pool.add("1.0.0.4", now=4.0, source=ListSource.TRACKER)
        assert "1.0.0.1" not in pool  # least recently refreshed evicted
        assert len(pool) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CandidatePool("x", capacity=0)


class TestConnectable:
    def test_backoff_excludes(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        pool.note_failure("1.0.0.1", now=0.0, backoff=60.0)
        assert pool.connectable(now=30.0) == []
        assert pool.connectable(now=61.0) == ["1.0.0.1"]

    def test_exclusion_list(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        pool.add("1.0.0.2", now=0.0, source=ListSource.TRACKER)
        out = pool.connectable(now=1.0, exclude=["1.0.0.1"])
        assert out == ["1.0.0.2"]

    def test_remove(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        pool.remove("1.0.0.1")
        assert "1.0.0.1" not in pool
        pool.remove("1.0.0.1")  # idempotent


class TestStrikesAndBans:
    def test_strike_below_limit_no_ban(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        assert not pool.strike("1.0.0.1", now=0.0, count=1, limit=3,
                               ban_seconds=240.0)
        assert not pool.strike("1.0.0.1", now=1.0, count=1, limit=3,
                               ban_seconds=240.0)
        assert pool.get("1.0.0.1").strikes == 2
        assert not pool.is_banned("1.0.0.1", now=2.0)
        assert pool.connectable(now=2.0) == ["1.0.0.1"]

    def test_strike_to_limit_bans(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        assert pool.strike("1.0.0.1", now=5.0, count=3, limit=3,
                           ban_seconds=240.0)
        assert pool.is_banned("1.0.0.1", now=6.0)
        # Strikes reset so the next offense starts a fresh count.
        assert pool.get("1.0.0.1").strikes == 0
        assert pool.connectable(now=6.0) == []

    def test_ban_expires(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        pool.strike("1.0.0.1", now=0.0, count=3, limit=3,
                    ban_seconds=240.0)
        assert pool.is_banned("1.0.0.1", now=239.0)
        assert not pool.is_banned("1.0.0.1", now=241.0)
        assert pool.connectable(now=241.0) == ["1.0.0.1"]

    def test_banned_excluded_from_peer_list_padding(self):
        pool = CandidatePool("9.9.9.9", capacity=100)
        for i in range(1, 10):
            pool.add(f"2.0.0.{i}", now=float(i),
                     source=ListSource.TRACKER)
        pool.strike("2.0.0.9", now=9.0, count=3, limit=3,
                    ban_seconds=240.0)
        out = pool.build_peer_list(["3.0.0.1"], limit=60, now=10.0)
        assert "2.0.0.9" not in out

    def test_strike_unknown_address_registers_it(self, pool):
        assert not pool.strike("1.0.0.7", now=0.0, count=1, limit=3,
                               ban_seconds=240.0)
        assert "1.0.0.7" in pool
        assert pool.get("1.0.0.7").strikes == 1

    def test_snapshot_round_trips_strikes_and_bans(self, pool):
        pool.add("1.0.0.1", now=0.0, source=ListSource.TRACKER)
        pool.add("1.0.0.2", now=0.0, source=ListSource.TRACKER)
        pool.strike("1.0.0.1", now=1.0, count=2, limit=3,
                    ban_seconds=240.0)
        pool.strike("1.0.0.2", now=1.0, count=3, limit=3,
                    ban_seconds=240.0)
        restored = CandidatePool(self_address="1.0.0.99", capacity=10)
        restored.restore_state(pool.snapshot_state())
        assert restored.get("1.0.0.1").strikes == 2
        assert restored.is_banned("1.0.0.2", now=2.0)
        assert not restored.is_banned("1.0.0.2", now=242.0)


class TestBuildPeerList:
    def test_neighbors_come_first(self, pool):
        for i in range(1, 4):
            pool.add(f"2.0.0.{i}", now=float(i),
                     source=ListSource.NEIGHBOR)
        out = pool.build_peer_list(["3.0.0.1", "3.0.0.2"], limit=60,
                                   now=10.0)
        assert out[:2] == ["3.0.0.1", "3.0.0.2"]

    def test_limit_respected(self, pool):
        neighbors = [f"3.0.0.{i}" for i in range(1, 100)]
        out = pool.build_peer_list(neighbors, limit=60, now=0.0)
        assert len(out) == 60

    def test_established_peer_returns_neighbors_only(self):
        """A peer with a healthy table does not pad with pool noise."""
        pool = CandidatePool("9.9.9.9", capacity=100)
        for i in range(1, 50):
            pool.add(f"2.0.0.{i}", now=float(i),
                     source=ListSource.TRACKER)
        neighbors = [f"3.0.0.{i}" for i in range(1, 20)]  # 19 >= 12
        out = pool.build_peer_list(neighbors, limit=60, now=100.0)
        assert out == neighbors

    def test_newcomer_pads_with_recent_candidates(self):
        pool = CandidatePool("9.9.9.9", capacity=100)
        for i in range(1, 30):
            pool.add(f"2.0.0.{i}", now=float(i),
                     source=ListSource.TRACKER)
        out = pool.build_peer_list(["3.0.0.1"], limit=60, now=100.0)
        assert len(out) == pool.MIN_LIST_ENTRIES
        # Padding prefers the most recently seen candidates.
        assert "2.0.0.29" in out

    def test_no_duplicates(self):
        pool = CandidatePool("9.9.9.9", capacity=100)
        pool.add("3.0.0.1", now=0.0, source=ListSource.TRACKER)
        out = pool.build_peer_list(["3.0.0.1"], limit=60, now=1.0)
        assert out.count("3.0.0.1") == 1
