"""Tests for the causal span layer (repro.obs.spans).

Covers the sink/span unit contract, the zero-overhead null default,
the Chrome trace-event exporter (schema-checked, as Perfetto expects),
and the end-to-end instrumentation of the three transaction chains:
peer-list request -> reply -> connect, data request -> sub-piece
replies -> chunk completion -> playback deadline, and bootstrap ->
channel join.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs import (NULL_SPAN, NULL_SPAN_SINK, ChromeTraceSink,
                       Instrumentation, JsonlSpanSink, MemorySpanSink,
                       TeeSpanSink, read_chrome_trace,
                       read_spans_jsonl, resolve, span_categories,
                       validate_chrome_trace)
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)


class TestSpanContract:
    def test_root_span_starts_its_own_trace(self):
        sink = MemorySpanSink()
        span = sink.start_span("join", "bootstrap", 1.0, actor="p1")
        assert span.trace_id == span.span_id
        assert span.parent_id is None
        assert span.actor == "p1"
        assert not span.finished

    def test_child_joins_parent_trace_and_inherits_actor(self):
        sink = MemorySpanSink()
        root = sink.start_span("join", "bootstrap", 1.0, actor="p1")
        child = sink.start_span("connect", "peerlist", 2.0, parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.actor == "p1"  # inherited
        other = sink.start_span("x", "y", 2.0, parent=root, actor="p2")
        assert other.actor == "p2"  # explicit actor wins

    def test_ids_are_sequential_in_call_order(self):
        sink = MemorySpanSink()
        ids = [sink.start_span("s", "c", 0.0).span_id for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_finish_is_idempotent_and_records_once(self):
        sink = MemorySpanSink()
        span = sink.start_span("s", "c", 1.0)
        span.finish(2.0, "ok", rtt=0.1)
        span.finish(9.0, "timeout")  # ignored
        assert span.end == 2.0 and span.status == "ok"
        assert span.attrs["rtt"] == 0.1
        assert len(sink.spans) == 1
        assert sink.spans_recorded == 1

    def test_instant_is_a_finished_zero_duration_span(self):
        sink = MemorySpanSink()
        span = sink.instant("marker", "c", 3.0, chunk=7)
        assert span.finished and span.start == span.end == 3.0
        assert sink.spans == [span]

    def test_record_shape(self):
        sink = MemorySpanSink()
        root = sink.start_span("join", "bootstrap", 1.0, actor="p1",
                               isp="TELE")
        root.finish(4.0, trackers=2)
        record = root.to_record()
        assert record == {"trace": 1, "span": 1, "parent": None,
                          "name": "join", "cat": "bootstrap",
                          "start": 1.0, "end": 4.0, "status": "ok",
                          "actor": "p1", "isp": "TELE", "trackers": 2}

    def test_unfinished_spans_are_not_recorded(self):
        sink = MemorySpanSink()
        sink.start_span("s", "c", 0.0)
        assert sink.spans == [] and sink.spans_recorded == 0


class TestNullSink:
    def test_disabled_and_shared(self):
        assert NULL_SPAN_SINK.enabled is False
        a = NULL_SPAN_SINK.start_span("s", "c", 0.0)
        b = NULL_SPAN_SINK.instant("i", "c", 1.0)
        assert a is NULL_SPAN and b is NULL_SPAN

    def test_null_span_is_inert(self):
        before = NULL_SPAN_SINK.spans_recorded
        NULL_SPAN.finish(99.0, "timeout", junk=1)
        NULL_SPAN.annotate(more=2)
        assert NULL_SPAN.end == 0.0 and NULL_SPAN.status == "ok"
        assert NULL_SPAN_SINK.spans_recorded == before

    def test_default_instrumentation_has_null_spans(self):
        assert resolve(None).spans is NULL_SPAN_SINK
        assert Instrumentation().spans is NULL_SPAN_SINK


class TestJsonlSink:
    def test_streams_one_line_per_span(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        with JsonlSpanSink(path) as sink:
            sink.start_span("a", "c", 0.0).finish(1.0)
            sink.instant("b", "c", 2.0)
        records = read_spans_jsonl(path)
        assert [r["name"] for r in records] == ["a", "b"]
        assert all({"trace", "span", "cat", "start", "end",
                    "status"} <= set(r) for r in records)


class TestChromeTraceSink:
    def _trace(self):
        buffer = io.StringIO()
        sink = ChromeTraceSink(buffer)
        root = sink.start_span("join", "bootstrap", 1.0, actor="p1")
        sink.start_span("connect", "peerlist", 1.5,
                        parent=root).finish(1.8, rtt=0.3)
        sink.instant("deadline_miss", "playback", 2.0, actor="p1")
        root.finish(3.0)
        sink.close()
        return json.loads(buffer.getvalue())

    def test_document_shape_and_schema(self):
        document = self._trace()
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert validate_chrome_trace(document["traceEvents"]) == []

    def test_event_mapping(self):
        events = self._trace()["traceEvents"]
        by_name = {e["name"]: e for e in events if e.get("ph") != "M"}
        connect = by_name["connect"]
        assert connect["ph"] == "X"
        assert connect["ts"] == pytest.approx(1.5e6)
        assert connect["dur"] == pytest.approx(0.3e6)
        assert connect["args"]["status"] == "ok"
        assert connect["args"]["parent"] == by_name["join"]["args"]["span"]
        instant = by_name["deadline_miss"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        # One thread per actor, labelled via metadata.
        metadata = [e for e in events if e.get("ph") == "M"]
        assert [m["args"]["name"] for m in metadata] == ["p1"]
        assert {e["tid"] for e in (connect, instant)} == \
            {metadata[0]["tid"]}

    def test_validator_flags_bad_events(self):
        assert validate_chrome_trace([{"ph": "X"}])
        assert validate_chrome_trace(
            [{"name": "a", "ph": "X", "pid": 1, "tid": 1,
              "ts": "late"}])
        assert validate_chrome_trace(
            [{"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
              "dur": -1}])
        assert validate_chrome_trace(
            [{"name": "a", "ph": "?", "pid": 1, "tid": 1, "ts": 0.0}])
        assert validate_chrome_trace(["nope"])

    def test_reader_accepts_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text('[{"name":"a","ph":"i","s":"t","pid":1,'
                        '"tid":1,"ts":0}]')
        events = read_chrome_trace(str(path))
        assert validate_chrome_trace(events) == []
        assert span_categories(events) == []


class TestTeeSink:
    def test_children_share_span_identity(self):
        a, b = MemorySpanSink(), MemorySpanSink()
        tee = TeeSpanSink([a, b])
        root = tee.start_span("r", "c", 0.0)
        tee.start_span("child", "c", 1.0, parent=root).finish(2.0)
        root.finish(3.0)
        assert [s.span_id for s in a.spans] == \
            [s.span_id for s in b.spans]
        assert a.spans[0].parent_id == root.span_id

    def test_requires_children(self):
        with pytest.raises(ValueError):
            TeeSpanSink([])


# ----------------------------------------------------------------------
# End-to-end: the three instrumented transaction chains
# ----------------------------------------------------------------------
def _run_session(seed=5):
    sink = MemorySpanSink()
    obs = Instrumentation(spans=sink)
    config = ScenarioConfig(
        seed=seed, population=20, mix=popular_channel_mix(),
        popularity=Popularity.POPULAR, probes=(TELE_PROBE,),
        warmup=60.0, duration=120.0, instrumentation=obs)
    SessionScenario(config).run()
    return sink


@pytest.fixture(scope="module")
def session_sink():
    return _run_session()


class TestSessionChains:
    def test_all_three_chains_present(self, session_sink):
        categories = set(session_sink.categories())
        # Acceptance: at least the peerlist, data and playback chains.
        assert {"peerlist", "data", "playback", "bootstrap"} <= categories
        names = {s.name for s in session_sink.spans}
        assert {"channel_join", "tracker_query", "connect",
                "data_request", "chunk_complete", "startup"} <= names

    def test_bootstrap_chain_roots_each_peer_trace(self, session_sink):
        joins = session_sink.by_name("channel_join")
        assert joins and all(j.parent_id is None for j in joins)
        assert all(j.trace_id == j.span_id for j in joins)
        assert len({j.actor for j in joins}) == len(joins)

    def test_peerlist_chain_is_causally_linked(self, session_sink):
        spans = {s.span_id: s for s in session_sink.spans}
        queries = session_sink.by_name("tracker_query")
        assert queries
        for query in queries:
            assert spans[query.parent_id].name == "channel_join"
            assert query.trace_id == spans[query.parent_id].trace_id
        # Connect attempts descend from the peer-list transaction that
        # supplied the address (or the join span for enclosed lists).
        connects = session_sink.by_name("connect")
        assert connects
        parent_names = {spans[c.parent_id].name for c in connects
                        if c.parent_id in spans}
        assert parent_names <= {"tracker_query", "peerlist_request",
                                "channel_join"}
        assert "tracker_query" in parent_names
        succeeded = [c for c in connects if c.status == "ok"]
        assert succeeded and all("rtt" in c.attrs for c in succeeded)

    def test_data_chain_reaches_chunk_completion(self, session_sink):
        spans = {s.span_id: s for s in session_sink.spans}
        requests = session_sink.by_name("data_request")
        assert requests
        for request in requests[:50]:
            assert spans[request.parent_id].name == "channel_join"
            assert {"seq", "neighbor", "chunk"} <= set(request.attrs)
        statuses = {r.status for r in requests}
        assert "ok" in statuses
        completions = session_sink.by_name("chunk_complete")
        assert completions
        for complete in completions[:50]:
            parent = spans[complete.parent_id]
            assert parent.name == "data_request"
            assert parent.attrs["chunk"] == complete.attrs["chunk"]

    def test_playback_chain_spans(self, session_sink):
        startups = session_sink.by_name("startup")
        assert startups
        done = [s for s in startups if s.status == "ok"]
        assert done and all("startup_delay" in s.attrs for s in done)
        # Stalls (if any) pair a deadline_miss instant with a stall span.
        misses = session_sink.by_name("deadline_miss")
        stalls = session_sink.by_name("stall")
        assert len(misses) >= len([s for s in stalls
                                   if s.status == "ok"])

    def test_span_stream_is_deterministic(self, session_sink):
        repeat = _run_session()
        assert [s.to_record() for s in repeat.spans] == \
            [s.to_record() for s in session_sink.spans]

    def test_session_workload_span_wraps_run(self, session_sink):
        sessions = session_sink.by_name("session")
        assert len(sessions) == 1
        (span,) = sessions
        assert span.category == "workload"
        assert span.attrs["events_executed"] > 0


class TestCliChromeExport:
    def test_fig02_spans_export_is_valid_chrome_trace(self, tmp_path,
                                                      capsys):
        """Acceptance criterion: ``repro run fig02 --spans out.json``
        produces valid trace-event JSON with >= 3 span categories."""
        out = tmp_path / "out.json"
        assert main(["run", "fig02", "--scale", "small", "--seed", "3",
                     "--spans", str(out)]) == 0
        capsys.readouterr()
        events = read_chrome_trace(str(out))
        assert validate_chrome_trace(events) == []
        categories = span_categories(events)
        assert len(categories) >= 3
        assert {"peerlist", "data", "playback"} <= set(categories)
