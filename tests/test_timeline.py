"""Tests for the sliding-window locality timeline and trace display."""

import pytest

from repro.analysis.timeline import (TimelinePoint, locality_timeline,
                                     timeline_summary)
from repro.capture.matching import DataTransaction
from repro.network.addressing import AddressAllocator
from repro.network.asn import AsnDirectory
from repro.network.isp import ISPCategory, default_isp_catalog


@pytest.fixture(scope="module")
def world():
    catalog = default_isp_catalog()
    allocator = AddressAllocator(catalog)
    directory = AsnDirectory(catalog, allocator)
    tele = allocator.allocate(catalog.by_name("ChinaTelecom"))
    cnc = allocator.allocate(catalog.by_name("ChinaNetcom"))
    return directory, tele, cnc


def txn(remote, t, nbytes=1000):
    return DataTransaction(remote=remote, chunk=0, first=0, last=0,
                           request_time=t, reply_time=t + 0.2,
                           payload_bytes=nbytes)


class TestTimeline:
    def test_phase_change_visible(self, world):
        directory, tele, cnc = world
        # First 100 s all-TELE, second 100 s all-CNC.
        transactions = [txn(tele, t) for t in range(0, 100, 2)]
        transactions += [txn(cnc, float(t)) for t in range(100, 200, 2)]
        points = locality_timeline(transactions, directory,
                                   ISPCategory.TELE, window=50.0,
                                   step=25.0)
        assert points[0].locality == pytest.approx(1.0)
        assert points[-1].locality == pytest.approx(0.0)

    def test_window_bytes_counted(self, world):
        directory, tele, _cnc = world
        transactions = [txn(tele, 0.0, nbytes=500),
                        txn(tele, 10.0, nbytes=500)]
        points = locality_timeline(transactions, directory,
                                   ISPCategory.TELE, window=60.0)
        assert points[0].bytes == 1000
        assert points[0].transactions == 2

    def test_infrastructure_excluded(self, world):
        directory, tele, cnc = world
        transactions = [txn(tele, 1.0), txn(cnc, 2.0)]
        points = locality_timeline(transactions, directory,
                                   ISPCategory.TELE, window=30.0,
                                   infrastructure=frozenset([tele]))
        assert all(p.locality == 0.0 for p in points)

    def test_empty_input(self, world):
        directory, _tele, _cnc = world
        assert locality_timeline([], directory, ISPCategory.TELE) == []
        assert timeline_summary([]) == {}

    def test_validation(self, world):
        directory, tele, _cnc = world
        with pytest.raises(ValueError):
            locality_timeline([txn(tele, 1.0)], directory,
                              ISPCategory.TELE, window=0.0)
        with pytest.raises(ValueError):
            locality_timeline([txn(tele, 1.0)], directory,
                              ISPCategory.TELE, window=10.0, step=0.0)

    def test_summary(self, world):
        directory, tele, cnc = world
        transactions = [txn(tele, float(t)) for t in range(0, 60, 5)]
        transactions += [txn(cnc, float(t)) for t in range(60, 120, 5)]
        points = locality_timeline(transactions, directory,
                                   ISPCategory.TELE, window=40.0,
                                   step=20.0)
        summary = timeline_summary(points)
        assert summary["min"] <= summary["mean"] <= summary["max"]
        assert summary["samples"] == len(points)


class TestTraceDisplay:
    def test_format_packets(self):
        from repro.capture.records import Direction, PacketRecord
        from repro.capture.store import TraceStore
        from repro.protocol import messages as m
        from repro.protocol.wire import wire_size

        store = TraceStore("9.9.9.9")
        request = m.DataRequest(chunk=5, seq=3)
        store.append(PacketRecord(
            time=1.5, direction=Direction.OUT, src="9.9.9.9",
            dst="1.0.0.1", msg_type="DataRequest",
            wire_bytes=wire_size(request), packet_id=1, payload=request))
        text = store.format_packets()
        assert "9.9.9.9 -> 1.0.0.1" in text
        assert "chunk=5" in text and "seq=3" in text

    def test_format_packets_pagination(self):
        from repro.capture.records import Direction, PacketRecord
        from repro.capture.store import TraceStore
        from repro.protocol import messages as m

        store = TraceStore("9.9.9.9")
        for i in range(30):
            payload = m.Goodbye()
            store.append(PacketRecord(
                time=float(i), direction=Direction.IN, src="1.0.0.1",
                dst="9.9.9.9", msg_type="Goodbye", wire_bytes=32,
                packet_id=i, payload=payload))
        text = store.format_packets(limit=10)
        assert "... 20 more packets" in text
