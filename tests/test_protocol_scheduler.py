"""Unit tests for the data scheduler (with a scripted fake network)."""

import pytest

from repro.protocol.config import ProtocolConfig
from repro.protocol.neighbors import NeighborTable
from repro.protocol.scheduler import DataScheduler
from repro.sim import Simulator
from repro.streaming import ChunkBuffer, ChunkGeometry, SUBPIECE_LARGE


@pytest.fixture
def geometry():
    # 4 sub-pieces per chunk.
    return ChunkGeometry(bitrate_bps=SUBPIECE_LARGE * 8, chunk_seconds=4.0)


@pytest.fixture
def config():
    return ProtocolConfig(subpieces_per_request=2, per_neighbor_inflight=2,
                          total_inflight=8, data_timeout=2.0,
                          exploration_epsilon=0.0)


class Harness:
    """Scheduler + scripted request capture."""

    def __init__(self, geometry, config, first_chunk=0,
                 source_address=None):
        self.sim = Simulator(seed=4)
        self.buffer = ChunkBuffer(geometry, first_chunk=first_chunk)
        self.neighbors = NeighborTable(capacity=8)
        self.sent = []
        self.scheduler = DataScheduler(
            self.sim, config, geometry, self.buffer, self.neighbors,
            send_request=lambda addr, chunk, first, last, seq:
                self.sent.append((addr, chunk, first, last, seq)),
            source_address=source_address)

    def add_neighbor(self, address, have_until, have_from=0,
                     response=None):
        state = self.neighbors.add(address, now=self.sim.now)
        state.record_availability(have_until, self.sim.now, have_from)
        if response is not None:
            state.record_response(response, alpha=1.0)
        return state


class TestPlanning:
    def test_requests_missing_runs(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        # First chunk, sub-pieces 0-1 then 2-3 (batch limit 2), etc.
        assert ("n1", 0, 0, 1, 1) == h.sent[0]
        assert ("n1", 0, 2, 3, 2) == h.sent[1]

    def test_window_clipped_by_prefetch(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=100)
        h.scheduler.tick(live_chunk=100, playout_chunk=0)
        max_chunk = max(chunk for _a, chunk, _f, _l, _s in h.sent)
        assert max_chunk <= config.prefetch_chunks

    def test_window_clipped_by_live_edge(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=100)
        h.scheduler.tick(live_chunk=2, playout_chunk=0)
        assert all(chunk <= 2 for _a, chunk, _f, _l, _s in h.sent)

    def test_no_duplicate_inflight_coverage(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        before = len(h.sent)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        # Everything requestable was already covered; nothing re-sent
        # until total_inflight budget frees up.
        after = [s for s in h.sent[before:]]
        covered = set()
        for _a, chunk, first, last, _s in h.sent[:before]:
            covered.update((chunk, sp) for sp in range(first, last + 1))
        for _a, chunk, first, last, _s in after:
            for sp in range(first, last + 1):
                assert (chunk, sp) not in covered

    def test_per_neighbor_inflight_respected(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=50)
        h.scheduler.tick(live_chunk=50, playout_chunk=-1)
        from collections import Counter
        counts = Counter(addr for addr, *_ in h.sent)
        assert counts["n1"] <= config.per_neighbor_inflight

    def test_availability_gates_eligibility(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=0)  # only chunk 0
        h.scheduler.tick(live_chunk=5, playout_chunk=-1)
        assert all(chunk == 0 for _a, chunk, _f, _l, _s in h.sent)

    def test_have_from_gates_old_chunks(self, geometry, config):
        h = Harness(geometry, config, first_chunk=0)
        h.add_neighbor("n1", have_until=10, have_from=5)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        assert all(chunk >= 5 for _a, chunk, _f, _l, _s in h.sent)

    def test_weighting_prefers_fast_neighbor(self, geometry):
        # High per-neighbor cap so the weighted draw, not the cap,
        # decides who gets each request.
        config = ProtocolConfig(subpieces_per_request=2,
                                per_neighbor_inflight=100,
                                total_inflight=8, data_timeout=2.0,
                                exploration_epsilon=0.0)
        h = Harness(geometry, config)
        h.add_neighbor("fast", have_until=50, response=0.2)
        h.add_neighbor("slow", have_until=50, response=1.5)
        for _ in range(30):
            h.scheduler.tick(live_chunk=50, playout_chunk=-1)
            # Resolve everything so new requests can flow.
            for seq in list(h.scheduler._pending):
                p = h.scheduler._pending[seq]
                h.scheduler.on_reply(seq, p.chunk, p.first, p.last,
                                     have_until=50)
            # Undo side effects so every round replans the same data with
            # the same response profile.
            h.buffer = ChunkBuffer(geometry, first_chunk=0)
            h.scheduler.buffer = h.buffer
            h.neighbors.get("fast").record_response(0.2, alpha=1.0)
            h.neighbors.get("slow").record_response(1.5, alpha=1.0)
        from collections import Counter
        counts = Counter(addr for addr, *_ in h.sent)
        assert counts["fast"] > counts["slow"] * 2


class TestSourceFallback:
    def test_source_used_when_no_neighbor_and_urgent(self, geometry,
                                                     config):
        h = Harness(geometry, config, source_address="9.9.9.9")
        h.scheduler.tick(live_chunk=3, playout_chunk=0)
        assert h.sent
        assert all(addr == "9.9.9.9" for addr, *_ in h.sent)
        assert h.scheduler.requests_to_source == len(h.sent)

    def test_source_not_used_for_non_urgent(self, geometry, config):
        h = Harness(geometry, config, source_address="9.9.9.9")
        h.scheduler.tick(live_chunk=50, playout_chunk=-10)
        assert h.sent == []

    def test_source_inflight_capped(self, geometry, config):
        h = Harness(geometry, config, source_address="9.9.9.9")
        h.scheduler.tick(live_chunk=3, playout_chunk=3)
        assert len(h.sent) <= config.per_neighbor_inflight

    def test_source_cooldown_after_timeout(self, geometry, config):
        h = Harness(geometry, config, source_address="9.9.9.9")
        h.scheduler.tick(live_chunk=3, playout_chunk=3)
        assert h.sent
        h.sim.run_until(config.data_timeout + 0.1)  # timeouts fire
        count = len(h.sent)
        h.scheduler.tick(live_chunk=3, playout_chunk=3)
        assert len(h.sent) == count  # cooling down
        h.sim.run_until(h.sim.now + config.timeout_cooldown + 0.1)
        h.scheduler.tick(live_chunk=5, playout_chunk=5)
        assert len(h.sent) > count


class TestResolution:
    def test_reply_fills_buffer_and_updates_state(self, geometry, config):
        h = Harness(geometry, config)
        state = h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        addr, chunk, first, last, seq = h.sent[0]
        h.sim.run_until(0.5)
        added = h.scheduler.on_reply(seq, chunk, first, last,
                                     have_until=12)
        assert added == last - first + 1
        assert state.reported_have == 12
        assert state.ewma_response == pytest.approx(0.5)
        assert state.inflight == len(h.sent) - 1

    def test_duplicate_reply_ignored(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        _a, chunk, first, last, seq = h.sent[0]
        h.scheduler.on_reply(seq, chunk, first, last, have_until=10)
        before = h.buffer.bytes_received
        h.scheduler.on_reply(seq, chunk, first, last, have_until=10)
        assert h.buffer.bytes_received == before
        assert h.scheduler.duplicate_replies == 1

    def test_miss_corrects_availability(self, geometry, config):
        h = Harness(geometry, config)
        state = h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        seq = h.sent[0][4]
        h.scheduler.on_miss(seq, have_until=3, have_from=1)
        assert state.reported_have == 3
        assert state.reported_from == 1
        assert state.cooldown_until > h.sim.now

    def test_timeout_penalises_and_frees_coverage(self, geometry, config):
        h = Harness(geometry, config)
        state = h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        h.sim.run_until(config.data_timeout + 0.1)
        assert h.scheduler.timeouts > 0
        assert state.data_timeouts > 0
        assert state.ewma_response == pytest.approx(config.data_timeout)
        assert state.inflight == 0

    def test_forget_neighbor_releases_pending(self, geometry, config):
        h = Harness(geometry, config)
        h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        assert h.scheduler.inflight > 0
        h.scheduler.forget_neighbor("n1")
        assert h.scheduler.inflight == 0

    def test_reset_for_buffer_releases_everything(self, geometry, config):
        h = Harness(geometry, config)
        state = h.add_neighbor("n1", have_until=10)
        h.scheduler.tick(live_chunk=10, playout_chunk=-1)
        new_buffer = ChunkBuffer(geometry, first_chunk=20)
        h.scheduler.reset_for_buffer(new_buffer)
        assert h.scheduler.inflight == 0
        assert state.inflight == 0
        assert h.scheduler.buffer is new_buffer
