"""Tests for ``repro bench`` and the machine-readable perf baselines."""

import json

import pytest

from repro.cli import main
from repro.experiments.bench import (CAMPAIGN_FILE, ENGINE_FILE,
                                     SCHEMA_VERSION, _check_drift, _merged,
                                     campaign_config, engine_config,
                                     run_bench)

ENGINE_FIELDS = {"profile", "seed", "events", "wall_seconds",
                 "events_per_sec", "peak_rss_bytes", "golden_digest",
                 "population", "sim_seconds"}
CAMPAIGN_FIELDS = {"profile", "seed", "events", "wall_seconds",
                   "events_per_sec", "peak_rss_bytes", "golden_digest",
                   "series_digest", "days", "jobs"}


class TestConfigs:
    def test_quick_campaign_is_the_golden_config(self):
        from tests.test_campaign_goldens import GOLDEN_CONFIG
        assert campaign_config("quick") == GOLDEN_CONFIG()

    def test_quick_engine_is_smaller_than_default(self):
        quick = engine_config("quick")
        default = engine_config("default")
        assert quick.population < default.population
        assert quick.warmup + quick.duration \
            < default.warmup + default.duration
        assert quick.seed == default.seed == 7

    def test_unknown_profiles_rejected(self):
        with pytest.raises(ValueError):
            engine_config("huge")
        with pytest.raises(ValueError):
            campaign_config("huge")


class TestDriftCheck:
    RECORDS = {"quick": {"golden_digest": "abc123" + "0" * 58}}

    def test_matching_digest_passes(self, capsys):
        import sys
        baseline = {"profiles": {"quick":
                                 {"golden_digest": "abc123" + "0" * 58}}}
        assert _check_drift(baseline, self.RECORDS, "engine",
                            sys.stderr) == []

    def test_drifted_digest_fails(self):
        import sys
        baseline = {"profiles": {"quick":
                                 {"golden_digest": "f" * 64}}}
        failures = _check_drift(baseline, self.RECORDS, "engine",
                                sys.stderr)
        assert len(failures) == 1
        assert "drifted" in failures[0]

    def test_missing_baseline_fails(self):
        import sys
        assert _check_drift(None, self.RECORDS, "engine", sys.stderr)
        assert _check_drift({"profiles": {}}, self.RECORDS, "engine",
                            sys.stderr)

    def test_merged_preserves_other_profiles(self, tmp_path):
        path = tmp_path / ENGINE_FILE
        path.write_text(json.dumps({
            "schema": SCHEMA_VERSION, "benchmark": "engine",
            "profiles": {"default": {"golden_digest": "d" * 64}}}))
        merged = _merged(path, "engine", {"quick": {"golden_digest": "q"}})
        assert set(merged["profiles"]) == {"default", "quick"}
        assert merged["profiles"]["default"]["golden_digest"] == "d" * 64
        assert merged["schema"] == SCHEMA_VERSION


class TestBenchEndToEnd:
    """One real quick engine run through the CLI, reused across asserts."""

    @pytest.fixture(scope="class")
    def bench_dir(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("bench")
        assert main(["bench", "--quick", "--only", "engine",
                     "--out-dir", str(out_dir)]) == 0
        return out_dir

    def test_writes_engine_file_with_required_fields(self, bench_dir):
        data = json.loads((bench_dir / ENGINE_FILE).read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["benchmark"] == "engine"
        record = data["profiles"]["quick"]
        assert ENGINE_FIELDS <= set(record)
        assert record["events"] > 0
        assert record["events_per_sec"] > 0
        assert len(record["golden_digest"]) == 64
        assert not (bench_dir / CAMPAIGN_FILE).exists()

    def test_check_against_own_baseline_passes(self, bench_dir, capsys):
        assert main(["bench", "--quick", "--only", "engine",
                     "--out-dir", str(bench_dir)]) == 0
        assert main(["bench", "--quick", "--only", "engine", "--check",
                     "--out-dir", str(bench_dir)]) == 0
        assert "digest OK" in capsys.readouterr().err

    def test_check_fails_on_tampered_baseline(self, bench_dir, tmp_path,
                                              capsys):
        tampered = json.loads((bench_dir / ENGINE_FILE).read_text())
        tampered["profiles"]["quick"]["golden_digest"] = "0" * 64
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        (baseline_dir / ENGINE_FILE).write_text(json.dumps(tampered))
        code = run_bench(out_dir=tmp_path, quick=True, check=True,
                         baseline_dir=baseline_dir, only="engine")
        assert code == 1

    def test_rerun_is_deterministic(self, bench_dir, tmp_path):
        code = run_bench(out_dir=tmp_path, quick=True, only="engine")
        assert code == 0
        first = json.loads((bench_dir / ENGINE_FILE).read_text())
        second = json.loads((tmp_path / ENGINE_FILE).read_text())
        assert (first["profiles"]["quick"]["golden_digest"]
                == second["profiles"]["quick"]["golden_digest"])
        assert (first["profiles"]["quick"]["events"]
                == second["profiles"]["quick"]["events"])


class TestCommittedBaselines:
    """The repo-root BENCH files are real, current baselines."""

    @pytest.fixture(scope="class")
    def repo_root(self):
        from pathlib import Path
        return Path(__file__).resolve().parent.parent

    def test_engine_baseline_committed(self, repo_root):
        data = json.loads((repo_root / ENGINE_FILE).read_text())
        assert data["benchmark"] == "engine"
        assert {"quick", "default"} <= set(data["profiles"])

    def test_campaign_baseline_committed_and_tied_to_goldens(self, repo_root):
        from tests.test_campaign_goldens import (GOLDEN_SERIES_DIGEST,
                                                 GOLDEN_TABLE_DIGEST)
        data = json.loads((repo_root / CAMPAIGN_FILE).read_text())
        quick = data["profiles"]["quick"]
        # The quick campaign profile IS the golden config, so its committed
        # digests must equal the pinned campaign goldens.
        assert quick["golden_digest"] == GOLDEN_TABLE_DIGEST
        assert quick["series_digest"] == GOLDEN_SERIES_DIGEST
