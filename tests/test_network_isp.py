"""Unit tests for ISP modelling and the default catalog."""

import pytest

from repro.network.isp import (ISP, ISPCatalog, ISPCategory, ResponseGroup,
                               default_isp_catalog, response_group)


class TestISPCategory:
    def test_chinese_flags(self):
        assert ISPCategory.TELE.is_chinese
        assert ISPCategory.CNC.is_chinese
        assert ISPCategory.CER.is_chinese
        assert ISPCategory.OTHER_CN.is_chinese
        assert not ISPCategory.FOREIGN.is_chinese

    def test_string_labels_match_paper(self):
        assert str(ISPCategory.TELE) == "TELE"
        assert str(ISPCategory.OTHER_CN) == "OtherCN"
        assert str(ISPCategory.FOREIGN) == "Foreign"


class TestResponseGroup:
    def test_tele_and_cnc_map_to_themselves(self):
        assert response_group(ISPCategory.TELE) is ResponseGroup.TELE
        assert response_group(ISPCategory.CNC) is ResponseGroup.CNC

    def test_rest_merge_into_other(self):
        for category in (ISPCategory.CER, ISPCategory.OTHER_CN,
                         ISPCategory.FOREIGN):
            assert response_group(category) is ResponseGroup.OTHER


class TestCatalog:
    def test_default_catalog_covers_all_categories(self):
        catalog = default_isp_catalog()
        for category in ISPCategory:
            assert catalog.in_category(category), str(category)

    def test_default_catalog_real_asns(self):
        catalog = default_isp_catalog()
        assert catalog.by_asn(4134).name == "ChinaTelecom"
        assert catalog.by_asn(4538).category is ISPCategory.CER

    def test_lookup_by_name(self):
        catalog = default_isp_catalog()
        assert catalog.by_name("ChinaNetcom").asn == 4837

    def test_duplicate_asn_rejected(self):
        catalog = ISPCatalog([ISP("A", 1, ISPCategory.TELE, "CN")])
        with pytest.raises(ValueError):
            catalog.add(ISP("B", 1, ISPCategory.CNC, "CN"))

    def test_duplicate_name_rejected(self):
        catalog = ISPCatalog([ISP("A", 1, ISPCategory.TELE, "CN")])
        with pytest.raises(ValueError):
            catalog.add(ISP("A", 2, ISPCategory.CNC, "CN"))

    def test_contains_and_len(self):
        catalog = default_isp_catalog()
        assert 4134 in catalog
        assert 99999 not in catalog
        assert len(catalog) == len(list(catalog))

    def test_as_name_format(self):
        isp = ISP("ChinaTelecom", 4134, ISPCategory.TELE, "CN")
        assert isp.as_name == "CHINATELECOM, CN"
