"""Tests for the observability subsystem (repro.obs)."""

import io
import json
import logging

import pytest

from repro.experiments import Scale, WorkloadBank
from repro.obs import (DEBUG, ERROR, INFO, NULL_INSTRUMENTATION,
                       NULL_REGISTRY, NULL_SINK, WARNING, Counter,
                       EngineProfiler, Gauge, Histogram, Instrumentation,
                       JsonlSink, LoggingSink, MetricsRegistry, NullSink,
                       RingSink, TeeSink, level_from_name,
                       metrics_to_records, read_metrics_csv,
                       read_metrics_jsonl, read_trace_jsonl, resolve,
                       strip_wall_metrics, write_metrics_csv,
                       write_metrics_jsonl)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Metrics registry semantics
# ----------------------------------------------------------------------
class TestCounter:
    def test_counts(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_adjust(self):
        g = Gauge("x")
        g.set(5.0)
        g.adjust(-2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("x", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        # <=1.0 -> bucket 0, <=2.0 -> bucket 1, overflow -> bucket 2.
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(102.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(2.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=())


class TestMetricsRegistry:
    def test_memoises_series(self):
        reg = MetricsRegistry()
        a = reg.counter("net.sent", tags={"isp": "TELE"})
        b = reg.counter("net.sent", tags={"isp": "TELE"})
        c = reg.counter("net.sent", tags={"isp": "CNC"})
        assert a is b
        assert a is not c
        a.inc()
        b.inc()
        assert a.value == 2

    def test_tag_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", tags={"a": "1", "b": "2"})
        b = reg.counter("x", tags={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_deterministic_iteration(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", tags={"k": "2"})
        reg.counter("a", tags={"k": "1"})
        keys = [(m.name, tuple(sorted(m.tags.items()))) for m in reg]
        assert keys == sorted(keys)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        records = reg.snapshot()
        assert [r["type"] for r in records] == \
            ["counter", "gauge", "histogram"]
        assert records[0]["value"] == 2
        assert records[2]["count"] == 1

    def test_cardinality_guard_folds_into_overflow(self):
        reg = MetricsRegistry(max_series_per_name=2)
        reg.counter("x", tags={"peer": "1"}).inc()
        reg.counter("x", tags={"peer": "2"}).inc()
        # Third distinct tag set trips the guard.
        over = reg.counter("x", tags={"peer": "3"})
        assert over.tags == {"overflow": "true"}
        # Further overflowing series share the same fold-in counter.
        assert reg.counter("x", tags={"peer": "4"}) is over
        # Existing series are still handed back directly.
        assert reg.counter("x", tags={"peer": "1"}).tags == {"peer": "1"}

    def test_get_and_names(self):
        reg = MetricsRegistry()
        c = reg.counter("x", tags={"a": "1"})
        assert reg.get("x", {"a": "1"}) is c
        assert reg.get("x") is None
        assert reg.names() == ["x"]


class TestNullRegistry:
    def test_hands_out_shared_noops(self):
        a = NULL_REGISTRY.counter("anything", tags={"x": "1"})
        b = NULL_REGISTRY.counter("else")
        assert a is b
        a.inc(100)
        assert a.value == 0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(9)
        assert len(NULL_REGISTRY) == 0


class TestMetricFamilies:
    """Pre-resolved handle families for tagged hot-path metrics."""

    def test_counter_family_memoises_handles(self):
        reg = MetricsRegistry()
        family = reg.counter_family("net.messages_sent", "type")
        a = family.labeled("ChunkData")
        b = family.labeled("ChunkData")
        assert a is b
        # A family handle IS the registry's series for those tags.
        assert a is reg.counter("net.messages_sent",
                                tags={"type": "ChunkData"})
        a.inc(2)
        family.labeled("ChunkData").inc()
        assert reg.get("net.messages_sent", {"type": "ChunkData"}).value == 3

    def test_counter_family_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        family = reg.counter_family("x", "kind")
        family.labeled("a").inc()
        family.labeled("b").inc(5)
        assert reg.get("x", {"kind": "a"}).value == 1
        assert reg.get("x", {"kind": "b"}).value == 5

    def test_gauge_family_memoises_handles(self):
        reg = MetricsRegistry()
        family = reg.gauge_family("probe.fill", "probe")
        family.labeled("tele").set(0.5)
        assert family.labeled("tele") is reg.gauge(
            "probe.fill", tags={"probe": "tele"})
        assert reg.get("probe.fill", {"probe": "tele"}).value == 0.5

    def test_null_registry_families_are_noops(self):
        from repro.obs import NULL_COUNTER_FAMILY, NULL_GAUGE_FAMILY
        counters = NULL_REGISTRY.counter_family("x", "k")
        gauges = NULL_REGISTRY.gauge_family("y", "k")
        a = counters.labeled("anything")
        b = counters.labeled("else")
        assert a is b
        a.inc(100)
        assert a.value == 0
        gauges.labeled("z").set(9)
        assert len(NULL_REGISTRY) == 0
        # Null families are shared singletons, allocation-free per call.
        assert NULL_REGISTRY.counter_family("q", "k") is NULL_COUNTER_FAMILY
        assert NULL_REGISTRY.gauge_family("q", "k") is NULL_GAUGE_FAMILY


# ----------------------------------------------------------------------
# Trace sinks
# ----------------------------------------------------------------------
class TestLevels:
    def test_level_from_name(self):
        assert level_from_name("debug") == DEBUG
        assert level_from_name("WARNING") == WARNING
        with pytest.raises(ValueError):
            level_from_name("loud")


class TestNullSink:
    def test_disabled_for_everything(self):
        assert not NULL_SINK.enabled_for(ERROR)
        NULL_SINK.emit(0.0, ERROR, "x", a=1)  # swallowed


class TestRingSink:
    def test_keeps_recent_records(self):
        sink = RingSink(capacity=2)
        for i in range(3):
            sink.emit(float(i), INFO, "tick", i=i)
        assert [r["i"] for r in sink.records] == [1, 2]

    def test_level_filter(self):
        sink = RingSink(level=WARNING)
        sink.emit(0.0, INFO, "quiet")
        sink.emit(1.0, ERROR, "loud")
        assert [r["event"] for r in sink.records] == ["loud"]
        assert sink.enabled_for(WARNING)
        assert not sink.enabled_for(INFO)

    def test_events_by_name(self):
        sink = RingSink()
        sink.emit(0.0, INFO, "a")
        sink.emit(1.0, INFO, "b")
        assert [r["t"] for r in sink.events("b")] == [1.0]


class TestJsonlSink:
    def test_streams_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path, level=DEBUG) as sink:
            sink.emit(1.5, INFO, "hello", peer="1.0.0.1")
            sink.emit(2.0, DEBUG, "loss", n=3)
        records = read_trace_jsonl(path)
        assert records == [
            {"t": 1.5, "level": "info", "event": "hello",
             "peer": "1.0.0.1"},
            {"t": 2.0, "level": "debug", "event": "loss", "n": 3},
        ]
        assert sink.records_written == 2

    def test_level_filter(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, level=WARNING)
        sink.emit(0.0, INFO, "quiet")
        sink.emit(1.0, WARNING, "loud")
        assert sink.records_written == 1
        assert "loud" in buf.getvalue()


class TestLoggingSink:
    def test_bridges_to_stdlib(self, caplog):
        sink = LoggingSink(logging.getLogger("repro.test"), level=INFO)
        with caplog.at_level(logging.INFO, logger="repro.test"):
            sink.emit(3.25, WARNING, "uplink_drop", bytes=1420)
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "t=3.250" in message
        assert "uplink_drop" in message
        assert "bytes=1420" in message


class TestTeeSink:
    def test_fans_out(self):
        a, b = RingSink(), RingSink(level=ERROR)
        tee = TeeSink([a, b])
        tee.emit(0.0, INFO, "x")
        assert len(a.records) == 1 and len(b.records) == 0
        assert tee.enabled_for(INFO)

    def test_needs_children(self):
        with pytest.raises(ValueError):
            TeeSink([])


# ----------------------------------------------------------------------
# Export round-trips
# ----------------------------------------------------------------------
def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("net.sent", tags={"isp": "TELE"}).inc(7)
    reg.gauge("sim.queue_depth_last").set(42)
    h = reg.histogram("net.backlog", bounds=(0.1, 1.0))
    h.observe(0.05)
    h.observe(5.0)
    return reg


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        reg = _sample_registry()
        path = str(tmp_path / "m.jsonl")
        assert write_metrics_jsonl(reg, path) == 3
        assert read_metrics_jsonl(path) == metrics_to_records(reg)

    def test_csv_round_trip(self, tmp_path):
        reg = _sample_registry()
        path = str(tmp_path / "m.csv")
        assert write_metrics_csv(reg, path) == 3
        assert read_metrics_csv(path) == metrics_to_records(reg)

    def test_strip_wall_metrics(self):
        records = [{"name": "sim.wall_seconds_total"},
                   {"name": "sim.events_by_label"},
                   {"name": "sim.events_per_sec_wall_mean"}]
        assert [r["name"] for r in strip_wall_metrics(records)] == \
            ["sim.events_by_label"]

    def test_jsonl_dump_is_deterministic_text(self, tmp_path):
        paths = []
        for i in range(2):
            path = str(tmp_path / f"m{i}.jsonl")
            write_metrics_jsonl(_sample_registry(), path)
            paths.append(path)
        with open(paths[0]) as a, open(paths[1]) as b:
            assert a.read() == b.read()


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestEngineProfiler:
    def test_records_by_label(self):
        prof = EngineProfiler()
        prof.record("gossip", 0.001)
        prof.record("gossip", 0.002)
        prof.record("", 0.005)
        assert prof.total_events == 3
        assert prof.total_wall_seconds == pytest.approx(0.008)
        stats = prof.label_stats()
        assert stats["gossip"].count == 2
        # Sorted by descending wall time: unlabelled first.
        assert list(stats) == ["", "gossip"]

    def test_simulator_integration(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)
        sim.call_at(1.0, lambda: None, label="tick")
        sim.call_at(2.0, lambda: None, label="tick")
        sim.call_at(3.0, lambda: None)
        sim.run()
        stats = prof.label_stats()
        assert stats["tick"].count == 2
        assert stats[""].count == 1
        assert prof.total_events == 3

    def test_sample_tracks_queue_and_rate(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)
        sim.call_at(5.0, lambda: None)
        first = prof.sample(sim)
        assert first.queue_depth == 1
        assert first.events_per_sec == 0.0
        sim.run()
        second = prof.sample(sim)
        assert second.events_executed == 1
        assert second.queue_depth == 0

    def test_export_into_registry(self):
        prof = EngineProfiler()
        prof.record("tick", 0.25)
        sim = Simulator(profiler=prof)
        prof.sample(sim)
        reg = MetricsRegistry()
        prof.export_into(reg)
        by_label = reg.get("sim.events_by_label", {"label": "tick"})
        assert by_label is not None and by_label.value == 1
        assert reg.get("sim.wall_seconds_total").value == \
            pytest.approx(0.25)
        # Idempotent: exporting again does not double anything.
        prof.export_into(reg)
        assert by_label.value == 1
        # Count series survive the wall filter, wall series do not.
        names = {r["name"] for r in strip_wall_metrics(reg.snapshot())}
        assert "sim.events_by_label" in names
        assert "sim.wall_seconds_by_label" not in names

    def test_render_is_textual(self):
        prof = EngineProfiler()
        prof.record("tick", 0.001)
        text = prof.render()
        assert "engine profile" in text
        assert "tick" in text


# ----------------------------------------------------------------------
# Instrumentation bundle
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_null_is_shared_and_disabled(self):
        assert Instrumentation.null() is NULL_INSTRUMENTATION
        assert resolve(None) is NULL_INSTRUMENTATION
        assert not NULL_INSTRUMENTATION.enabled
        assert not NULL_INSTRUMENTATION.wants_heartbeat
        assert NULL_INSTRUMENTATION.metrics is NULL_REGISTRY
        assert NULL_INSTRUMENTATION.trace is NULL_SINK

    def test_resolve_passthrough(self):
        obs = Instrumentation()
        assert resolve(obs) is obs

    def test_default_bundle_has_registry_no_profiler(self):
        obs = Instrumentation()
        assert obs.enabled
        assert isinstance(obs.metrics, MetricsRegistry)
        assert obs.profiler is None
        assert not obs.wants_heartbeat  # nothing asked for beats

    def test_wants_heartbeat_triggers(self):
        assert Instrumentation(progress=True).wants_heartbeat
        assert Instrumentation(profiler=EngineProfiler()).wants_heartbeat
        assert Instrumentation(trace=RingSink()).wants_heartbeat

    def test_finalize_exports_profiler(self):
        prof = EngineProfiler()
        prof.record("tick", 0.001)
        obs = Instrumentation(profiler=prof)
        obs.finalize()
        assert obs.metrics.get("sim.events_by_label",
                               {"label": "tick"}).value == 1


# ----------------------------------------------------------------------
# End-to-end: instrumented sessions
# ----------------------------------------------------------------------
def _tiny_session(obs):
    from repro.streaming import Popularity
    bank = WorkloadBank(instrumentation=obs)
    return bank.session("tele", Popularity.POPULAR, Scale.SMALL, seed=11)


class TestInstrumentedSession:
    def test_session_populates_all_layers(self):
        obs = Instrumentation(trace=RingSink(capacity=100_000),
                              profiler=EngineProfiler())
        _tiny_session(obs)
        obs.finalize()
        layers = {name.split(".")[0] for name in obs.metrics.names()}
        assert {"sim", "net", "proto", "streaming"} <= layers
        assert len(obs.metrics.names()) >= 10
        events = {r["event"] for r in obs.trace.records}
        assert {"session_start", "session_end", "heartbeat",
                "peer_join"} <= events

    def test_same_seed_gives_identical_dumps(self):
        dumps = []
        for _ in range(2):
            obs = Instrumentation(profiler=EngineProfiler())
            _tiny_session(obs)
            obs.finalize()
            dumps.append(json.dumps(
                strip_wall_metrics(metrics_to_records(obs.metrics)),
                sort_keys=True))
        assert dumps[0] == dumps[1]
