"""Unit tests for bootstrap, tracker and source servers."""

import pytest

from repro.network.builder import build_internet
from repro.network.transport import Host
from repro.protocol import messages as m
from repro.protocol.bootstrap import BootstrapServer
from repro.protocol.config import ProtocolConfig
from repro.protocol.source import SourceServer
from repro.protocol.tracker import TrackerServer
from repro.sim import Simulator
from repro.streaming import ChunkGeometry, LiveChannel


class Collector(Host):
    """Minimal host capturing replies."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.inbox = []

    def handle_datagram(self, datagram):
        self.inbox.append(datagram.payload)


@pytest.fixture
def world():
    sim = Simulator(seed=1)
    internet = build_internet(sim)
    tele = internet.catalog.by_name("ChinaTelecom")
    config = ProtocolConfig()
    channel = LiveChannel(1, "news", geometry=ChunkGeometry())
    return sim, internet, tele, config, channel


def make_collector(sim, internet, isp):
    from repro.network.bandwidth import CAMPUS
    host = Collector(sim, internet.udp, internet.allocator.allocate(isp),
                     isp, CAMPUS)
    host.go_online()
    return host


class TestBootstrap:
    def test_channel_list(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        server.go_online()
        tracker_addr = internet.allocator.allocate(tele)
        server.publish_channel(channel, [[tracker_addr]])
        client = make_collector(sim, internet, tele)
        client.send(server.address, m.ChannelListRequest(), 10)
        sim.run()
        replies = [p for p in client.inbox
                   if isinstance(p, m.ChannelListReply)]
        assert replies and replies[0].channels == ((1, "news"),)

    def test_playlink_returns_one_tracker_per_group(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        server.go_online()
        groups = [[internet.allocator.allocate(tele)
                   for _ in range(2)] for _ in range(5)]
        server.publish_channel(channel, groups)
        client = make_collector(sim, internet, tele)
        client.send(server.address, m.PlaylinkRequest(channel_id=1), 10)
        sim.run()
        reply = [p for p in client.inbox
                 if isinstance(p, m.PlaylinkReply)][0]
        assert len(reply.trackers) == 5
        for group, tracker in zip(groups, reply.trackers):
            assert tracker in group

    def test_playlink_rotates_within_groups(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        server.go_online()
        group = [internet.allocator.allocate(tele) for _ in range(2)]
        server.publish_channel(channel, [group])
        a = make_collector(sim, internet, tele)
        b = make_collector(sim, internet, tele)
        a.send(server.address, m.PlaylinkRequest(channel_id=1), 10)
        sim.run()
        b.send(server.address, m.PlaylinkRequest(channel_id=1), 10)
        sim.run()
        tracker_a = [p for p in a.inbox
                     if isinstance(p, m.PlaylinkReply)][0].trackers[0]
        tracker_b = [p for p in b.inbox
                     if isinstance(p, m.PlaylinkReply)][0].trackers[0]
        assert {tracker_a, tracker_b} == set(group)

    def test_unknown_channel_ignored(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        server.go_online()
        client = make_collector(sim, internet, tele)
        client.send(server.address, m.PlaylinkRequest(channel_id=42), 10)
        sim.run()
        assert client.inbox == []

    def test_empty_tracker_group_rejected(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        with pytest.raises(ValueError):
            server.publish_channel(channel, [[]])


class TestTracker:
    def make_tracker(self, world):
        sim, internet, tele, config, channel = world
        tracker = TrackerServer(sim, internet.udp,
                                internet.allocator.allocate(tele), tele,
                                config)
        tracker.go_online()
        return tracker

    def test_query_announces_requester(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        assert client.address in tracker.active_peers(1)

    def test_reply_excludes_requester(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        for reply in client.inbox:
            assert client.address not in reply.peers

    def test_reply_contains_other_peers(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        others = [make_collector(sim, internet, tele) for _ in range(3)]
        for other in others:
            other.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        reply = [p for p in client.inbox
                 if isinstance(p, m.TrackerReply)][0]
        assert set(reply.peers) == {o.address for o in others}

    def test_expiry(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        sim.run_until(sim.now + config.tracker_peer_ttl + 1)
        assert tracker.active_peers(1) == []

    def test_seeded_peer_never_expires(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        tracker.seed_peer(1, "1.2.3.4")
        sim.run_until(config.tracker_peer_ttl * 3)
        assert "1.2.3.4" in tracker.active_peers(1)

    def test_goodbye_forgets(self, world):
        sim, internet, tele, config, channel = world
        tracker = self.make_tracker(world)
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        client.send(tracker.address, m.Goodbye(channel_id=1), 10)
        sim.run()
        assert client.address not in tracker.active_peers(1)


class TestSource:
    def make_source(self, world):
        sim, internet, tele, config, channel = world
        source = SourceServer(sim, internet.udp,
                              internet.allocator.allocate(tele), tele,
                              channel, config, max_children=2)
        source.go_online()
        return source

    def test_hello_ack_with_live_availability(self, world):
        sim, internet, tele, config, channel = world
        source = self.make_source(world)
        sim.run_until(40.0)  # live edge at chunk 9
        client = make_collector(sim, internet, tele)
        client.send(source.address, m.Hello(channel_id=1), 20)
        sim.run()
        ack = [p for p in client.inbox if isinstance(p, m.HelloAck)][0]
        assert ack.have_until >= 8
        assert ack.have_from == 0

    def test_child_cap_rejects(self, world):
        sim, internet, tele, config, channel = world
        source = self.make_source(world)
        clients = [make_collector(sim, internet, tele) for _ in range(3)]
        for client in clients:
            client.send(source.address, m.Hello(channel_id=1), 20)
            sim.run()
        rejected = [p for c in clients for p in c.inbox
                    if isinstance(p, m.HelloReject)]
        assert len(rejected) == 1
        assert source.hello_rejects == 1

    def test_serves_available_chunk(self, world):
        sim, internet, tele, config, channel = world
        source = self.make_source(world)
        sim.run_until(40.0)
        client = make_collector(sim, internet, tele)
        client.send(source.address,
                    m.DataRequest(channel_id=1, chunk=2, first=0, last=3,
                                  seq=7), 30)
        sim.run()
        reply = [p for p in client.inbox if isinstance(p, m.DataReply)][0]
        assert reply.seq == 7
        assert reply.payload_bytes == channel.geometry.range_bytes(0, 3)

    def test_misses_future_chunk(self, world):
        sim, internet, tele, config, channel = world
        source = self.make_source(world)
        sim.run_until(8.0)  # live edge at chunk 1
        client = make_collector(sim, internet, tele)
        client.send(source.address,
                    m.DataRequest(channel_id=1, chunk=50, first=0, last=3,
                                  seq=9), 30)
        sim.run()
        miss = [p for p in client.inbox if isinstance(p, m.DataMiss)][0]
        assert miss.seq == 9

    def test_peer_list_returns_children(self, world):
        sim, internet, tele, config, channel = world
        source = self.make_source(world)
        a = make_collector(sim, internet, tele)
        b = make_collector(sim, internet, tele)
        a.send(source.address, m.Hello(channel_id=1), 20)
        sim.run()
        b.send(source.address,
               m.PeerListRequest(channel_id=1, request_id=3), 30)
        sim.run()
        reply = [p for p in b.inbox
                 if isinstance(p, m.PeerListReply)][0]
        assert a.address in reply.peers
        assert reply.request_id == 3


class TestGarbagePayloads:
    """Public servers count garbage and keep serving — never raise."""

    def deliver(self, server, payload):
        from repro.network.datagram import Datagram
        server.handle_datagram(
            Datagram(src="9.9.9.9", dst=server.address, payload=payload,
                     payload_bytes=8, sent_at=0.0))

    def test_tracker_unknown_and_malformed(self, world):
        sim, internet, tele, config, channel = world
        tracker = TrackerServer(sim, internet.udp,
                                internet.allocator.allocate(tele), tele,
                                config)
        tracker.go_online()
        self.deliver(tracker, object())                 # unknown type
        self.deliver(tracker, "not a message")          # unknown type
        # Decodable type with an unusable field (unhashable channel id).
        self.deliver(tracker, m.TrackerQuery(channel_id=[]))
        assert tracker.rejected_messages == 3
        # Still serves honest traffic afterwards.
        client = make_collector(sim, internet, tele)
        client.send(tracker.address, m.TrackerQuery(channel_id=1), 10)
        sim.run()
        assert client.address in tracker.active_peers(1)

    def test_tracker_rejections_survive_snapshot(self, world):
        sim, internet, tele, config, channel = world
        tracker = TrackerServer(sim, internet.udp,
                                internet.allocator.allocate(tele), tele,
                                config)
        self.deliver(tracker, object())
        state = tracker.snapshot_state()
        fresh = TrackerServer(sim, internet.udp,
                              internet.allocator.allocate(tele), tele,
                              config)
        fresh.restore_state(state)
        assert fresh.rejected_messages == 1

    def test_bootstrap_unknown_and_malformed(self, world):
        sim, internet, tele, config, channel = world
        server = BootstrapServer(sim, internet.udp,
                                 internet.allocator.allocate(tele), tele)
        server.go_online()
        server.publish_channel(
            channel, [[internet.allocator.allocate(tele)]])
        self.deliver(server, object())
        self.deliver(server, m.PlaylinkRequest(channel_id=[]))
        assert server.rejected_messages == 2
        client = make_collector(sim, internet, tele)
        client.send(server.address, m.ChannelListRequest(), 10)
        sim.run()
        assert any(isinstance(p, m.ChannelListReply)
                   for p in client.inbox)

    def test_source_unknown_and_malformed(self, world):
        sim, internet, tele, config, channel = world
        source = SourceServer(sim, internet.udp,
                              internet.allocator.allocate(tele), tele,
                              channel, config, max_children=2)
        source.go_online()
        sim.run_until(40.0)
        self.deliver(source, object())
        # first=None breaks the range check deep in the serve path.
        self.deliver(source, m.DataRequest(channel_id=1, chunk=0,
                                           first=None, last=2, seq=1))
        assert source.rejected_messages == 2
        client = make_collector(sim, internet, tele)
        client.send(source.address, m.Hello(channel_id=1), 20)
        sim.run()
        assert any(isinstance(p, m.HelloAck) for p in client.inbox)
