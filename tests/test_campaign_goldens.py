"""Golden regression test for the Figure 6 campaign (seed 11).

Pins the rendered Figure 6 table and a digest of the per-day locality
series for a small, fast campaign configuration, so that refactors of
the campaign/parallel machinery cannot silently shift the paper's
headline reproduction.  The same goldens are asserted against a
``jobs=4`` run, proving the parallel path cannot drift either.

If a change *intentionally* alters campaign results (new model physics,
recalibration), regenerate the constants below with::

    PYTHONPATH=src python -c "
    import hashlib
    from repro.experiments.fig06 import Figure6
    from repro.streaming.video import Popularity
    from repro.workload.campaign import run_campaign
    from tests.test_campaign_goldens import GOLDEN_CONFIG, _series_digest
    r = run_campaign(GOLDEN_CONFIG())
    t = Figure6(result=r).render()
    print(hashlib.sha256(t.encode()).hexdigest(), _series_digest(r))"

and say so in the commit message.
"""

import hashlib

import pytest

from repro.experiments.fig06 import Figure6
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig, run_campaign


def GOLDEN_CONFIG() -> CampaignConfig:
    """The paper's canonical seed (11) on a CI-sized campaign."""
    return CampaignConfig(seed=11, days=3, popular_population=10,
                          unpopular_population=6,
                          session_duration=120.0, warmup=60.0)


#: sha256 of the rendered Figure 6 table for GOLDEN_CONFIG.
GOLDEN_TABLE_DIGEST = \
    "08a1945b7e86ce88ecb2be310ad85a56f4baee2587232c98c318d44e65589d4b"
#: sha256 over all six locality series at 9 significant digits.
GOLDEN_SERIES_DIGEST = \
    "e0c96fc03036676443b4725f416446f5e4d894dc08c5af309537a98e9e3aa543"
#: Spot values, so a digest mismatch comes with a readable diff.
GOLDEN_POPULAR_TELE = [78.50002925045902, 74.97386921027905,
                       72.33998371369722]
GOLDEN_POPULAR_POPULATIONS = [11, 10, 12]


def _series_digest(result) -> str:
    parts = []
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for curve in ("CNC", "TELE", "Mason"):
            parts.append(",".join(f"{value:.9e}" for value
                                  in result.series(popularity, curve)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


@pytest.fixture(scope="module")
def golden_campaign():
    return run_campaign(GOLDEN_CONFIG())


class TestCampaignGoldens:
    def test_rendered_table_is_pinned(self, golden_campaign):
        text = Figure6(result=golden_campaign).render()
        assert (hashlib.sha256(text.encode()).hexdigest()
                == GOLDEN_TABLE_DIGEST), (
            "Figure 6 table drifted; if intentional, regenerate the "
            f"goldens (see module docstring).  Rendered:\n{text}")

    def test_series_digest_is_pinned(self, golden_campaign):
        assert _series_digest(golden_campaign) == GOLDEN_SERIES_DIGEST

    def test_spot_values(self, golden_campaign):
        series = golden_campaign.series(Popularity.POPULAR, "TELE")
        assert series == pytest.approx(GOLDEN_POPULAR_TELE, abs=1e-9)
        assert ([day.population for day in golden_campaign.popular]
                == GOLDEN_POPULAR_POPULATIONS)

    def test_parallel_run_reproduces_the_goldens(self):
        result = run_campaign(GOLDEN_CONFIG(), jobs=4)
        text = Figure6(result=result).render()
        assert (hashlib.sha256(text.encode()).hexdigest()
                == GOLDEN_TABLE_DIGEST)
        assert _series_digest(result) == GOLDEN_SERIES_DIGEST

    def test_reference_path_reproduces_the_goldens(self, monkeypatch):
        # REPRO_REFERENCE_PATH is sampled when schedulers/transports
        # are constructed, so a campaign started under the variable
        # runs the unbatched reference dispatch and the full-rebuild
        # scheduler everywhere — and must land on the exact same
        # goldens as the optimised fast path (see repro.fastpath).
        monkeypatch.setenv("REPRO_REFERENCE_PATH", "1")
        result = run_campaign(GOLDEN_CONFIG())
        text = Figure6(result=result).render()
        assert (hashlib.sha256(text.encode()).hexdigest()
                == GOLDEN_TABLE_DIGEST), (
            "reference path diverged from the fast-path goldens; the "
            f"two implementations are no longer equivalent.  Rendered:"
            f"\n{text}")
        assert _series_digest(result) == GOLDEN_SERIES_DIGEST
