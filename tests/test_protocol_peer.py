"""Integration tests for the PPLive client against real infrastructure.

These exercise the paper's Figure 1 flow end to end on a small simulated
deployment: bootstrap (steps 1-4), tracker query/announce (5-6), gossip
(7-8), handshake races, data exchange, and departure handling.
"""

import pytest

from repro.protocol import messages as m
from repro.protocol.peer import PeerPhase, PPLivePeer
from repro.sim import Simulator
from repro.workload.scenario import (ScenarioConfig, SessionScenario,
                                     TELE_PROBE)


@pytest.fixture
def deployment():
    scenario = SessionScenario(ScenarioConfig(seed=2, population=10))
    sim = Simulator(seed=2)
    dep = scenario.build_deployment(sim)
    return scenario, sim, dep


def make_peer(scenario, dep, isp_name="ChinaTelecom"):
    from repro.network.bandwidth import CABLE
    internet = dep.internet
    isp = internet.catalog.by_name(isp_name)
    address = internet.allocator.allocate(isp)
    cfg = scenario.config
    return PPLivePeer(dep.sim, internet.udp, address, isp, CABLE,
                      cfg.protocol, dep.channel,
                      bootstrap_address=dep.bootstrap.address,
                      source_address=dep.source.address)


class TestJoinFlow:
    def test_bootstrap_to_active(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        assert peer.phase is PeerPhase.BOOTSTRAPPING
        sim.run_until(10.0)
        assert peer.phase is PeerPhase.ACTIVE
        # Playlink handed over one tracker per group (five groups).
        assert len(peer.trackers) == 5

    def test_double_join_rejected(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        with pytest.raises(RuntimeError):
            peer.join()

    def test_tracker_announce_registers_peer(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(10.0)
        registered = [t for t in dep.trackers
                      if peer.address in t.active_peers(1)]
        assert registered  # at least one tracker knows us

    def test_two_peers_become_neighbors(self, deployment):
        scenario, sim, dep = deployment
        a = make_peer(scenario, dep)
        b = make_peer(scenario, dep)
        a.join()
        sim.run_until(5.0)
        b.join()
        sim.run_until(60.0)
        # b learned about a from a tracker and connected (or vice versa).
        assert b.address in a.neighbors or a.address in b.neighbors

    def test_buffer_initialised_near_live_edge(self, deployment):
        scenario, sim, dep = deployment
        sim.run_until(100.0)
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(110.0)
        live = dep.channel.live_chunk(sim.now)
        cfg = scenario.config.protocol
        assert (live - cfg.startup_lag_max
                <= peer.buffer.first_chunk <= live)


class TestDataExchange:
    def test_peer_downloads_video(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(120.0)
        assert peer.buffer is not None
        assert peer.buffer.bytes_received > 0

    def test_playback_starts(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(180.0)
        assert peer.player is not None
        assert peer.player.startup_delay is not None

    def test_two_peers_exchange_data(self, deployment):
        scenario, sim, dep = deployment
        a = make_peer(scenario, dep)
        a.join()
        sim.run_until(60.0)
        b = make_peer(scenario, dep)
        b.join()
        sim.run_until(240.0)
        # Someone served someone: at least one direction of peer upload.
        assert a.bytes_uploaded + b.bytes_uploaded > 0


class TestGossip:
    def test_gossip_spreads_membership(self, deployment):
        scenario, sim, dep = deployment
        peers = [make_peer(scenario, dep) for _ in range(4)]
        for peer in peers:
            peer.join()
        sim.run_until(120.0)
        # Every peer should know more addresses than the infrastructure
        # alone would provide.
        for peer in peers:
            assert len(peer.pool) >= 2

    def test_peer_list_reply_contains_neighbors(self, deployment):
        scenario, sim, dep = deployment
        a = make_peer(scenario, dep)
        b = make_peer(scenario, dep)
        a.join()
        b.join()
        sim.run_until(90.0)
        assert a.peer_lists_sent + b.peer_lists_sent > 0


class TestDeparture:
    def test_leave_sends_goodbyes(self, deployment):
        scenario, sim, dep = deployment
        a = make_peer(scenario, dep)
        b = make_peer(scenario, dep)
        a.join()
        b.join()
        sim.run_until(60.0)
        if b.address in a.neighbors:
            a.leave()
            sim.run_until(sim.now + 5.0)
            assert a.address not in b.neighbors
        assert a.phase is PeerPhase.DEPARTED or a.leave() is None

    def test_leave_is_idempotent(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(30.0)
        peer.leave()
        peer.leave()
        assert peer.phase is PeerPhase.DEPARTED

    def test_crash_leaves_silently(self, deployment):
        scenario, sim, dep = deployment
        a = make_peer(scenario, dep)
        b = make_peer(scenario, dep)
        a.join()
        b.join()
        sim.run_until(60.0)
        had_neighbor = a.address in b.neighbors
        a.crash()
        sim.run_until(sim.now + 2.0)
        if had_neighbor:
            # No goodbye: b still believes in a until the silence sweep.
            assert a.address in b.neighbors

    def test_departed_peer_ignores_traffic(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(30.0)
        peer.leave()
        # Nothing should blow up when late datagrams arrive.
        sim.run_until(sim.now + 10.0)
        assert peer.phase is PeerPhase.DEPARTED


class TestResync:
    def test_resync_jumps_forward(self, deployment):
        scenario, sim, dep = deployment
        peer = make_peer(scenario, dep)
        peer.join()
        sim.run_until(20.0)
        assert peer.phase is PeerPhase.ACTIVE
        # Strand the peer far behind the live edge; the next maintenance
        # sweep must re-sync it near the edge.
        peer.buffer.have_until = -1000
        sim.run_until(sim.now + 10.0)
        assert peer.resyncs >= 1
        live = dep.channel.live_chunk(sim.now)
        assert live - peer.buffer.first_chunk <= \
            scenario.config.protocol.startup_lag_max
