"""Tests for the baseline peer-selection strategies and their oracles."""

import random

import pytest

from repro.baselines import (BiasedNeighborPolicy, IspOracle, OnoPolicy,
                             P4PPolicy, ProximityOracle,
                             TrackerOnlyRandomPolicy)
from repro.network.builder import build_internet
from repro.protocol.config import ProtocolConfig
from repro.protocol.peerlist import ListSource
from repro.sim import Simulator


class FakePeer:
    """Just enough of a PPLivePeer for policy decisions."""

    def __init__(self, address, config=None, neighbor_count=0):
        self.address = address
        self.config = config if config is not None else ProtocolConfig()
        self._neighbor_count = neighbor_count
        self.pending_hello_count = 0
        self.neighbors = [None] * neighbor_count
        self.trackers = []
        self.bootstrap_address = "0.0.0.1"

    def can_attempt(self, address):
        return address != self.address

    def playback_satisfactory(self):
        return False


@pytest.fixture
def world():
    sim = Simulator(seed=6)
    internet = build_internet(sim)
    tele = internet.catalog.by_name("ChinaTelecom")
    cnc = internet.catalog.by_name("ChinaNetcom")
    comcast = internet.catalog.by_name("Comcast")
    tele_addrs = [internet.allocator.allocate(tele) for _ in range(10)]
    cnc_addrs = [internet.allocator.allocate(cnc) for _ in range(10)]
    us_addrs = [internet.allocator.allocate(comcast) for _ in range(10)]
    return sim, internet, tele_addrs, cnc_addrs, us_addrs


class TestIspOracle:
    def test_same_isp(self, world):
        _sim, internet, tele, cnc, _us = world
        oracle = IspOracle(internet.directory)
        assert oracle.same_isp(tele[0], tele[1])
        assert not oracle.same_isp(tele[0], cnc[0])

    def test_unknown_address(self, world):
        _sim, internet, tele, _cnc, _us = world
        oracle = IspOracle(internet.directory)
        assert oracle.asn_of("0.0.0.9") is None
        assert not oracle.same_isp("0.0.0.9", tele[0])


class TestProximityOracle:
    def make_hosts(self, world):
        from repro.network.bandwidth import CAMPUS
        from repro.network.transport import Host

        class Silent(Host):
            def handle_datagram(self, datagram):
                pass

        sim, internet, tele, _cnc, us = world
        catalog = internet.catalog
        hosts = []
        for address in (tele[0], tele[1], us[0]):
            asn = internet.allocator.asn_of(address)
            isp = catalog.by_asn(asn)
            host = Silent(sim, internet.udp, address, isp, CAMPUS)
            host.go_online()
            hosts.append(host)
        return hosts

    def test_perfect_oracle_orders_by_distance(self, world):
        sim, internet, tele, _cnc, us = world
        self.make_hosts(world)
        oracle = ProximityOracle(internet.latency, internet.udp,
                                 random.Random(1), noise_sigma=0.0)
        near = oracle.estimated_rtt(tele[0], tele[1])
        far = oracle.estimated_rtt(tele[0], us[0])
        assert near < far

    def test_unknown_endpoint_pessimistic(self, world):
        sim, internet, tele, _cnc, _us = world
        oracle = ProximityOracle(internet.latency, internet.udp,
                                 random.Random(1))
        assert oracle.estimated_rtt(tele[0], "0.0.0.9") == 1.0

    def test_noise_validated(self, world):
        sim, internet, _t, _c, _u = world
        with pytest.raises(ValueError):
            ProximityOracle(internet.latency, internet.udp,
                            random.Random(1), noise_sigma=-1.0)


class TestTrackerOnly:
    def test_ignores_non_tracker_sources(self, world):
        _sim, _internet, tele, _cnc, _us = world
        policy = TrackerOnlyRandomPolicy()
        peer = FakePeer("9.9.9.9")
        chosen = policy.select_candidates(peer, tele,
                                          ListSource.NEIGHBOR,
                                          random.Random(1))
        assert chosen == []

    def test_selects_random_from_tracker(self, world):
        _sim, _internet, tele, _cnc, _us = world
        policy = TrackerOnlyRandomPolicy()
        peer = FakePeer("9.9.9.9")
        chosen = policy.select_candidates(peer, tele, ListSource.TRACKER,
                                          random.Random(1))
        assert chosen
        assert set(chosen) <= set(tele)

    def test_constant_tracker_interval(self, world):
        policy = TrackerOnlyRandomPolicy(reannounce_interval=45.0)
        peer = FakePeer("9.9.9.9")
        assert policy.tracker_interval(peer, peer.config) == 45.0

    def test_no_referral(self):
        assert TrackerOnlyRandomPolicy.uses_neighbor_referral is False

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TrackerOnlyRandomPolicy(reannounce_interval=0.0)


class TestBiased:
    def test_internal_fraction_respected(self, world):
        sim, internet, tele, cnc, _us = world
        oracle = IspOracle(internet.directory)
        policy = BiasedNeighborPolicy(oracle, internal_fraction=0.75)
        peer = FakePeer(tele[0])
        # Plenty of internal supply so the fraction is achievable.
        tele_isp = internet.catalog.by_name("ChinaTelecom")
        extra = [internet.allocator.allocate(tele_isp) for _ in range(20)]
        pool = tele[1:] + extra + cnc
        chosen = policy.select_candidates(peer, pool, ListSource.TRACKER,
                                          random.Random(3))
        internal = sum(1 for a in chosen if oracle.same_isp(tele[0], a))
        assert internal >= round(len(chosen) * 0.75) - 1

    def test_tops_up_with_internal_when_no_external(self, world):
        _sim, internet, tele, _cnc, _us = world
        oracle = IspOracle(internet.directory)
        policy = BiasedNeighborPolicy(oracle, internal_fraction=0.5)
        peer = FakePeer(tele[0])
        chosen = policy.select_candidates(peer, tele[1:],
                                          ListSource.TRACKER,
                                          random.Random(3))
        # Pool smaller than the batch: everything connectable is chosen.
        assert sorted(chosen) == sorted(tele[1:])

    def test_fraction_validated(self, world):
        _sim, internet, _t, _c, _u = world
        with pytest.raises(ValueError):
            BiasedNeighborPolicy(IspOracle(internet.directory),
                                 internal_fraction=1.5)


class TestOno:
    def test_prefers_nearest(self, world):
        sim, internet, tele, _cnc, us = world
        TestProximityOracle().make_hosts(world)
        oracle = ProximityOracle(internet.latency, internet.udp,
                                 random.Random(2), noise_sigma=0.0)
        policy = OnoPolicy(oracle)
        peer = FakePeer(tele[0])
        peer.config.connect_batch = 1
        peer.config.target_neighbors = 1
        chosen = policy.select_candidates(peer, [us[0], tele[1]],
                                          ListSource.NEIGHBOR,
                                          random.Random(2))
        assert chosen == [tele[1]]


class TestP4P:
    def test_internal_first(self, world):
        _sim, internet, tele, cnc, _us = world
        oracle = IspOracle(internet.directory)
        policy = P4PPolicy(oracle)
        peer = FakePeer(tele[0])
        peer.config.connect_batch = 4
        peer.config.target_neighbors = 4
        chosen = policy.select_candidates(peer, tele[1:6] + cnc[:5],
                                          ListSource.NEIGHBOR,
                                          random.Random(4))
        assert all(oracle.same_isp(tele[0], a) for a in chosen)

    def test_falls_back_to_external(self, world):
        _sim, internet, tele, cnc, _us = world
        oracle = IspOracle(internet.directory)
        policy = P4PPolicy(oracle)
        peer = FakePeer(tele[0])
        chosen = policy.select_candidates(peer, cnc[:5],
                                          ListSource.NEIGHBOR,
                                          random.Random(4))
        assert chosen
        assert set(chosen) <= set(cnc[:5])

    def test_no_deficit_no_candidates(self, world):
        _sim, internet, tele, cnc, _us = world
        oracle = IspOracle(internet.directory)
        policy = P4PPolicy(oracle)
        config = ProtocolConfig()
        peer = FakePeer(tele[0], config=config,
                        neighbor_count=config.target_neighbors)
        chosen = policy.select_candidates(peer, cnc,
                                          ListSource.NEIGHBOR,
                                          random.Random(4))
        assert chosen == []
