"""Unit tests for the streaming substrate: chunks, buffer, playback."""

import pytest

from repro.streaming import (ChunkBuffer, ChunkGeometry, LiveChannel,
                             PlaybackMonitor, PlayerState, Popularity,
                             SUBPIECE_LARGE, SUBPIECE_SMALL)


class TestGeometry:
    def test_defaults(self):
        g = ChunkGeometry()
        assert g.chunk_bytes == int(g.bitrate_bps * g.chunk_seconds / 8)
        assert g.subpieces_per_chunk >= 1

    def test_subpiece_sizes_sum_to_chunk(self):
        g = ChunkGeometry(bitrate_bps=384_000, chunk_seconds=4.0)
        total = sum(g.subpiece_size(i) for i in range(g.subpieces_per_chunk))
        assert total == g.chunk_bytes

    def test_last_subpiece_may_be_short(self):
        g = ChunkGeometry(bitrate_bps=384_000, chunk_seconds=4.0)
        last = g.subpiece_size(g.subpieces_per_chunk - 1)
        assert 0 < last <= g.subpiece_bytes

    def test_small_subpiece_variant(self):
        g = ChunkGeometry(subpiece_bytes=SUBPIECE_SMALL)
        assert g.subpiece_size(0) == SUBPIECE_SMALL

    def test_invalid_subpiece_size_rejected(self):
        with pytest.raises(ValueError):
            ChunkGeometry(subpiece_bytes=1000)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ChunkGeometry(bitrate_bps=0)

    def test_range_bytes(self):
        g = ChunkGeometry()
        assert g.range_bytes(0, 0) == g.subpiece_size(0)
        assert (g.range_bytes(0, 2)
                == sum(g.subpiece_size(i) for i in range(3)))

    def test_range_bytes_empty_rejected(self):
        g = ChunkGeometry()
        with pytest.raises(ValueError):
            g.range_bytes(3, 2)

    def test_subpiece_index_bounds(self):
        g = ChunkGeometry()
        with pytest.raises(IndexError):
            g.subpiece_size(g.subpieces_per_chunk)

    def test_live_chunk_progression(self):
        g = ChunkGeometry(chunk_seconds=4.0)
        assert g.live_chunk(0.0) == -1
        assert g.live_chunk(3.9) == -1
        assert g.live_chunk(4.0) == 0
        assert g.live_chunk(8.5) == 1
        assert g.live_chunk(104.0, channel_start=100.0) == 0


class TestChannel:
    def test_live_chunk_uses_start_time(self):
        channel = LiveChannel(1, "test", start_time=50.0,
                              geometry=ChunkGeometry(chunk_seconds=5.0))
        assert channel.live_chunk(50.0) == -1
        assert channel.live_chunk(60.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveChannel(-1, "x")
        with pytest.raises(ValueError):
            LiveChannel(1, "")

    def test_str(self):
        channel = LiveChannel(7, "cctv", popularity=Popularity.UNPOPULAR)
        assert "cctv" in str(channel)
        assert "unpopular" in str(channel)


@pytest.fixture
def geometry():
    # Tiny chunks make tests readable: 4 sub-pieces per chunk.
    return ChunkGeometry(bitrate_bps=SUBPIECE_LARGE * 8, chunk_seconds=4.0)


class TestBuffer:
    def test_geometry_gives_four_subpieces(self, geometry):
        assert geometry.subpieces_per_chunk == 4

    def test_empty_buffer(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=10)
        assert buf.have_until == 9
        assert not buf.has_chunk(10)
        assert buf.missing_subpieces(10) == [0, 1, 2, 3]

    def test_chunk_completion_advances_frontier(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        for sp in range(4):
            buf.add_subpiece(0, sp)
        assert buf.have_until == 0
        assert buf.has_chunk(0)

    def test_out_of_order_completion(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        buf.add_range(1, 0, 3)  # chunk 1 complete but chunk 0 missing
        assert buf.have_until == -1
        assert buf.has_chunk(1)
        buf.add_range(0, 0, 3)
        assert buf.have_until == 1  # frontier jumps over both

    def test_duplicates_counted_not_stored(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        assert buf.add_subpiece(0, 0) is True
        assert buf.add_subpiece(0, 0) is False
        assert buf.duplicate_subpieces == 1

    def test_below_first_chunk_ignored(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=5)
        assert buf.add_subpiece(3, 0) is False

    def test_subpiece_bounds_checked(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        with pytest.raises(IndexError):
            buf.add_subpiece(0, 4)

    def test_completion_fraction(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        buf.add_range(0, 0, 1)
        assert buf.completion(0) == pytest.approx(0.5)
        buf.add_range(0, 2, 3)
        assert buf.completion(0) == 1.0

    def test_bytes_received_accounting(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        buf.add_range(0, 0, 3)
        assert buf.bytes_received == geometry.chunk_bytes

    def test_eviction_drops_stale_partials(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0, keep_behind=4)
        buf.add_subpiece(0, 0)  # partial, will go stale
        buf.evict_before(playout_chunk=10)
        assert list(buf.partial_chunks()) == []

    def test_eviction_advances_abandoned_frontier(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0, keep_behind=2)
        buf.add_range(5, 0, 3)
        buf.evict_before(playout_chunk=5)
        # Frontier gave up on chunks < 3 and swallowed complete chunk 5.
        assert buf.have_until >= 3


class TestPlayback:
    def make(self, geometry, first_chunk=0, join=0.0):
        buf = ChunkBuffer(geometry, first_chunk=first_chunk)
        player = PlaybackMonitor(geometry, buf, join_time=join,
                                 startup_chunks=2)
        return buf, player

    def test_startup_waits_for_buffer(self, geometry):
        buf, player = self.make(geometry)
        player.tick(1.0)
        assert player.state is PlayerState.STARTUP
        buf.add_range(0, 0, 3)
        player.tick(2.0)
        assert player.state is PlayerState.STARTUP  # needs 2 chunks
        buf.add_range(1, 0, 3)
        player.tick(3.0)
        assert player.state is PlayerState.PLAYING
        assert player.startup_delay == pytest.approx(3.0)

    def test_playout_advances_with_deadlines(self, geometry):
        buf, player = self.make(geometry)
        for chunk in range(6):
            buf.add_range(chunk, 0, 3)
        player.tick(0.0)
        assert player.state is PlayerState.PLAYING
        player.tick(8.1)  # two chunk durations later
        assert player.playout_chunk >= 1

    def test_stall_on_missing_chunk(self, geometry):
        buf, player = self.make(geometry)
        buf.add_range(0, 0, 3)
        buf.add_range(1, 0, 3)
        player.tick(0.0)
        # Nothing else arrives; play past the available chunks.
        player.tick(30.0)
        assert player.state is PlayerState.STALLED
        assert player.stall_count == 1
        assert player.deadlines_missed >= 1

    def test_stall_recovery(self, geometry):
        buf, player = self.make(geometry)
        buf.add_range(0, 0, 3)
        buf.add_range(1, 0, 3)
        player.tick(0.0)
        player.tick(30.0)
        assert player.state is PlayerState.STALLED
        # Everything up to well past the frozen deadline clock arrives:
        # the player resumes and stays playing.
        for chunk in range(2, 12):
            buf.add_range(chunk, 0, 3)
        player.tick(31.0)
        assert player.state is PlayerState.PLAYING
        assert player.stall_seconds > 0
        assert player.playout_chunk > 1

    def test_continuity_index(self, geometry):
        buf, player = self.make(geometry)
        assert player.continuity_index == 1.0
        for chunk in range(3):
            buf.add_range(chunk, 0, 3)
        player.tick(0.0)
        player.tick(8.5)
        assert 0.0 < player.continuity_index <= 1.0

    def test_satisfactory_requires_playing(self, geometry):
        buf, player = self.make(geometry)
        assert not player.is_satisfactory()
        buf.add_range(0, 0, 3)
        buf.add_range(1, 0, 3)
        player.tick(0.0)
        assert player.is_satisfactory()

    def test_stop_freezes_state(self, geometry):
        buf, player = self.make(geometry)
        buf.add_range(0, 0, 3)
        buf.add_range(1, 0, 3)
        player.tick(0.0)
        player.stop(5.0)
        assert player.state is PlayerState.STOPPED
        player.tick(100.0)  # no effect
        assert player.state is PlayerState.STOPPED

    def test_stop_while_stalled_accumulates_stall_time(self, geometry):
        buf, player = self.make(geometry)
        buf.add_range(0, 0, 3)
        buf.add_range(1, 0, 3)
        player.tick(0.0)
        player.tick(30.0)
        assert player.state is PlayerState.STALLED
        player.stop(40.0)
        assert player.stall_seconds > 0

    def test_invalid_startup_chunks(self, geometry):
        buf = ChunkBuffer(geometry, first_chunk=0)
        with pytest.raises(ValueError):
            PlaybackMonitor(geometry, buf, join_time=0.0, startup_chunks=0)
