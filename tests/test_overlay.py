"""Tests for the overlay-graph structure analysis."""

import networkx as nx
import pytest

from repro.analysis.overlay import (OverlayAnalysis, analyze_overlay,
                                    analyze_session_overlay,
                                    expected_intra_fraction,
                                    intra_isp_edge_fraction,
                                    isp_assortativity, isp_modularity,
                                    overlay_graph)
from repro.network.addressing import AddressAllocator
from repro.network.asn import AsnDirectory
from repro.network.isp import default_isp_catalog
from repro.protocol.neighbors import NeighborTable


class FakePeer:
    def __init__(self, address, neighbor_addresses=()):
        self.address = address
        self.neighbors = NeighborTable(capacity=64)
        for neighbor in neighbor_addresses:
            self.neighbors.add(neighbor, now=0.0)


@pytest.fixture(scope="module")
def world():
    catalog = default_isp_catalog()
    allocator = AddressAllocator(catalog)
    directory = AsnDirectory(catalog, allocator)
    tele = [allocator.allocate(catalog.by_name("ChinaTelecom"))
            for _ in range(4)]
    cnc = [allocator.allocate(catalog.by_name("ChinaNetcom"))
           for _ in range(4)]
    return directory, tele, cnc


class TestGraphConstruction:
    def test_nodes_and_edges(self, world):
        directory, tele, cnc = world
        peers = [FakePeer(tele[0], [tele[1]]),
                 FakePeer(tele[1]),
                 FakePeer(cnc[0], [tele[0]])]
        graph = overlay_graph(peers, directory)
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(tele[0], tele[1])
        assert graph.has_edge(cnc[0], tele[0])

    def test_edges_to_unknown_peers_ignored(self, world):
        directory, tele, cnc = world
        peers = [FakePeer(tele[0], ["9.9.9.9", tele[1]]),
                 FakePeer(tele[1])]
        graph = overlay_graph(peers, directory)
        assert graph.number_of_edges() == 1

    def test_infrastructure_excluded(self, world):
        directory, tele, cnc = world
        peers = [FakePeer(tele[0], [tele[1]]), FakePeer(tele[1])]
        graph = overlay_graph(peers, directory,
                              infrastructure=frozenset([tele[1]]))
        assert tele[1] not in graph.nodes


class TestMetrics:
    def make_clustered(self, world):
        """Two ISP cliques joined by one bridge edge."""
        directory, tele, cnc = world
        peers = []
        for i, address in enumerate(tele):
            peers.append(FakePeer(address,
                                  [a for a in tele if a != address]))
        for i, address in enumerate(cnc):
            peers.append(FakePeer(address,
                                  [a for a in cnc if a != address]))
        peers[0].neighbors.add(cnc[0], now=0.0)  # the bridge
        return analyze_overlay(peers, directory)

    def make_bipartite(self, world):
        """Every edge crosses the ISP boundary."""
        directory, tele, cnc = world
        peers = [FakePeer(t, cnc) for t in tele]
        peers += [FakePeer(c) for c in cnc]
        return analyze_overlay(peers, directory)

    def test_clustered_overlay_scores_high(self, world):
        analysis = self.make_clustered(world)
        assert analysis.intra_isp_fraction > 0.9
        assert analysis.locality_lift > 1.5
        assert analysis.clustering_coefficient > 0.8
        assert analysis.assortativity > 0.8
        assert analysis.modularity > 0.3

    def test_bipartite_overlay_scores_low(self, world):
        analysis = self.make_bipartite(world)
        assert analysis.intra_isp_fraction == 0.0
        assert analysis.assortativity < 0.0
        assert analysis.modularity < 0.0

    def test_null_model_matches_random_expectation(self, world):
        directory, tele, cnc = world
        # Balanced two-category graph: null expectation is 0.5.
        peers = [FakePeer(tele[0], [tele[1], cnc[0]]),
                 FakePeer(tele[1], [cnc[1]]),
                 FakePeer(cnc[0], [cnc[1]]),
                 FakePeer(cnc[1])]
        graph = overlay_graph(peers, directory)
        assert expected_intra_fraction(graph) == pytest.approx(0.5)

    def test_empty_graph_returns_none(self, world):
        directory, _tele, _cnc = world
        analysis = analyze_overlay([], directory)
        assert analysis.nodes == 0
        assert analysis.intra_isp_fraction is None
        assert analysis.locality_lift is None
        assert "n/a" in analysis.render()

    def test_render_mentions_lift(self, world):
        analysis = self.make_clustered(world)
        assert "lift" in analysis.render()


class TestSessionIntegration:
    def test_session_overlay_is_isp_clustered(self):
        from repro.workload import ScenarioConfig, run_session
        result = run_session(ScenarioConfig(seed=5, population=30,
                                            duration=420.0, warmup=150.0))
        analysis = analyze_session_overlay(result)
        assert analysis.nodes >= 25
        assert analysis.edges > analysis.nodes  # well connected
        # Clustering needs session time to develop; at this tiny scale we
        # only require the overlay not to be *anti*-local.  The benchmark
        # suite asserts lift > 1 on the default-scale sessions.
        assert analysis.locality_lift is not None
        assert analysis.locality_lift > 0.8
        assert analysis.clustering_coefficient is not None
