"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.bandwidth import AccessProfile, UplinkQueue
from repro.sim import Simulator
from repro.streaming import ChunkBuffer, ChunkGeometry, SUBPIECE_LARGE


# ----------------------------------------------------------------------
# Event queue ordering
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_always_execute_in_nondecreasing_time_order(times):
    sim = Simulator()
    executed = []
    for t in times:
        sim.call_at(t, lambda t=t: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(times)


@given(st.lists(st.tuples(st.floats(0.0, 100.0), st.booleans()),
                min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    events = []
    for index, (t, cancel) in enumerate(entries):
        events.append((sim.call_at(t, lambda i=index: fired.append(i)),
                       cancel))
    for event, cancel in events:
        if cancel:
            sim.cancel(event)
    sim.run()
    cancelled = {i for i, (e, c) in enumerate(events) if c}
    assert cancelled.isdisjoint(fired)
    assert len(fired) == len(entries) - len(cancelled)


# ----------------------------------------------------------------------
# Chunk buffer invariants
# ----------------------------------------------------------------------
geometry = ChunkGeometry(bitrate_bps=SUBPIECE_LARGE * 8 * 2,
                         chunk_seconds=2.0)  # 4 sub-pieces per chunk

subpiece_events = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 3)),
    min_size=1, max_size=200)


@given(subpiece_events)
@settings(max_examples=80, deadline=None)
def test_buffer_frontier_is_contiguous(events):
    buf = ChunkBuffer(geometry, first_chunk=0)
    for chunk, sp in events:
        buf.add_subpiece(chunk, sp)
    # Every chunk up to the frontier is complete.
    for chunk in range(buf.first_chunk, buf.have_until + 1):
        assert buf.has_chunk(chunk)
        assert buf.missing_subpieces(chunk) == []
    # The chunk just past the frontier is incomplete (else the frontier
    # would have advanced).
    assert not buf.has_chunk(buf.have_until + 1)


@given(subpiece_events)
@settings(max_examples=80, deadline=None)
def test_buffer_bytes_conservation(events):
    buf = ChunkBuffer(geometry, first_chunk=0)
    distinct = set()
    for chunk, sp in events:
        buf.add_subpiece(chunk, sp)
        if chunk >= 0:
            distinct.add((chunk, sp))
    expected = sum(geometry.subpiece_size(sp) for _c, sp in distinct)
    assert buf.bytes_received == expected


@given(subpiece_events)
@settings(max_examples=80, deadline=None)
def test_buffer_duplicates_plus_new_equals_total(events):
    buf = ChunkBuffer(geometry, first_chunk=0)
    accepted = sum(1 for chunk, sp in events
                   if buf.add_subpiece(chunk, sp))
    assert accepted + buf.duplicate_subpieces == len(events)


@given(subpiece_events, st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_buffer_eviction_never_moves_frontier_backwards(events, playout):
    buf = ChunkBuffer(geometry, first_chunk=0, keep_behind=4)
    for chunk, sp in events:
        buf.add_subpiece(chunk, sp)
    frontier_before = buf.have_until
    buf.evict_before(playout)
    assert buf.have_until >= frontier_before


# ----------------------------------------------------------------------
# Uplink queue invariants
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.floats(0.0, 10.0), st.integers(1, 50_000)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_uplink_delays_keep_fifo_order(sends):
    """Departure times are non-decreasing when arrivals are ordered."""
    queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=1e9))
    now = 0.0
    last_departure = 0.0
    for gap, size in sends:
        now += gap
        delay = queue.enqueue(size, now)
        assert delay is not None
        departure = now + delay
        assert departure >= last_departure - 1e-9
        # Serialisation alone lower-bounds the delay.
        assert delay >= size * 8.0 / 1e6 - 1e-9
        last_departure = departure


@given(st.lists(st.integers(1, 100_000), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_uplink_accounting_consistent(sizes):
    queue = UplinkQueue(AccessProfile("t", 1e6, 64_000, max_backlog=3.0))
    sent_bytes = 0
    for size in sizes:
        delay = queue.enqueue(size, now=0.0)
        if delay is not None:
            sent_bytes += size
    assert queue.bytes_sent == sent_bytes
    assert queue.datagrams_sent + queue.datagrams_dropped == len(sizes)


# ----------------------------------------------------------------------
# Deterministic replay of a small end-to-end world
# ----------------------------------------------------------------------
@given(st.integers(0, 2 ** 16))
@settings(max_examples=5, deadline=None)
def test_simulation_is_deterministic_in_seed(seed):
    from repro.workload import ScenarioConfig, run_session

    config = ScenarioConfig(seed=seed, population=6, duration=90.0,
                            warmup=45.0)
    a = run_session(config)
    b = run_session(config)
    assert a.deployment.sim.events_executed == b.deployment.sim.events_executed
    assert len(a.probe().trace) == len(b.probe().trace)
    times_a = [r.time for r in a.probe().trace]
    times_b = [r.time for r in b.probe().trace]
    assert times_a == times_b
