"""Resume-from-checkpoint is byte-identical to an uninterrupted run.

The checkpoint contract (``docs/CHECKPOINT.md``): a campaign killed at
any point and resumed from its checkpoint directory produces *exactly*
the bytes an uninterrupted run produces — same rendered Figure 6 table,
same locality series digest, same telemetry projection, same
``run_summary`` event totals — across checkpoint placement, ``--jobs``
level, active fault schedules, and telemetry on/off.

The golden campaign config from ``test_campaign_goldens`` anchors the
comparisons: resumed runs are asserted against the *pinned* golden
digests, not just against each other, so a resume bug cannot hide
behind a matching pair of equally-wrong runs.
"""

import io
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointPolicy
from repro.faults import FaultSchedule, ServerOutage
from repro.obs import Instrumentation, ProgressBus
from repro.obs.live import (KIND_CAMPAIGN_START, KIND_DAY_COMPLETE,
                            KIND_RUN_SUMMARY, deterministic_records,
                            read_progress, summarize_progress)
from repro.workload.campaign import run_campaign

from .test_campaign_goldens import (GOLDEN_CONFIG, GOLDEN_SERIES_DIGEST,
                                    GOLDEN_TABLE_DIGEST, _series_digest)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _table_digest(result) -> str:
    import hashlib

    from repro.experiments.fig06 import Figure6
    return hashlib.sha256(
        Figure6(result=result).render().encode()).hexdigest()


def _assert_golden(result) -> None:
    assert _table_digest(result) == GOLDEN_TABLE_DIGEST
    assert _series_digest(result) == GOLDEN_SERIES_DIGEST


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    """A fresh, fully checkpointed golden campaign (serial, every=1)."""
    root = tmp_path_factory.mktemp("ckpt") / "campaign"
    result = run_campaign(GOLDEN_CONFIG(),
                          checkpoint=CheckpointPolicy(path=str(root)))
    return root, result


def _partial_copy(source: Path, target: Path, missing) -> Path:
    """Clone a checkpoint directory minus some units — the on-disk state
    a campaign killed at that point would have left behind."""
    shutil.copytree(source, target)
    for name in missing:
        os.unlink(target / "units" / f"{name}.json")
    return target


class TestResumeByteIdentity:
    def test_fresh_checkpointed_run_matches_goldens(self, checkpointed):
        _, result = checkpointed
        _assert_golden(result)

    @pytest.mark.parametrize("missing", [
        pytest.param(["unpopular-0002"], id="killed-at-last-unit"),
        pytest.param(["popular-0000"], id="first-unit-lost"),
        pytest.param(["popular-0002", "unpopular-0000"],
                     id="killed-mid-campaign"),
        pytest.param(["popular-0000", "popular-0001", "popular-0002",
                      "unpopular-0000", "unpopular-0001",
                      "unpopular-0002"], id="nothing-checkpointed"),
    ], )
    def test_resume_matches_goldens_at_any_kill_point(
            self, checkpointed, tmp_path, missing):
        source, _ = checkpointed
        root = _partial_copy(source, tmp_path / "campaign", missing)
        resumed = run_campaign(GOLDEN_CONFIG(),
                               checkpoint=CheckpointPolicy(
                                   path=str(root), resume=True))
        _assert_golden(resumed)

    def test_resume_with_parallel_workers(self, checkpointed, tmp_path):
        source, _ = checkpointed
        root = _partial_copy(source, tmp_path / "campaign",
                             ["popular-0001", "unpopular-0002"])
        resumed = run_campaign(GOLDEN_CONFIG(), jobs=2,
                               checkpoint=CheckpointPolicy(
                                   path=str(root), resume=True))
        _assert_golden(resumed)

    def test_parallel_checkpoint_then_serial_resume(self, tmp_path):
        root = tmp_path / "campaign"
        fresh = run_campaign(GOLDEN_CONFIG(), jobs=2,
                             checkpoint=CheckpointPolicy(
                                 path=str(root), every=4))
        _assert_golden(fresh)
        os.unlink(root / "units" / "unpopular-0001.json")
        resumed = run_campaign(GOLDEN_CONFIG(),
                               checkpoint=CheckpointPolicy(
                                   path=str(root), resume=True))
        _assert_golden(resumed)

    def test_resume_keeps_checkpointing_new_units(self, checkpointed,
                                                  tmp_path):
        source, _ = checkpointed
        root = _partial_copy(source, tmp_path / "campaign",
                             ["unpopular-0001", "unpopular-0002"])
        run_campaign(GOLDEN_CONFIG(),
                     checkpoint=CheckpointPolicy(path=str(root),
                                                 resume=True))
        units = sorted(p.name for p in (root / "units").glob("*.json"))
        assert units == ["popular-0000.json", "popular-0001.json",
                         "popular-0002.json", "unpopular-0000.json",
                         "unpopular-0001.json", "unpopular-0002.json"]


class TestResumeUnderFaults:
    def test_faulted_campaign_resumes_byte_identically(self, tmp_path):
        config = GOLDEN_CONFIG()
        config.faults = FaultSchedule(events=(
            ServerOutage(target="bootstrap", start=70.0, duration=20.0),))
        root = tmp_path / "campaign"
        fresh = run_campaign(config,
                             checkpoint=CheckpointPolicy(path=str(root)))
        # Faults shift the results away from the fault-free goldens...
        assert _series_digest(fresh) != GOLDEN_SERIES_DIGEST
        os.unlink(root / "units" / "popular-0001.json")
        os.unlink(root / "units" / "unpopular-0000.json")
        resumed = run_campaign(config,
                               checkpoint=CheckpointPolicy(
                                   path=str(root), resume=True))
        # ...but resume under the same schedule is still byte-identical.
        assert resumed == fresh
        assert _series_digest(resumed) == _series_digest(fresh)
        assert _table_digest(resumed) == _table_digest(fresh)


def _instrumented_run(checkpoint=None):
    stream = io.StringIO()
    obs = Instrumentation(progress_bus=ProgressBus(stream),
                          heartbeat=False)
    import dataclasses
    config = dataclasses.replace(GOLDEN_CONFIG(), instrumentation=obs)
    result = run_campaign(config, checkpoint=checkpoint)
    events = obs.metrics.get("sim.events_executed")
    return result, read_progress(io.StringIO(stream.getvalue())), \
        int(events.value) if events is not None else 0


class TestResumeTelemetry:
    def test_telemetry_projection_and_event_totals_match(
            self, checkpointed, tmp_path):
        source, _ = checkpointed
        _, full_records, full_events = _instrumented_run()
        root = _partial_copy(source, tmp_path / "campaign",
                             ["popular-0002", "unpopular-0001"])
        resumed, resumed_records, resumed_events = _instrumented_run(
            checkpoint=CheckpointPolicy(path=str(root), resume=True))
        _assert_golden(resumed)
        # The mode-independent projection is identical: restored days
        # re-emit their day_complete records in canonical order, and
        # the restored/resumed_units markers are mode metadata.
        assert deterministic_records(resumed_records) \
            == deterministic_records(full_records)
        # The resumed run's event total folds the checkpointed days'
        # recorded counts, so the run_summary footer cannot drift.
        assert resumed_events == full_events > 0

    def test_restored_days_are_marked(self, checkpointed, tmp_path):
        source, _ = checkpointed
        root = _partial_copy(source, tmp_path / "campaign",
                             ["unpopular-0002"])
        _, records, _ = _instrumented_run(
            checkpoint=CheckpointPolicy(path=str(root), resume=True))
        start = next(r for r in records
                     if r["kind"] == KIND_CAMPAIGN_START)
        assert start["resumed_units"] == 5
        days = [r for r in records if r["kind"] == KIND_DAY_COMPLETE]
        assert sum(1 for r in days if r.get("restored")) == 5
        assert len(days) == 6

    def test_telemetry_off_run_resumes_telemetry_on_checkpoint(
            self, checkpointed, tmp_path):
        source, _ = checkpointed
        root = _partial_copy(source, tmp_path / "campaign",
                             ["popular-0000"])
        resumed, _, _ = _instrumented_run(
            checkpoint=CheckpointPolicy(path=str(root), resume=True))
        _assert_golden(resumed)


class TestStatusAfterResume:
    """``repro status`` ETA must not be wrecked by near-instant
    checkpoint replays at the start of a resumed run."""

    @staticmethod
    def _day(wall, restored=False):
        record = {"kind": KIND_DAY_COMPLETE, "day": 1, "days": 2,
                  "popularity": "popular", "wall_seconds": wall}
        if restored:
            record["restored"] = True
        return record

    def test_eta_ignores_restored_units(self):
        records = [
            {"kind": "run_start", "unix": 0.0, "wall_seconds": 0.0},
            {"kind": KIND_CAMPAIGN_START, "days": 2, "total_units": 4,
             "seed": 11, "resumed_units": 2, "wall_seconds": 0.0},
            self._day(0.01, restored=True),
            self._day(0.02, restored=True),
            self._day(10.0),
        ]
        summary = summarize_progress(records, now_unix=10.0)
        assert summary["campaign"]["units_done"] == 3
        assert summary["campaign"]["units_restored"] == 2
        # One fresh unit took ~10s of wall and one unit remains: the ETA
        # is ~10s, not the ~3.3s a naive wall/units_done rate would say.
        assert summary["eta_seconds"] == pytest.approx(10.0, abs=0.5)

    def test_eta_none_while_only_replays_have_landed(self):
        records = [
            {"kind": KIND_CAMPAIGN_START, "days": 2, "total_units": 4,
             "seed": 11, "resumed_units": 2, "wall_seconds": 0.0},
            self._day(0.01, restored=True),
            self._day(0.02, restored=True),
        ]
        summary = summarize_progress(records, now_unix=1.0)
        assert summary["eta_seconds"] is None

    def test_eta_unchanged_for_non_resumed_runs(self):
        records = [
            {"kind": KIND_CAMPAIGN_START, "days": 2, "total_units": 4,
             "seed": 11, "wall_seconds": 0.0},
            self._day(4.0),
            self._day(8.0),
        ]
        summary = summarize_progress(records, now_unix=8.0)
        assert summary["eta_seconds"] == pytest.approx(8.0, abs=0.5)
        assert "units_restored" not in summary["campaign"]


# ----------------------------------------------------------------------
# Kill -9 mid-campaign, then resume (full CLI path)
# ----------------------------------------------------------------------
#: Child entry point: the real CLI with the SMALL scale shrunk to a
#: seconds-long campaign, so the kill/resume cycle stays CI-sized.
_CHILD = """\
import sys
import repro.experiments.fig06 as fig06
from repro.experiments.base import Scale
fig06._CAMPAIGN_SCALES[Scale.SMALL] = dict(
    days=2, popular_population=10, unpopular_population=6,
    session_duration=60.0, warmup=30.0)
from repro.cli import main
sys.exit(main(sys.argv[1:]))
"""


def _cli(args, tmp_path, kill_at=None, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop("REPRO_CAMPAIGN_SIGKILL", None)
    if kill_at is not None:
        env["REPRO_CAMPAIGN_SIGKILL"] = kill_at
    return subprocess.run(
        [sys.executable, "-c", _CHILD, "run", "fig06",
         "--scale", "small"] + args,
        cwd=str(tmp_path), env=env, capture_output=True, text=True,
        timeout=timeout)


def _figure_lines(stdout: str):
    """The deterministic part of the CLI output: the rendered figure,
    without the wall-clock timing footer."""
    return [line for line in stdout.splitlines()
            if not line.startswith("[fig06 regenerated")]


class TestKillResumeChaos:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        ckpt = tmp_path / "ckpt"

        full = _cli(["--progress-jsonl", str(tmp_path / "full.jsonl")],
                    tmp_path)
        assert full.returncode == 0, full.stderr

        # Kill the campaign with SIGKILL early in its third unit, with
        # units flushed in batches of two: units 1-2 are on disk, the
        # in-flight day dies un-checkpointed.
        killed = _cli(["--checkpoint", str(ckpt),
                       "--checkpoint-every", "2",
                       "--progress-jsonl",
                       str(tmp_path / "killed.jsonl")],
                      tmp_path, kill_at="unpopular:0:2000")
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        flushed = sorted(p.name for p in (ckpt / "units").glob("*.json"))
        assert flushed == ["popular-0000.json", "popular-0001.json"]

        resumed = _cli(["--resume", str(ckpt), "--progress-jsonl",
                        str(tmp_path / "resumed.jsonl")], tmp_path)
        assert resumed.returncode == 0, resumed.stderr

        # Scorecard: the resumed run prints the exact same Figure 6.
        assert _figure_lines(resumed.stdout) == _figure_lines(full.stdout)

        # Telemetry: the resumed stream's deterministic projection —
        # including the run_summary footer's event total — matches the
        # uninterrupted run's.
        full_records = read_progress(str(tmp_path / "full.jsonl"))
        resumed_records = read_progress(str(tmp_path / "resumed.jsonl"))
        assert deterministic_records(resumed_records) \
            == deterministic_records(full_records)
        full_footer = next(r for r in reversed(full_records)
                           if r["kind"] == KIND_RUN_SUMMARY)
        resumed_footer = next(r for r in reversed(resumed_records)
                              if r["kind"] == KIND_RUN_SUMMARY)
        assert resumed_footer["events_executed"] \
            == full_footer["events_executed"] > 0
        assert resumed_footer["status"] == "ok"

        # The killed run's torn stream is still a readable artifact and
        # summarises as a running campaign with two units done.
        killed_summary = summarize_progress(
            read_progress(str(tmp_path / "killed.jsonl")))
        assert killed_summary["state"] == "running"
        assert killed_summary["campaign"]["units_done"] == 2
