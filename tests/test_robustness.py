"""Robustness fuzzing: malformed input must never crash the stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.datagram import Datagram
from repro.protocol import messages as m
from repro.protocol.peer import PeerPhase
from repro.protocol.wire import WireError, decode
from repro.sim import Simulator
from repro.workload.scenario import ScenarioConfig, SessionScenario


# ----------------------------------------------------------------------
# Wire decoding
# ----------------------------------------------------------------------
@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_decode_never_crashes_on_garbage(data):
    try:
        decode(data)
    except WireError:
        pass  # the only acceptable failure mode


@given(st.binary(min_size=4, max_size=200))
@settings(max_examples=200, deadline=None)
def test_decode_with_valid_header_prefix(data):
    framed = b"PP\x01" + data[:1] + data[1:]
    try:
        decode(framed)
    except WireError:
        pass  # the only acceptable failure mode


# ----------------------------------------------------------------------
# Peer message handling
# ----------------------------------------------------------------------
def build_peer():
    scenario = SessionScenario(ScenarioConfig(seed=77, population=4))
    sim = Simulator(seed=77)
    deployment = scenario.build_deployment(sim)
    from repro.network.bandwidth import CABLE
    from repro.protocol.peer import PPLivePeer
    internet = deployment.internet
    tele = internet.catalog.by_name("ChinaTelecom")
    peer = PPLivePeer(sim, internet.udp,
                      internet.allocator.allocate(tele), tele, CABLE,
                      scenario.config.protocol, deployment.channel,
                      bootstrap_address=deployment.bootstrap.address,
                      source_address=deployment.source.address)
    peer.join()
    sim.run_until(30.0)
    return sim, peer


def hostile_messages():
    big = 2 ** 40
    return st.one_of(
        st.builds(m.DataReply, channel_id=st.integers(0, 5),
                  chunk=st.integers(-big, big),
                  first=st.integers(0, 500), last=st.integers(0, 500),
                  seq=st.integers(0, 2 ** 32 - 1),
                  have_until=st.integers(-big, big),
                  have_from=st.integers(-big, big),
                  payload_bytes=st.integers(0, 10_000)),
        st.builds(m.DataRequest, channel_id=st.integers(0, 5),
                  chunk=st.integers(-big, big),
                  first=st.integers(0, 500), last=st.integers(0, 500),
                  seq=st.integers(0, 2 ** 32 - 1)),
        st.builds(m.DataMiss, channel_id=st.integers(0, 5),
                  chunk=st.integers(-big, big),
                  seq=st.integers(0, 2 ** 32 - 1),
                  have_until=st.integers(-big, big)),
        st.builds(m.Hello, channel_id=st.integers(0, 5),
                  have_until=st.integers(-big, big),
                  have_from=st.integers(-big, big)),
        st.builds(m.HelloAck, channel_id=st.integers(0, 5),
                  have_until=st.integers(-big, big)),
        st.builds(m.PeerListReply, channel_id=st.integers(0, 5),
                  peers=st.lists(st.sampled_from(
                      ["1.0.0.1", "255.255.255.1", "0.0.0.0"]),
                      max_size=5).map(tuple),
                  have_until=st.integers(-big, big),
                  request_id=st.integers(0, 2 ** 32 - 1)),
        st.builds(m.BufferMapAnnounce, channel_id=st.integers(0, 5),
                  have_until=st.integers(-big, big),
                  have_from=st.integers(-big, big)),
        st.just(m.Goodbye(channel_id=1)),
        st.just(m.HelloReject(channel_id=1)),
    )


class TestHostileTraffic:
    """An active peer fed arbitrary protocol messages must not crash.

    A single peer instance is reused across examples (building one is
    expensive); hypothesis only drives the payload stream.
    """

    sim = None
    peer = None

    @classmethod
    def setup_class(cls):
        cls.sim, cls.peer = build_peer()

    @given(st.lists(hostile_messages(), min_size=1, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_messages_do_not_crash(self, payloads):
        peer = type(self).peer
        sim = type(self).sim
        if peer.phase is not PeerPhase.ACTIVE:
            return
        for payload in payloads:
            datagram = Datagram(src="1.99.0.1", dst=peer.address,
                                payload=payload, payload_bytes=64,
                                sent_at=sim.now)
            peer.handle_datagram(datagram)
        # The peer survived; its core invariants still hold.
        assert len(peer.neighbors) <= peer.config.max_neighbors
        if peer.buffer is not None:
            assert peer.buffer.have_until >= peer.buffer.first_chunk - 1
