"""Tests for the streaming progress bus and its readers (obs.live)."""

import io
import json

import pytest

from repro.obs.live import (KIND_CAMPAIGN_START, KIND_DAY_COMPLETE,
                            KIND_HEARTBEAT, KIND_JOB_COMPLETE,
                            KIND_RUN_START, KIND_RUN_SUMMARY, MODE_FIELDS,
                            WALL_FIELDS, ProgressBus, deterministic_records,
                            peak_rss_bytes, read_progress, render_status,
                            strip_wall_fields, summarize_progress)


class TestProgressBus:
    def test_emits_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        bus = ProgressBus(str(path))
        bus.run_start(experiment="fig02", seed=7)
        bus.heartbeat(t=30.0, events_executed=100)
        bus.run_summary("ok", events_executed=200)
        bus.close()
        records = [json.loads(line) for line
                   in path.read_text().splitlines()]
        assert [r["kind"] for r in records] == [
            KIND_RUN_START, KIND_HEARTBEAT, KIND_RUN_SUMMARY]
        for record in records:
            assert "wall_seconds" in record

    def test_run_start_carries_absolute_time(self, tmp_path):
        path = tmp_path / "p.jsonl"
        with ProgressBus(str(path)) as bus:
            bus.run_start(experiment="fig02")
        (record,) = [json.loads(line) for line
                     in path.read_text().splitlines()]
        assert record["unix"] > 1_500_000_000

    def test_run_summary_carries_peak_rss(self, tmp_path):
        path = tmp_path / "p.jsonl"
        with ProgressBus(str(path)) as bus:
            bus.run_summary("ok")
        (record,) = read_progress(str(path))
        assert record["status"] == "ok"
        assert record["peak_rss_bytes"] >= peak_rss_bytes() // 2

    def test_every_record_is_flushed_immediately(self, tmp_path):
        # The whole point: a reader tailing the file mid-run sees every
        # completed record without waiting for close().
        path = tmp_path / "p.jsonl"
        bus = ProgressBus(str(path))
        bus.heartbeat(t=1.0)
        assert len(read_progress(str(path))) == 1
        bus.close()

    def test_emit_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "p.jsonl"
        bus = ProgressBus(str(path))
        bus.heartbeat(t=1.0)
        bus.close()
        bus.heartbeat(t=2.0)  # must not raise, must not write
        assert len(read_progress(str(path))) == 1
        assert bus.records_written == 1

    def test_accepts_an_open_file_object(self):
        buffer = io.StringIO()
        bus = ProgressBus(buffer)
        bus.heartbeat(t=1.0)
        bus.close()  # must not close a caller-owned file
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["t"] == 1.0


class TestReadProgress:
    def test_tolerates_a_torn_final_line(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start","wall_seconds":0.0}\n'
                        '{"kind":"heartbeat","t":30.0,"wall_s')
        records = read_progress(str(path))
        assert [r["kind"] for r in records] == ["run_start"]

    def test_rejects_mid_stream_corruption(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n'
                        'garbage not json\n'
                        '{"kind":"heartbeat","t":30.0}\n')
        with pytest.raises(ValueError):
            read_progress(str(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n\n{"kind":"heartbeat"}\n')
        assert len(read_progress(str(path))) == 2

    def test_with_tail_returns_the_torn_fragment(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n{"kind":"heart')
        records, tail = read_progress(str(path), with_tail=True)
        assert [r["kind"] for r in records] == ["run_start"]
        assert tail == '{"kind":"heart'

    def test_with_tail_is_empty_on_a_clean_stream(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n')
        records, tail = read_progress(str(path), with_tail=True)
        assert len(records) == 1
        assert tail == ""

    def test_torn_only_first_line_yields_no_records_but_a_tail(
            self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start","experiment":"fi')
        records, tail = read_progress(str(path), with_tail=True)
        assert records == []
        assert tail.startswith('{"kind":"run_start"')

    def test_non_object_mid_stream_line_is_corruption(self, tmp_path):
        # A bare number parses as JSON but is not a record; treating it
        # as one would crash summarize_progress later with a confusing
        # AttributeError instead of a clear corruption report.
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n42\n{"kind":"heartbeat"}\n')
        with pytest.raises(ValueError, match="not a JSON object"):
            read_progress(str(path))

    def test_non_object_final_line_counts_as_torn(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"run_start"}\n42')
        records, tail = read_progress(str(path), with_tail=True)
        assert [r["kind"] for r in records] == ["run_start"]
        assert tail == "42"


class TestDeterministicView:
    def test_strip_wall_fields(self):
        record = {"kind": "heartbeat", "t": 30.0, "events_executed": 5,
                  "wall_seconds": 1.2, "rss_bytes": 100,
                  "events_per_sec": 9.9, "unix": 1.0}
        stripped = strip_wall_fields(record)
        assert stripped == {"kind": "heartbeat", "t": 30.0,
                            "events_executed": 5}
        assert not (set(stripped) & WALL_FIELDS)

    def test_drops_mode_dependent_kinds_and_fields(self):
        records = [
            {"kind": KIND_RUN_START, "experiment": "fig06", "jobs": 2,
             "unix": 1.0, "wall_seconds": 0.0},
            {"kind": KIND_HEARTBEAT, "t": 30.0, "wall_seconds": 0.1},
            {"kind": KIND_CAMPAIGN_START, "days": 2, "jobs": 2,
             "wall_seconds": 0.2},
            {"kind": KIND_JOB_COMPLETE, "key": "('popular', 0)",
             "wall_seconds": 0.3},
            {"kind": KIND_DAY_COMPLETE, "day": 1, "wall_seconds": 0.4},
        ]
        view = deterministic_records(records)
        assert [r["kind"] for r in view] == [
            KIND_RUN_START, KIND_CAMPAIGN_START, KIND_DAY_COMPLETE]
        for record in view:
            assert not (set(record) & (WALL_FIELDS | MODE_FIELDS))


def _session_stream(with_footer=True, status="ok"):
    records = [
        {"kind": KIND_RUN_START, "experiment": "fig02", "scale": "small",
         "seed": 7, "jobs": 1, "unix": 1000.0, "wall_seconds": 0.0},
        {"kind": KIND_HEARTBEAT, "t": 100.0, "sim_end": 400.0,
         "viewers": 12, "events_executed": 5000, "events_per_sec": 2500.0,
         "rss_bytes": 50 << 20,
         "peers_by_isp": {"ChinaTelecom": 8, "CERNET": 4},
         "faults_active": 1, "wall_seconds": 2.0},
    ]
    if with_footer:
        records.append({"kind": KIND_RUN_SUMMARY, "status": status,
                        "events_executed": 20000,
                        "peak_rss_bytes": 60 << 20, "wall_seconds": 8.0})
    return records


class TestSummarize:
    def test_empty_stream(self):
        summary = summarize_progress([])
        assert summary["state"] == "empty"
        assert "no records yet" in render_status(summary, "x.jsonl")

    def test_running_session_extrapolates_eta(self):
        summary = summarize_progress(_session_stream(with_footer=False),
                                     now_unix=1002.0)
        assert summary["state"] == "running"
        assert summary["experiment"] == "fig02"
        assert summary["sim_time"] == 100.0
        assert summary["sim_end"] == 400.0
        assert summary["faults_active"] == 1
        # 100 sim-seconds took 2 wall-seconds -> 300 more take ~6.
        assert summary["eta_seconds"] == pytest.approx(6.0)
        assert summary["last_record_age_seconds"] == 0.0

    def test_finished_run_prefers_the_footer(self):
        summary = summarize_progress(_session_stream())
        assert summary["state"] == "finished"
        assert summary["status"] == "ok"
        assert summary["events_executed"] == 20000
        assert summary["peak_rss_bytes"] == 60 << 20
        assert "eta_seconds" not in summary

    def test_crashed_status_becomes_the_state(self):
        summary = summarize_progress(
            _session_stream(status="crashed:RuntimeError"))
        assert summary["state"] == "crashed:RuntimeError"

    def test_staleness_from_unix_anchor(self):
        summary = summarize_progress(_session_stream(with_footer=False),
                                     now_unix=1032.0)
        # Last record landed at unix 1000 + 2.0 wall -> 30s ago.
        assert summary["last_record_age_seconds"] == pytest.approx(30.0)

    def test_campaign_progress_and_eta(self):
        records = [
            {"kind": KIND_RUN_START, "experiment": "fig06",
             "unix": 1000.0, "wall_seconds": 0.0},
            {"kind": KIND_CAMPAIGN_START, "days": 3, "total_units": 6,
             "seed": 11, "jobs": 1, "wall_seconds": 0.1},
            {"kind": KIND_DAY_COMPLETE, "day": 1, "days": 3,
             "popularity": "popular",
             "locality_by_isp": {"TELE": 80.0}, "wall_seconds": 10.1},
            {"kind": KIND_DAY_COMPLETE, "day": 2, "days": 3,
             "popularity": "popular",
             "locality_by_isp": {"TELE": 82.0}, "wall_seconds": 20.1},
        ]
        summary = summarize_progress(records, now_unix=1020.1)
        campaign = summary["campaign"]
        assert campaign["units_total"] == 6
        assert campaign["units_done"] == 2
        assert campaign["last_day"]["locality_by_isp"] == {"TELE": 82.0}
        # 2 units in 20s -> 4 more take ~40s.
        assert summary["eta_seconds"] == pytest.approx(40.0)

    def test_render_status_mentions_the_essentials(self):
        summary = summarize_progress(_session_stream())
        text = render_status(summary, source="p.jsonl")
        assert "state=finished" in text
        assert "experiment=fig02" in text
        assert "sim t=100s / 400s" in text
        assert "ChinaTelecom=8" in text
        assert "summary:" in text
