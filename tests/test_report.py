"""Tests for the text rendering helpers."""

from collections import Counter

from repro.analysis.report import (bullet_list, counter_rows,
                                   format_category_counter,
                                   format_seconds, format_table,
                                   percentage)
from repro.network.isp import ISPCategory


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["name", "value"],
                            [["short", 1], ["a-much-longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        header, rule = lines[0], lines[1]
        assert header.startswith("name")
        assert set(rule) <= {"-", " "}
        # Both data rows place the second column at the same offset.
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")

    def test_handles_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_stringifies_values(self):
        text = format_table(["x"], [[None], [3.5]])
        assert "None" in text and "3.5" in text


class TestCounterFormatting:
    def test_all_categories_in_order(self):
        counts = Counter({ISPCategory.CNC: 5, ISPCategory.TELE: 10})
        text = format_category_counter(counts)
        assert text.index("TELE") < text.index("CNC") < text.index("CER")
        assert "TELE=10" in text
        assert "Foreign=0" in text

    def test_percent_mode(self):
        counts = Counter({ISPCategory.TELE: 3, ISPCategory.CNC: 1})
        text = format_category_counter(counts, as_percent=True)
        assert "TELE=75.0%" in text

    def test_counter_rows_shares(self):
        counts = Counter({ISPCategory.TELE: 1, ISPCategory.FOREIGN: 3})
        rows = counter_rows(counts)
        assert len(rows) == len(ISPCategory)
        tele_row = [r for r in rows if r[0] == "TELE"][0]
        assert tele_row[1] == 1
        assert tele_row[2] == "25.0%"


class TestScalars:
    def test_percentage_guard(self):
        assert percentage(1, 0) == "n/a"
        assert percentage(1, 4) == "25.0%"

    def test_format_seconds(self):
        assert format_seconds(None) == "n/a"
        assert format_seconds(1.23456) == "1.2346"

    def test_bullet_list(self):
        text = bullet_list(["one", "two"])
        assert text.splitlines() == ["  - one", "  - two"]
