"""Unit tests for the native PPLive peer-selection policy."""

import random

import pytest

from repro.protocol.config import ProtocolConfig
from repro.protocol.peerlist import ListSource
from repro.protocol.policy import PeerSelectionPolicy, PPLiveReferralPolicy


class FakePeer:
    def __init__(self, neighbor_count=0, pending=0, config=None,
                 blocked=()):
        self.config = config if config is not None else ProtocolConfig()
        self.address = "9.9.9.9"
        self.neighbors = [None] * neighbor_count
        self.pending_hello_count = pending
        self._blocked = set(blocked)
        self._satisfied = False

    def can_attempt(self, address):
        return address != self.address and address not in self._blocked

    def playback_satisfactory(self):
        return self._satisfied


@pytest.fixture
def policy():
    return PPLiveReferralPolicy()


@pytest.fixture
def rng():
    return random.Random(42)


ADDRESSES = [f"1.0.0.{i}" for i in range(1, 31)]


class TestSelectCandidates:
    def test_no_deficit_no_candidates(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(neighbor_count=config.target_neighbors,
                        config=config)
        assert policy.select_candidates(peer, ADDRESSES,
                                        ListSource.NEIGHBOR, rng) == []

    def test_pending_hellos_count_toward_engagement(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(neighbor_count=config.target_neighbors - 2,
                        pending=2, config=config)
        assert policy.select_candidates(peer, ADDRESSES,
                                        ListSource.NEIGHBOR, rng) == []

    def test_oversubscribes_small_deficit(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(neighbor_count=config.target_neighbors - 1,
                        config=config)
        chosen = policy.select_candidates(peer, ADDRESSES,
                                          ListSource.NEIGHBOR, rng)
        # Deficit is 1 but a whole batch of Hellos races for the slot.
        assert len(chosen) == config.connect_batch

    def test_large_deficit_expands_batch(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(neighbor_count=0, config=config)
        chosen = policy.select_candidates(peer, ADDRESSES,
                                          ListSource.NEIGHBOR, rng)
        assert len(chosen) == config.target_neighbors

    def test_filters_unattemptable(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(config=config, blocked=ADDRESSES[:-2])
        chosen = policy.select_candidates(peer, ADDRESSES,
                                          ListSource.NEIGHBOR, rng)
        assert set(chosen) == set(ADDRESSES[-2:])

    def test_deduplicates_input(self, policy, rng):
        config = ProtocolConfig()
        peer = FakePeer(config=config)
        chosen = policy.select_candidates(peer, ["1.0.0.1"] * 50,
                                          ListSource.NEIGHBOR, rng)
        assert chosen == ["1.0.0.1"]

    def test_random_subset_varies(self, policy):
        config = ProtocolConfig()
        peer = FakePeer(neighbor_count=config.target_neighbors - 1,
                        config=config)
        a = policy.select_candidates(peer, ADDRESSES,
                                     ListSource.NEIGHBOR,
                                     random.Random(1))
        b = policy.select_candidates(peer, ADDRESSES,
                                     ListSource.NEIGHBOR,
                                     random.Random(2))
        assert set(a) != set(b)


class TestTrackerInterval:
    def test_initial_interval_while_unsatisfied(self, policy):
        config = ProtocolConfig()
        peer = FakePeer(config=config)
        assert (policy.tracker_interval(peer, config)
                == config.tracker_interval_initial)

    def test_backoff_when_satisfied(self, policy):
        config = ProtocolConfig()
        peer = FakePeer(config=config)
        peer._satisfied = True
        assert (policy.tracker_interval(peer, config)
                == config.tracker_interval_backoff)


class TestAbstractBase:
    def test_select_candidates_not_implemented(self, rng):
        policy = PeerSelectionPolicy()
        with pytest.raises(NotImplementedError):
            policy.select_candidates(FakePeer(), ADDRESSES,
                                     ListSource.NEIGHBOR, rng)
