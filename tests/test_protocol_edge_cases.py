"""Edge-case tests for protocol races, timeouts, and churn paths."""

import pytest

from repro.network.builder import build_internet
from repro.network.bandwidth import CABLE
from repro.protocol import messages as m
from repro.protocol.config import ProtocolConfig
from repro.protocol.neighbors import NeighborTable
from repro.protocol.peer import PeerPhase, PPLivePeer
from repro.protocol.scheduler import DataScheduler
from repro.sim import Simulator
from repro.streaming import ChunkBuffer, ChunkGeometry, LiveChannel, \
    SUBPIECE_LARGE


def make_world(seed=1):
    sim = Simulator(seed=seed)
    internet = build_internet(sim)
    tele = internet.catalog.by_name("ChinaTelecom")
    channel = LiveChannel(1, "test")
    return sim, internet, tele, channel


def make_peer(sim, internet, isp, channel, **kwargs):
    config = kwargs.pop("config", ProtocolConfig())
    peer = PPLivePeer(sim, internet.udp,
                      internet.allocator.allocate(isp), isp, CABLE,
                      config, channel,
                      bootstrap_address=kwargs.pop("bootstrap", "1.0.0.1"),
                      **kwargs)
    return peer


class TestHandshakeRaces:
    def test_ack_after_table_filled_gets_goodbye(self):
        """A late HelloAck that lost the slot race is answered with a
        Goodbye, not silently leaked."""
        sim, internet, tele, channel = make_world()
        config = ProtocolConfig(max_neighbors=1, target_neighbors=1)
        peer = make_peer(sim, internet, tele, channel, config=config)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer.buffer = ChunkBuffer(channel.geometry, first_chunk=0)

        # Two pending hellos; first ack takes the only slot.
        import types
        peer._pending_hellos["9.0.0.1"] = (sim.call_after(10, lambda: None),
                                           sim.now)
        peer._pending_hellos["9.0.0.2"] = (sim.call_after(10, lambda: None),
                                           sim.now)
        peer._on_hello_ack("9.0.0.1", m.HelloAck(channel_id=1,
                                                 have_until=5))
        assert "9.0.0.1" in peer.neighbors
        peer._on_hello_ack("9.0.0.2", m.HelloAck(channel_id=1,
                                                 have_until=5))
        assert "9.0.0.2" not in peer.neighbors

    def test_unsolicited_ack_ignored(self):
        sim, internet, tele, channel = make_world()
        peer = make_peer(sim, internet, tele, channel)
        peer.phase = PeerPhase.ACTIVE
        peer._on_hello_ack("9.9.9.9", m.HelloAck(channel_id=1))
        assert "9.9.9.9" not in peer.neighbors

    def test_hello_to_full_table_rejected(self):
        sim, internet, tele, channel = make_world()
        config = ProtocolConfig(max_neighbors=1, target_neighbors=1)
        peer = make_peer(sim, internet, tele, channel, config=config)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer.buffer = ChunkBuffer(channel.geometry, first_chunk=0)
        peer.neighbors.add("8.0.0.1", now=sim.now)
        peer._on_hello("8.0.0.2", m.Hello(channel_id=1))
        assert peer.hello_rejects == 1
        assert "8.0.0.2" not in peer.neighbors

    def test_repeat_hello_from_neighbor_is_keepalive(self):
        sim, internet, tele, channel = make_world()
        peer = make_peer(sim, internet, tele, channel)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer.buffer = ChunkBuffer(channel.geometry, first_chunk=0)
        state = peer.neighbors.add("8.0.0.1", now=sim.now)
        before = len(peer.neighbors)
        peer._on_hello("8.0.0.1", m.Hello(channel_id=1, have_until=9))
        assert len(peer.neighbors) == before
        assert state.reported_have == 9

    def test_wrong_channel_hello_ignored(self):
        sim, internet, tele, channel = make_world()
        peer = make_peer(sim, internet, tele, channel)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer._on_hello("8.0.0.1", m.Hello(channel_id=42))
        assert "8.0.0.1" not in peer.neighbors


class TestSchedulerEdges:
    @pytest.fixture
    def geometry(self):
        return ChunkGeometry(bitrate_bps=SUBPIECE_LARGE * 8,
                             chunk_seconds=4.0)

    def test_reply_after_timeout_is_duplicate(self, geometry):
        sim = Simulator(seed=2)
        config = ProtocolConfig(subpieces_per_request=2, data_timeout=1.0)
        buffer = ChunkBuffer(geometry, first_chunk=0)
        neighbors = NeighborTable(capacity=4)
        sent = []
        scheduler = DataScheduler(sim, config, geometry, buffer,
                                  neighbors,
                                  lambda *args: sent.append(args))
        state = neighbors.add("n1", now=0.0)
        state.record_availability(10, 0.0)
        scheduler.tick(live_chunk=10, playout_chunk=-1)
        assert sent
        _a, chunk, first, last, seq = sent[0]
        sim.run_until(2.0)  # timeout fires
        assert scheduler.timeouts >= 1
        added = scheduler.on_reply(seq, chunk, first, last, have_until=10)
        assert added == 0
        assert scheduler.duplicate_replies == 1

    def test_no_neighbors_no_requests_non_urgent(self, geometry):
        sim = Simulator(seed=2)
        config = ProtocolConfig()
        buffer = ChunkBuffer(geometry, first_chunk=0)
        scheduler = DataScheduler(sim, config, geometry, buffer,
                                  NeighborTable(4), lambda *a: None,
                                  source_address=None)
        scheduler.tick(live_chunk=10, playout_chunk=-100)
        assert scheduler.requests_issued == 0

    def test_urgent_until_parameter_overrides(self, geometry):
        sim = Simulator(seed=2)
        config = ProtocolConfig(per_neighbor_inflight=2)
        buffer = ChunkBuffer(geometry, first_chunk=0)
        sent = []
        scheduler = DataScheduler(sim, config, geometry, buffer,
                                  NeighborTable(4),
                                  lambda *args: sent.append(args),
                                  source_address="9.9.9.9")
        # No neighbors at all: within the prefetch window only the
        # explicitly urgent chunks (<= 1) go to the source.
        scheduler.tick(live_chunk=10, playout_chunk=-1, urgent_until=1)
        assert sent
        assert all(args[1] <= 1 for args in sent)


class TestChurnPaths:
    def test_crashed_neighbor_removed_by_silence_sweep(self):
        sim, internet, tele, channel = make_world(seed=4)
        config = ProtocolConfig(neighbor_silence_timeout=20.0)
        a = make_peer(sim, internet, tele, channel, config=config)
        a.go_online()
        a.phase = PeerPhase.ACTIVE
        a.buffer = ChunkBuffer(channel.geometry, first_chunk=0)
        from repro.streaming.playback import PlaybackMonitor
        a.player = PlaybackMonitor(channel.geometry, a.buffer,
                                   join_time=sim.now)
        a.neighbors.add("7.0.0.1", now=sim.now)
        # Run the maintenance sweep manually past the silence window.
        sim.run_until(25.0)
        a._maintenance()
        assert "7.0.0.1" not in a.neighbors

    def test_goodbye_from_stranger_is_noop(self):
        sim, internet, tele, channel = make_world()
        peer = make_peer(sim, internet, tele, channel)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer._on_goodbye("6.6.6.6", m.Goodbye(channel_id=1))  # no crash

    def test_pool_backoff_after_hello_timeout(self):
        sim, internet, tele, channel = make_world()
        peer = make_peer(sim, internet, tele, channel)
        peer.go_online()
        peer.phase = PeerPhase.ACTIVE
        peer.buffer = ChunkBuffer(channel.geometry, first_chunk=0)
        from repro.protocol.peerlist import ListSource
        peer.pool.add("5.0.0.1", sim.now, ListSource.TRACKER)
        peer._attempt_connections(["5.0.0.1"], ListSource.TRACKER)
        assert "5.0.0.1" in peer._pending_hellos
        sim.run_until(peer.config.hello_timeout + 1.0)
        assert "5.0.0.1" not in peer._pending_hellos
        assert not peer.can_attempt("5.0.0.1")  # backed off
