"""Property-based fuzzing of the wire codec (hypothesis).

Two contracts a hostile network must never break:

* ``decode(arbitrary bytes)`` either returns a :class:`Message` or
  raises :class:`WireError` — never any other exception (a garbage
  datagram must not crash a receiver with a ``struct.error`` or an
  ``IndexError`` from deep inside the codec), and
* ``decode(encode(msg)) == msg`` for every message type over its whole
  legal field domain, not just the goldens' point values.
"""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import messages as m
from repro.protocol.wire import MAGIC, VERSION, WireError, decode, encode

# ----------------------------------------------------------------------
# Field strategies (the codec's legal domains)
# ----------------------------------------------------------------------
u16 = st.integers(0, 2 ** 16 - 1)
u32 = st.integers(0, 2 ** 32 - 1)
i64 = st.integers(-(2 ** 63), 2 ** 63 - 1)
#: Payload sizes stay small so round-trip examples do not allocate MBs.
payload_bytes = st.integers(0, 2048)

ipv4 = u32.map(lambda value: str(ipaddress.IPv4Address(value)))
addresses = st.lists(ipv4, max_size=8).map(tuple)

#: ≤63 codepoints keeps the UTF-8 encoding safely under the wire's
#: 255-byte string cap (4 bytes/codepoint worst case).
short_text = st.text(max_size=63)

channels = st.lists(st.tuples(u32, short_text), max_size=6).map(tuple)

messages = st.one_of(
    st.builds(m.ChannelListRequest),
    st.builds(m.ChannelListReply, channels=channels),
    st.builds(m.PlaylinkRequest, channel_id=u32),
    st.builds(m.PlaylinkReply, channel_id=u32, playlink=short_text,
              trackers=addresses),
    st.builds(m.TrackerQuery, channel_id=u32),
    st.builds(m.TrackerReply, channel_id=u32, peers=addresses),
    st.builds(m.Hello, channel_id=u32, have_until=i64, have_from=i64),
    st.builds(m.HelloAck, channel_id=u32, have_until=i64,
              have_from=i64),
    st.builds(m.HelloReject, channel_id=u32),
    st.builds(m.Goodbye, channel_id=u32),
    st.builds(m.PeerListRequest, channel_id=u32, enclosed=addresses,
              have_until=i64, have_from=i64, request_id=u32),
    st.builds(m.PeerListReply, channel_id=u32, peers=addresses,
              have_until=i64, have_from=i64, request_id=u32),
    st.builds(m.DataRequest, channel_id=u32, chunk=i64, first=u16,
              last=u16, seq=u32),
    st.builds(m.DataReply, channel_id=u32, chunk=i64, first=u16,
              last=u16, seq=u32, have_until=i64, have_from=i64,
              payload_bytes=payload_bytes),
    st.builds(m.PoisonedDataReply, channel_id=u32, chunk=i64, first=u16,
              last=u16, seq=u32, have_until=i64, have_from=i64,
              payload_bytes=payload_bytes),
    st.builds(m.DataMiss, channel_id=u32, chunk=i64, seq=u32,
              have_until=i64, have_from=i64),
    st.builds(m.BufferMapAnnounce, channel_id=u32, have_until=i64,
              have_from=i64),
)


@given(messages)
@settings(max_examples=300, deadline=None)
def test_round_trip_over_all_message_types(msg):
    assert decode(encode(msg)) == msg


@given(st.binary(max_size=256))
@settings(max_examples=500, deadline=None)
def test_arbitrary_bytes_decode_or_raise_wire_error(data):
    try:
        result = decode(data)
    except WireError:
        return
    assert isinstance(result, m.Message)


@given(st.integers(0, 255), st.binary(max_size=128))
@settings(max_examples=500, deadline=None)
def test_valid_header_arbitrary_body_never_escapes_wire_error(
        type_byte, body):
    # A correct magic/version prefix steers the fuzz past the header
    # checks and into every per-type body decoder.
    data = MAGIC + bytes([VERSION, type_byte]) + body
    try:
        result = decode(data)
    except WireError:
        return
    assert isinstance(result, m.Message)
