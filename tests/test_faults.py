"""The fault-injection subsystem: schedules, injector, recovery paths."""

import dataclasses
import random

import pytest

from repro.faults import (FaultInjector, FaultSchedule, FlashCrowd,
                          LinkDegradation, PeerBlackout, ServerOutage)
from repro.network.builder import build_internet
from repro.network.latency import (LatencyConfig, LatencyModel, PairClass,
                                   PathOverride)
from repro.obs import Instrumentation, MetricsRegistry, MemorySpanSink
from repro.sim import Simulator
from repro.workload.scenario import ScenarioConfig, SessionScenario


def demo_events():
    return (
        ServerOutage(target="trackers", start=100.0, duration=50.0,
                     label="outage"),
        LinkDegradation(pair_class="tele_cnc_peering", start=200.0,
                        duration=40.0, extra_loss=0.2,
                        latency_multiplier=2.0, bandwidth_multiplier=0.5),
        PeerBlackout(isp_name="ChinaNetcom", start=260.0, fraction=0.5),
        FlashCrowd(start=300.0, duration=30.0, arrivals=5),
    )


# ----------------------------------------------------------------------
# Schedule: validation and (de)serialisation
# ----------------------------------------------------------------------
class TestSchedule:
    def test_json_round_trip(self):
        schedule = FaultSchedule(events=demo_events())
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_load_from_file(self, tmp_path):
        schedule = FaultSchedule(events=demo_events())
        path = tmp_path / "storm.json"
        path.write_text(schedule.to_json(), encoding="utf-8")
        assert FaultSchedule.load(path) == schedule

    def test_committed_example_script_loads(self):
        schedule = FaultSchedule.load("examples/faults/chaos_demo.json")
        kinds = [event.KIND for event in schedule]
        assert kinds == ["server_outage", "link_degradation"]

    def test_name_of_prefers_label(self):
        schedule = FaultSchedule(events=demo_events())
        assert schedule.name_of(0) == "outage"
        assert schedule.name_of(1) == "link_degradation#1"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "meteor", "start": 0.0}]})

    def test_error_names_event_index(self):
        events = [dict(kind="server_outage", target="trackers",
                       start=1.0, duration=5.0),
                  dict(kind="server_outage", target="dns",
                       start=1.0, duration=5.0)]
        with pytest.raises(ValueError, match="event #1"):
            FaultSchedule.from_dict({"events": events})

    @pytest.mark.parametrize("bad", [
        dict(kind="server_outage", target="trackers", start=1.0,
             duration=-5.0),
        dict(kind="server_outage", target="tracker:x", start=1.0,
             duration=5.0),
        dict(kind="server_outage", target="trackers", start=1.0,
             duration=5.0, drop_probability=0.0),
        dict(kind="link_degradation", pair_class="warp_lane", start=1.0,
             duration=5.0),
        dict(kind="link_degradation", pair_class="domestic", start=1.0,
             duration=5.0, extra_loss=1.5),
        dict(kind="peer_blackout", isp_name="", start=1.0),
        dict(kind="peer_blackout", isp_name="X", start=1.0, fraction=0.0),
        dict(kind="flash_crowd", start=1.0, duration=5.0, arrivals=0),
    ])
    def test_bad_events_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"events": [bad]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="event #0"):
            FaultSchedule.from_dict(
                {"events": [dict(kind="flash_crowd", start=1.0,
                                 duration=5.0, arrivals=3, shape="wave")]})


# ----------------------------------------------------------------------
# Latency-model overrides
# ----------------------------------------------------------------------
class TestPathOverrides:
    def setup_method(self):
        self.model = LatencyModel(LatencyConfig(), master_seed=3)
        internet = build_internet(Simulator(seed=3))
        self.tele = internet.catalog.by_name("ChinaTelecom")
        self.cnc = internet.catalog.by_name("ChinaNetcom")

    def test_latency_and_bandwidth_multiplied(self):
        args = ("1.0.0.1", self.tele, "2.0.0.1", self.cnc)
        clean = LatencyModel(LatencyConfig(), master_seed=3)
        degraded = LatencyModel(LatencyConfig(), master_seed=3)
        degraded.push_override(
            PairClass.TELE_CNC_PEERING,
            PathOverride(latency_multiplier=2.0))
        # Same seed, same draw count: delays differ exactly 2x.
        assert degraded.one_way_delay(*args) == \
            pytest.approx(2.0 * clean.one_way_delay(*args))

    def test_bandwidth_term_slows_bulk_datagrams(self):
        args = ("1.0.0.1", self.tele, "2.0.0.1", self.cnc)
        clean = LatencyModel(LatencyConfig(), master_seed=3)
        throttled = LatencyModel(LatencyConfig(), master_seed=3)
        throttled.push_override(PairClass.TELE_CNC_PEERING,
                                PathOverride(bandwidth_multiplier=0.5))
        bps = LatencyConfig().path_bps[PairClass.TELE_CNC_PEERING]
        extra = (throttled.one_way_delay(*args, wire_bytes=10_000)
                 - clean.one_way_delay(*args, wire_bytes=10_000))
        assert extra == pytest.approx(10_000 * 8.0 / bps)

    def test_loss_draw_count_preserved(self):
        clean = LatencyModel(LatencyConfig(), master_seed=3)
        degraded = LatencyModel(LatencyConfig(), master_seed=3)
        degraded.push_override(PairClass.TELE_CNC_PEERING,
                               PathOverride(extra_loss=1.0))
        # Degraded path loses everything...
        assert all(degraded.is_lost(self.tele, self.cnc)
                   for _ in range(20))
        for _ in range(20):
            clean.is_lost(self.tele, self.cnc)
        # ...and after the override pops, the two models have consumed
        # the same number of draws, so they agree from here on.
        degraded.pop_override(
            PairClass.TELE_CNC_PEERING,
            degraded.active_overrides(PairClass.TELE_CNC_PEERING)[0])
        for _ in range(50):
            assert degraded.is_lost(self.tele, self.cnc) == \
                clean.is_lost(self.tele, self.cnc)

    def test_other_pair_classes_untouched(self):
        clean = LatencyModel(LatencyConfig(), master_seed=3)
        degraded = LatencyModel(LatencyConfig(), master_seed=3)
        degraded.push_override(PairClass.TELE_CNC_PEERING,
                               PathOverride(latency_multiplier=9.0))
        args = ("1.0.0.1", self.tele, "1.0.0.2", self.tele)
        assert degraded.one_way_delay(*args) == \
            pytest.approx(clean.one_way_delay(*args))

    def test_overrides_stack_and_pop(self):
        first = PathOverride(latency_multiplier=2.0)
        second = PathOverride(latency_multiplier=3.0)
        self.model.push_override(PairClass.DOMESTIC, first)
        self.model.push_override(PairClass.DOMESTIC, second)
        assert self.model.active_overrides(PairClass.DOMESTIC) == \
            [first, second]
        self.model.pop_override(PairClass.DOMESTIC, first)
        assert self.model.active_overrides(PairClass.DOMESTIC) == [second]
        self.model.pop_override(PairClass.DOMESTIC, second)
        assert self.model.active_overrides(PairClass.DOMESTIC) == []

    def test_pop_unknown_override_raises(self):
        with pytest.raises(ValueError):
            self.model.pop_override(PairClass.DOMESTIC, PathOverride())


# ----------------------------------------------------------------------
# Transport fault filters
# ----------------------------------------------------------------------
class TestFaultFilter:
    def test_silent_filter_drops_without_rng(self):
        sim = Simulator(seed=5)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        from repro.network.bandwidth import ADSL
        from repro.network.transport import Host

        class Sink(Host):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.received = 0

            def handle_datagram(self, datagram):
                self.received += 1

        a = Sink(sim, internet.udp, internet.allocator.allocate(tele),
                 tele, ADSL)
        b = Sink(sim, internet.udp, internet.allocator.allocate(tele),
                 tele, ADSL)
        a.go_online()
        b.go_online()

        class ExplodingRng:
            def random(self):  # pragma: no cover - must never run
                raise AssertionError("silent outage must not draw")

        b.install_fault_filter(1.0, ExplodingRng())
        for _ in range(10):
            a.send(b.address, "ping", 64)
        sim.run_until(30.0)
        dropped_during = internet.udp.datagrams_dropped_fault
        assert b.received == 0
        assert dropped_during > 0

        b.clear_fault_filter()
        for _ in range(10):
            a.send(b.address, "ping", 64)
        sim.run_until(60.0)
        assert b.received > 0
        assert internet.udp.datagrams_dropped_fault == dropped_during

    def test_partial_filter_uses_fault_rng(self):
        sim = Simulator(seed=5)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        from repro.network.bandwidth import ADSL
        from repro.network.transport import Host

        class Sink(Host):
            def handle_datagram(self, datagram):
                pass

        host = Sink(sim, internet.udp, internet.allocator.allocate(tele),
                    tele, ADSL)
        host.install_fault_filter(0.5, random.Random(1))
        decisions = [host.fault_drops() for _ in range(200)]
        assert 40 < sum(decisions) < 160  # actually random, not constant
        reference = random.Random(1)
        assert decisions == [reference.random() < 0.5
                             for _ in range(200)]

    def test_filter_probability_validated(self):
        sim = Simulator(seed=5)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        from repro.network.bandwidth import ADSL
        from repro.network.transport import Host

        class Sink(Host):
            def handle_datagram(self, datagram):
                pass

        host = Sink(sim, internet.udp, internet.allocator.allocate(tele),
                    tele, ADSL)
        with pytest.raises(ValueError):
            host.install_fault_filter(0.0, random.Random(1))
        with pytest.raises(ValueError):
            host.install_fault_filter(1.5, random.Random(1))


# ----------------------------------------------------------------------
# Injector mechanics inside a real session
# ----------------------------------------------------------------------
def run_faulted_session(schedule, seed=13, population=18, warmup=120.0,
                        duration=300.0, instrumentation=None):
    config = ScenarioConfig(seed=seed, population=population,
                            warmup=warmup, duration=duration,
                            faults=schedule,
                            instrumentation=instrumentation)
    return SessionScenario(config).run()


class TestInjector:
    def test_all_faults_begin_and_end(self):
        schedule = FaultSchedule(events=(
            ServerOutage(target="bootstrap", start=130.0, duration=30.0),
            LinkDegradation(pair_class="intra_isp", start=180.0,
                            duration=30.0, latency_multiplier=1.5),
            PeerBlackout(isp_name="ChinaTelecom", start=230.0,
                         fraction=0.5),
            FlashCrowd(start=250.0, duration=20.0, arrivals=4),
        ))
        result = run_faulted_session(schedule)
        injector = result.injector
        assert injector is not None
        assert injector.faults_begun == 4
        assert injector.faults_ended == 4
        assert injector.active == []
        # Blackout crashed someone; flash crowd spawned extra viewers.
        assert result.population.total_crashed >= 1

    def test_outage_filter_removed_after_window(self):
        schedule = FaultSchedule(events=(
            ServerOutage(target="trackers", start=130.0, duration=40.0),))
        result = run_faulted_session(schedule)
        for tracker in result.deployment.trackers:
            assert tracker._fault_filter is None

    def test_degradation_override_removed_after_window(self):
        schedule = FaultSchedule(events=(
            LinkDegradation(pair_class="domestic", start=130.0,
                            duration=40.0, latency_multiplier=2.0),))
        result = run_faulted_session(schedule)
        latency = result.deployment.internet.latency
        assert latency.active_overrides(PairClass.DOMESTIC) == []

    def test_single_tracker_group_outage(self):
        schedule = FaultSchedule(events=(
            ServerOutage(target="tracker:2", start=130.0, duration=40.0),))
        sim = Simulator(seed=3)
        scenario = SessionScenario(ScenarioConfig(seed=3))
        deployment = scenario.build_deployment(sim)
        injector = FaultInjector(
            sim, schedule, network=deployment.internet.udp,
            latency=deployment.internet.latency,
            bootstrap=deployment.bootstrap,
            trackers=deployment.trackers, source=deployment.source)
        injector.arm()
        sim.run_until(150.0)
        filtered = [t for t in deployment.trackers
                    if t._fault_filter is not None]
        assert [t.group_id for t in filtered] == [2]
        sim.run_until(200.0)
        assert all(t._fault_filter is None
                   for t in deployment.trackers)

    def test_rearming_raises(self):
        sim = Simulator(seed=3)
        scenario = SessionScenario(ScenarioConfig(seed=3))
        deployment = scenario.build_deployment(sim)
        injector = FaultInjector(
            sim, FaultSchedule(), network=deployment.internet.udp,
            latency=deployment.internet.latency)
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_blackout_only_hits_named_isp(self):
        crashed_isps = []
        schedule = FaultSchedule(events=(
            PeerBlackout(isp_name="ChinaNetcom", start=200.0,
                         fraction=1.0),))

        def hook(sim, deployment, manager, probe_peers):
            original = manager.crash_viewer

            def spying_crash(viewer):
                crashed_isps.append(viewer.isp.name)
                return original(viewer)

            manager.crash_viewer = spying_crash

        config = ScenarioConfig(seed=13, population=18, warmup=120.0,
                                duration=300.0, faults=schedule,
                                run_hook=hook)
        SessionScenario(config).run()
        assert crashed_isps  # churn mix always includes CNC viewers
        assert set(crashed_isps) == {"ChinaNetcom"}

    def test_blackout_victims_independent_of_later_faults(self):
        # Per-fault RNG streams: the blackout picks the same victims
        # whether or not an unrelated fault rides along later in the
        # same schedule (its stream is keyed by index and name, and
        # arming the extra event draws nothing from shared streams).
        def crashed_with(schedule):
            crashed = []

            def hook(sim, deployment, manager, probe_peers):
                original = manager.crash_viewer

                def spying_crash(viewer):
                    crashed.append(viewer.address)
                    return original(viewer)

                manager.crash_viewer = spying_crash

            config = ScenarioConfig(seed=13, population=18, warmup=120.0,
                                    duration=300.0, faults=schedule,
                                    run_hook=hook)
            SessionScenario(config).run()
            return crashed

        blackout = PeerBlackout(isp_name="ChinaTelecom", start=200.0,
                                fraction=0.5, label="bo")
        lone = crashed_with(FaultSchedule(events=(blackout,)))
        crowded = crashed_with(FaultSchedule(events=(
            blackout,
            FlashCrowd(start=260.0, duration=20.0, arrivals=3),)))
        assert lone and lone == crowded


# ----------------------------------------------------------------------
# Observability of fault windows
# ----------------------------------------------------------------------
class TestFaultObservability:
    def test_spans_and_metrics_emitted(self):
        spans = MemorySpanSink()
        obs = Instrumentation(metrics=MetricsRegistry(), spans=spans)
        schedule = FaultSchedule(events=(
            ServerOutage(target="trackers", start=130.0, duration=40.0,
                         label="outage"),
            PeerBlackout(isp_name="ChinaTelecom", start=200.0,
                         fraction=0.5, label="blackout"),
        ))
        run_faulted_session(schedule, instrumentation=obs)
        names = {m.name: m for m in obs.metrics}
        injected = [m for m in obs.metrics if m.name == "faults.injected"]
        assert sum(m.value for m in injected) == 2
        assert "faults.recovered" in names
        fault_spans = spans.by_category("faults")
        windowed = [s for s in fault_spans if s.end > s.start]
        instants = [s for s in fault_spans if s.end == s.start]
        assert {s.name for s in windowed} == {"fault:server_outage"}
        assert windowed[0].start == pytest.approx(130.0)
        assert windowed[0].end == pytest.approx(170.0)
        assert any(s.name == "fault:peer_blackout" for s in instants)


# ----------------------------------------------------------------------
# Recovery hardening regressions
# ----------------------------------------------------------------------
class TestTrackerOutageRecovery:
    def test_peer_rebootstraps_and_refills_after_outage(self):
        """A probe that joins mid-outage must end the session ACTIVE
        with a filled neighbor table and no manual intervention: all
        trackers look dead -> automatic playlink re-request -> trackers
        recover -> neighbor refill."""
        from repro.protocol.peer import PeerPhase
        schedule = FaultSchedule(events=(
            ServerOutage(target="trackers", start=100.0, duration=120.0,
                         label="outage"),))
        result = run_faulted_session(schedule, seed=17, population=18,
                                     warmup=120.0, duration=360.0)
        peer = result.probe().peer
        assert peer.rebootstraps >= 1
        assert peer.phase is PeerPhase.DEPARTED  # left at session end
        assert peer.player is not None  # reached ACTIVE and streamed
        assert peer.player.deadlines_met > 0

    def test_neighbor_table_refills_after_outage(self):
        fills = []
        schedule = FaultSchedule(events=(
            ServerOutage(target="trackers", start=100.0, duration=120.0),))

        def hook(sim, deployment, manager, probe_peers):
            def snapshot():
                for peer in probe_peers.values():
                    fills.append((sim.now, len(peer.neighbors)))
            sim.every(30.0, snapshot)

        config = ScenarioConfig(seed=17, population=18, warmup=120.0,
                                duration=360.0, faults=schedule,
                                run_hook=hook)
        SessionScenario(config).run()
        late = [count for time, count in fills if time >= 300.0]
        assert late and max(late) >= 4

    def test_no_rebootstrap_without_outage(self):
        result = run_faulted_session(FaultSchedule(), seed=17,
                                     population=18, warmup=120.0,
                                     duration=360.0)
        peer = result.probe().peer
        assert peer.rebootstraps == 0


class TestCrashChurnRegression:
    def test_silent_crash_leaves_no_stuck_state(self):
        """Satellite regression: a neighbor that crashes silently must
        be evicted by the silence timeout, leaving no pending-hello or
        scheduler entry pointing at it."""
        crashed_addresses = []
        schedule = FaultSchedule(events=(
            PeerBlackout(isp_name="ChinaNetcom", start=240.0,
                         fraction=1.0, label="wipeout"),))

        def hook(sim, deployment, manager, probe_peers):
            def snapshot():
                crashed_addresses.extend(
                    viewer.address for viewer in manager.active
                    if viewer.isp.name == "ChinaNetcom")
            sim.call_at(239.9, snapshot)

        config = ScenarioConfig(seed=23, population=20, warmup=120.0,
                                duration=420.0, faults=schedule,
                                run_hook=hook)
        result = SessionScenario(config).run()
        assert crashed_addresses
        peer = result.probe().peer
        dead = set(crashed_addresses)
        # 180+ seconds after the blackout (> neighbor_silence_timeout):
        # every crashed neighbor has been swept from the table...
        assert not dead & set(peer.neighbors.addresses())
        # ...no handshake is still pending towards a dead host...
        assert not dead & set(peer._pending_hellos)
        # ...and the scheduler holds no in-flight request to one beyond
        # the data timeout (stuck entries would pin the seq forever).
        if peer.scheduler is not None:
            horizon = 2 * config.protocol.data_timeout
            for pending in peer.scheduler._pending.values():
                assert pending.sent_at >= 540.0 - horizon \
                    or pending.neighbor not in dead

    def test_crashed_viewer_not_replaced(self):
        schedule = FaultSchedule(events=(
            PeerBlackout(isp_name="ChinaNetcom", start=240.0,
                         fraction=1.0),))
        faulted = run_faulted_session(schedule, seed=23, population=20,
                                      warmup=120.0, duration=300.0)
        clean = run_faulted_session(FaultSchedule(), seed=23,
                                    population=20, warmup=120.0,
                                    duration=300.0)
        assert faulted.population.total_crashed > \
            clean.population.total_crashed
        assert faulted.population.active_count < \
            clean.population.active_count


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    def test_same_schedule_same_run(self):
        schedule = FaultSchedule(events=demo_events())
        a = run_faulted_session(schedule, seed=31)
        b = run_faulted_session(schedule, seed=31)
        ta = [dataclasses.astuple(t) for t in a.probe().report.data]
        tb = [dataclasses.astuple(t) for t in b.probe().report.data]
        assert ta == tb
        assert a.population.total_crashed == b.population.total_crashed

    def test_no_schedule_matches_empty_schedule(self):
        # ScenarioConfig(faults=None) and an armed empty schedule are
        # byte-identical: arming itself must not consume shared RNG.
        empty = run_faulted_session(FaultSchedule(), seed=31)
        none = run_faulted_session(None, seed=31)
        te = [dataclasses.astuple(t) for t in empty.probe().report.data]
        tn = [dataclasses.astuple(t) for t in none.probe().report.data]
        assert te == tn
