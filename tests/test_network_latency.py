"""Unit tests for the latency model."""

import pytest

from repro.network.isp import ISP, ISPCategory, default_isp_catalog
from repro.network.latency import (LatencyConfig, LatencyModel, PairClass,
                                   RttBand, classify_pair)
from repro.network import latency as latency_module


@pytest.fixture
def catalog():
    return default_isp_catalog()


@pytest.fixture
def model():
    return LatencyModel(LatencyConfig(), master_seed=5)


class TestClassification:
    def test_intra_isp(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        assert classify_pair(tele, tele) is PairClass.INTRA_ISP

    def test_tele_cnc_peering(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        cnc = catalog.by_name("ChinaNetcom")
        assert classify_pair(tele, cnc) is PairClass.TELE_CNC_PEERING
        assert classify_pair(cnc, tele) is PairClass.TELE_CNC_PEERING

    def test_cernet_gateway(self, catalog):
        cer = catalog.by_name("CERNET")
        tele = catalog.by_name("ChinaTelecom")
        unicom = catalog.by_name("ChinaUnicom")
        assert classify_pair(cer, tele) is PairClass.CERNET_GATEWAY
        assert classify_pair(unicom, cer) is PairClass.CERNET_GATEWAY

    def test_domestic_china(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        unicom = catalog.by_name("ChinaUnicom")
        assert classify_pair(tele, unicom) is PairClass.DOMESTIC

    def test_domestic_us(self, catalog):
        comcast = catalog.by_name("Comcast")
        verizon = catalog.by_name("Verizon")
        assert classify_pair(comcast, verizon) is PairClass.DOMESTIC

    def test_international_same_continent(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        ntt = catalog.by_name("NTT-OCN")
        assert classify_pair(tele, ntt) is PairClass.INTERNATIONAL

    def test_transoceanic(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        comcast = catalog.by_name("Comcast")
        assert classify_pair(tele, comcast) is PairClass.TRANSOCEANIC
        dt = catalog.by_name("DeutscheTelekom")
        assert classify_pair(comcast, dt) is PairClass.TRANSOCEANIC


class TestRttBand:
    def test_sample_within_bounds(self):
        band = RttBand(median=0.1, sigma=0.5, floor=0.05, ceiling=0.2)
        for gauss in (-10.0, -1.0, 0.0, 1.0, 10.0):
            value = band.sample(gauss)
            assert 0.05 <= value <= 0.2

    def test_median_at_zero_gauss(self):
        band = RttBand(median=0.1, sigma=0.5, floor=0.01, ceiling=1.0)
        assert band.sample(0.0) == pytest.approx(0.1)


class TestBaseRtt:
    def test_symmetric(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        cnc = catalog.by_name("ChinaNetcom")
        a = model.base_rtt("1.0.0.1", tele, "1.8.0.1", cnc)
        b = model.base_rtt("1.8.0.1", cnc, "1.0.0.1", tele)
        assert a == b

    def test_stable_across_calls(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        values = {model.base_rtt("1.0.0.1", tele, "1.0.0.2", tele)
                  for _ in range(10)}
        assert len(values) == 1

    def test_deterministic_across_models(self, catalog):
        tele = catalog.by_name("ChinaTelecom")
        a = LatencyModel(LatencyConfig(), 9).base_rtt(
            "1.0.0.1", tele, "1.0.0.2", tele)
        b = LatencyModel(LatencyConfig(), 9).base_rtt(
            "1.0.0.1", tele, "1.0.0.2", tele)
        assert a == b

    def test_pair_classes_ordered_on_average(self, catalog, model):
        """Intra-ISP pairs are on average faster than transoceanic ones."""
        tele = catalog.by_name("ChinaTelecom")
        comcast = catalog.by_name("Comcast")
        intra = [model.base_rtt(f"1.0.0.{i}", tele, f"1.0.1.{i}", tele)
                 for i in range(1, 60)]
        ocean = [model.base_rtt(f"1.0.0.{i}", tele, f"1.24.0.{i}", comcast)
                 for i in range(1, 60)]
        assert sum(intra) / len(intra) < sum(ocean) / len(ocean)

    def test_cache_grows(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        model.base_rtt("1.0.0.1", tele, "1.0.0.2", tele)
        model.base_rtt("1.0.0.1", tele, "1.0.0.3", tele)
        assert model.cache_size() == 2


class TestOneWayDelay:
    def test_positive_and_jittered(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        delays = {model.one_way_delay("1.0.0.1", tele, "1.0.0.2", tele)
                  for _ in range(20)}
        assert all(d > 0 for d in delays)
        assert len(delays) > 1  # jitter varies per packet

    def test_size_dependent_path_term(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        comcast = catalog.by_name("Comcast")
        small = [model.one_way_delay("1.0.0.1", tele, "1.24.0.1", comcast,
                                     wire_bytes=100) for _ in range(30)]
        large = [model.one_way_delay("1.0.0.1", tele, "1.24.0.1", comcast,
                                     wire_bytes=20000) for _ in range(30)]
        assert sum(large) / 30 > sum(small) / 30

    def test_bulk_slower_cross_isp_than_intra(self, catalog, model):
        tele = catalog.by_name("ChinaTelecom")
        cnc = catalog.by_name("ChinaNetcom")
        intra = [model.one_way_delay(f"1.0.0.{i}", tele, f"1.0.1.{i}",
                                     tele, wire_bytes=15000)
                 for i in range(1, 40)]
        cross = [model.one_way_delay(f"1.0.0.{i}", tele, f"1.8.0.{i}",
                                     cnc, wire_bytes=15000)
                 for i in range(1, 40)]
        assert sum(intra) / len(intra) < sum(cross) / len(cross)


class TestLoss:
    def test_loss_rates_respected(self, catalog):
        config = LatencyConfig()
        config.loss[PairClass.INTRA_ISP] = 0.0
        config.loss[PairClass.TRANSOCEANIC] = 1.0
        model = LatencyModel(config, master_seed=1)
        tele = catalog.by_name("ChinaTelecom")
        comcast = catalog.by_name("Comcast")
        assert not any(model.is_lost(tele, tele) for _ in range(50))
        assert all(model.is_lost(tele, comcast) for _ in range(50))


class TestBatchEquivalence:
    """The cohort batch helpers against per-packet calls, bit for bit.

    ``one_way_delays`` / ``are_lost`` promise the exact floats and
    verdicts of the equivalent per-packet call sequence: one draw per
    item in item order on each RNG stream, with numpy (when present)
    used only for exactly-rounded elementwise arithmetic.  Each case
    runs both a cohort below the numpy crossover (scalar fallback) and
    one far above it.
    """

    COUNTS = (3, 200)

    @staticmethod
    def _items(catalog, count):
        isps = [catalog.by_name(name) for name in
                ("ChinaTelecom", "ChinaNetcom", "CERNET", "Comcast")]
        return [(f"10.0.{i % 5}.1", isps[i % 4],
                 f"10.1.{(i * 3) % 7}.2", isps[(i * 7 + 3) % 4],
                 28 + (i % 4) * 400)
                for i in range(count)]

    def test_delays_match_per_packet_reference(self, catalog):
        for count in self.COUNTS:
            batched = LatencyModel(LatencyConfig(), master_seed=5)
            reference = LatencyModel(LatencyConfig(), master_seed=5)
            items = self._items(catalog, count)
            assert (batched.one_way_delays(items)
                    == [reference.one_way_delay(*item) for item in items])

    def test_losses_match_per_packet_reference(self, catalog):
        for count in self.COUNTS:
            pairs = [(item[1], item[3])
                     for item in self._items(catalog, count)]
            batched = LatencyModel(LatencyConfig(), master_seed=5)
            reference = LatencyModel(LatencyConfig(), master_seed=5)
            assert (list(batched.are_lost(pairs))
                    == [reference.is_lost(a, b) for a, b in pairs])

    @pytest.mark.skipif(latency_module._np is None,
                        reason="numpy unavailable")
    def test_batches_identical_with_and_without_numpy(self, catalog,
                                                      monkeypatch):
        items = self._items(catalog, 200)
        pairs = [(item[1], item[3]) for item in items]
        with_numpy = LatencyModel(LatencyConfig(), master_seed=5)
        numpy_delays = with_numpy.one_way_delays(items)
        numpy_lost = list(with_numpy.are_lost(pairs))
        with monkeypatch.context() as patch:
            patch.setattr(latency_module, "_np", None)
            scalar = LatencyModel(LatencyConfig(), master_seed=5)
            assert scalar.one_way_delays(items) == numpy_delays
            assert list(scalar.are_lost(pairs)) == numpy_lost
