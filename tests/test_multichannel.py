"""Tests for the shared-infrastructure multi-channel scenario."""

import pytest

from repro.analysis import locality_breakdown
from repro.workload.multichannel import (ChannelSpec, MultiChannelScenario,
                                         paper_channel_pair)
from repro.streaming.video import Popularity
from repro.workload.popularity import popular_channel_mix


@pytest.fixture(scope="module")
def world():
    scenario = MultiChannelScenario(
        paper_channel_pair(popular_population=16, unpopular_population=8),
        seed=9, warmup=100.0, duration=200.0)
    return scenario.run()


class TestStructure:
    def test_two_channels_one_bootstrap(self, world):
        assert len(world.channels) == 2
        bootstrap = world.deployment.bootstrap
        assert len(bootstrap.channels()) == 2

    def test_all_probes_active(self, world):
        assert set(world.probe_names()) == {
            "tele-popular", "mason-popular",
            "tele-unpopular", "mason-unpopular"}
        for name in world.probe_names():
            probe = world.probe(name)
            assert len(probe.report.data) > 0, name

    def test_unknown_probe_rejected(self, world):
        with pytest.raises(KeyError):
            world.probe("nobody")

    def test_channel_isolation(self, world):
        """A probe on one channel never receives another channel's data."""
        for name in world.probe_names():
            probe = world.probe(name)
            expected = probe.peer.channel.channel_id
            for record in probe.trace.of_type("DataReply", "DataRequest"):
                assert record.payload.channel_id == expected

    def test_shared_trackers_know_both_channels(self, world):
        tracker = world.deployment.trackers[0]
        assert tracker.active_peers(1)
        assert tracker.active_peers(2)

    def test_each_channel_has_own_source(self, world):
        sources = {c.source.address for c in world.channels.values()}
        assert len(sources) == 2

    def test_infrastructure_includes_all_sources(self, world):
        infra = world.infrastructure
        for channel in world.channels.values():
            assert channel.source.address in infra

    def test_locality_analysable_per_probe(self, world):
        probe = world.probe("tele-popular")
        breakdown = locality_breakdown(probe.trace, probe.report.data,
                                       world.directory,
                                       world.infrastructure)
        assert 0.0 <= breakdown.locality <= 1.0
        assert breakdown.returned_total > 0


class TestValidation:
    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError):
            MultiChannelScenario([])

    def test_single_channel_works(self):
        spec = ChannelSpec(name="solo", popularity=Popularity.POPULAR,
                           mix=popular_channel_mix(), population=6)
        scenario = MultiChannelScenario([spec], seed=2, warmup=60.0,
                                        duration=90.0)
        result = scenario.run()
        assert len(result.channels) == 1
        assert result.channels[1].population.active_count > 0
