"""Tests for the Internet builder bundle and the datagram type."""

import pytest

from repro.network.builder import build_internet
from repro.network.datagram import HEADER_BYTES, Datagram
from repro.network.isp import ISPCategory
from repro.network.latency import LatencyConfig, PairClass, RttBand
from repro.sim import Simulator


class TestBuilder:
    def test_components_wired(self):
        sim = Simulator(seed=2)
        internet = build_internet(sim)
        assert internet.sim is sim
        assert internet.udp.latency is internet.latency
        assert len(internet.catalog) > 0

    def test_latency_seeded_from_sim(self):
        a = build_internet(Simulator(seed=5))
        b = build_internet(Simulator(seed=5))
        tele = a.catalog.by_name("ChinaTelecom")
        tele_b = b.catalog.by_name("ChinaTelecom")
        assert (a.latency.base_rtt("1.0.0.1", tele, "1.0.0.2", tele)
                == b.latency.base_rtt("1.0.0.1", tele_b, "1.0.0.2",
                                      tele_b))

    def test_different_seeds_different_latency(self):
        a = build_internet(Simulator(seed=5))
        b = build_internet(Simulator(seed=6))
        tele_a = a.catalog.by_name("ChinaTelecom")
        tele_b = b.catalog.by_name("ChinaTelecom")
        assert (a.latency.base_rtt("1.0.0.1", tele_a, "1.0.0.2", tele_a)
                != b.latency.base_rtt("1.0.0.1", tele_b, "1.0.0.2",
                                      tele_b))

    def test_custom_latency_config(self):
        config = LatencyConfig()
        config.bands[PairClass.INTRA_ISP] = RttBand(0.5, 0.01, 0.49, 0.51)
        internet = build_internet(Simulator(seed=1),
                                  latency_config=config)
        tele = internet.catalog.by_name("ChinaTelecom")
        rtt = internet.latency.base_rtt("1.0.0.1", tele, "1.0.0.2", tele)
        assert 0.49 <= rtt <= 0.51

    def test_helpers(self):
        internet = build_internet(Simulator(seed=1))
        assert internet.isp_named("CERNET").category is ISPCategory.CER
        foreign = internet.isps_in(ISPCategory.FOREIGN)
        assert len(foreign) >= 3

    def test_directory_covers_allocator(self):
        internet = build_internet(Simulator(seed=1))
        for isp in internet.catalog:
            address = internet.allocator.allocate(isp)
            assert internet.directory.category_of(address) is isp.category


class TestDatagram:
    def test_wire_bytes_includes_headers(self):
        datagram = Datagram(src="1.0.0.1", dst="1.0.0.2", payload="x",
                            payload_bytes=100, sent_at=0.0)
        assert datagram.wire_bytes == 100 + HEADER_BYTES

    def test_packet_ids_unique_and_increasing(self):
        a = Datagram(src="a", dst="b", payload=None, payload_bytes=0,
                     sent_at=0.0)
        b = Datagram(src="a", dst="b", payload=None, payload_bytes=0,
                     sent_at=0.0)
        assert b.packet_id > a.packet_id

    def test_frozen(self):
        datagram = Datagram(src="a", dst="b", payload=None,
                            payload_bytes=0, sent_at=0.0)
        with pytest.raises(AttributeError):
            datagram.src = "c"
