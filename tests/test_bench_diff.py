"""Tests for bench attribution blocks and perf regression diffing."""

import copy
import io
import json

import pytest

from repro.experiments.bench import (MIN_ATTRIBUTION_COVERAGE,
                                     diff_records, load_bench,
                                     run_bench_diff, run_engine_bench)


def _artifact(rate=1000.0, digest="abc", wall=2.0, attribution=True):
    record = {"events_per_sec": rate, "wall_seconds": wall,
              "golden_digest": digest}
    if attribution:
        record["attribution"] = {
            "total_wall_seconds": wall,
            "coverage": 0.98,
            "buckets": {
                "transport": {"wall_seconds": wall * 0.4, "share": 0.4,
                              "events": 100},
                "protocol": {"wall_seconds": wall * 0.5, "share": 0.5,
                             "events": 50},
            },
        }
    return {"schema": 1, "benchmark": "engine",
            "profiles": {"quick": record}}


class TestDiffRecords:
    def test_regression_beyond_threshold_fails(self):
        out = io.StringIO()
        failures = diff_records(_artifact(1000.0), _artifact(800.0),
                                threshold=0.10, name="engine", out=out)
        assert len(failures) == 1
        assert "regressed" in failures[0]
        assert "** REGRESSION **" in out.getvalue()

    def test_drop_within_threshold_passes(self):
        out = io.StringIO()
        failures = diff_records(_artifact(1000.0), _artifact(950.0),
                                threshold=0.10, name="engine", out=out)
        assert failures == []
        assert "-5.0%" in out.getvalue()

    def test_improvement_never_fails(self):
        failures = diff_records(_artifact(1000.0), _artifact(2000.0),
                                threshold=0.10, name="engine",
                                out=io.StringIO())
        assert failures == []

    def test_attribution_deltas_are_reported(self):
        out = io.StringIO()
        slow = _artifact(700.0, wall=3.0)
        diff_records(_artifact(1000.0), slow, threshold=0.5,
                     name="engine", out=out)
        text = out.getvalue()
        assert "transport" in text
        assert "protocol" in text

    def test_digest_mismatch_is_flagged_not_failed(self):
        out = io.StringIO()
        failures = diff_records(_artifact(1000.0, digest="aaa"),
                                _artifact(1000.0, digest="bbb"),
                                threshold=0.10, name="engine", out=out)
        assert failures == []
        assert "golden digest differs" in out.getvalue()

    def test_one_sided_profiles_are_skipped(self):
        out = io.StringIO()
        base = _artifact(1000.0)
        new = copy.deepcopy(base)
        new["profiles"]["default"] = new["profiles"].pop("quick")
        failures = diff_records(base, new, threshold=0.10,
                                name="engine", out=out)
        assert failures == []
        assert "only in" in out.getvalue()


class TestRunBenchDiff:
    def test_two_files_synthetic_regression_exits_nonzero(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_artifact(1000.0)))
        new.write_text(json.dumps(_artifact(500.0)))
        out = io.StringIO()
        assert run_bench_diff(old, new, threshold=0.10, out=out) == 1
        assert "FAIL" in out.getvalue()

    def test_identical_files_exit_zero(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_artifact(1000.0)))
        assert run_bench_diff(path, path, out=io.StringIO()) == 0

    def test_load_bench_rejects_non_artifacts(self, tmp_path):
        bogus = tmp_path / "b.json"
        bogus.write_text("{}")
        with pytest.raises(ValueError):
            load_bench(bogus)
        with pytest.raises(ValueError):
            load_bench(tmp_path / "missing.json")


class TestEngineBenchAttribution:
    @pytest.fixture(scope="class")
    def record(self):
        return run_engine_bench("quick", seed=7)

    def test_attribution_block_present_with_coverage(self, record):
        attribution = record["attribution"]
        assert attribution["coverage"] >= MIN_ATTRIBUTION_COVERAGE
        buckets = attribution["buckets"]
        # The known hot subsystems of a live-streaming session.
        assert {"engine", "transport", "protocol"} <= set(buckets)
        for entry in buckets.values():
            assert entry["wall_seconds"] >= 0.0
            assert 0.0 <= entry["share"] <= 1.0

    def test_buckets_explain_at_least_90pct_of_wall(self, record):
        attribution = record["attribution"]
        covered = sum(entry["wall_seconds"]
                      for entry in attribution["buckets"].values())
        assert covered >= 0.9 * attribution["total_wall_seconds"]

    def test_timing_pass_semantics_unchanged(self, record):
        # The timing fields come from the *uninstrumented* pass: the
        # attribution pass cross-checks its digest against this one
        # inside run_engine_bench (a divergence raises there).
        assert record["golden_digest"]
        assert record["events_per_sec"] > 0
        assert record["events"] > 0

    def test_attribution_can_be_disabled(self):
        record = run_engine_bench("quick", seed=7, attribution=False)
        assert "attribution" not in record
