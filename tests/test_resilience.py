"""The resilience sweep: scoring, --jobs byte-identity, checkpointing,
and the SIGKILL/--resume cycle.

The full sweep is an experiment-sized run; these tests shrink the SMALL
scale and restrict the sweep to one behavior × one fraction (a baseline
plus a single adversarial cell), which exercises every code path —
fan-out, scoring, checkpoint write/replay — at unit-test cost.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointPolicy
from repro.experiments.base import SCALE_PARAMS, Scale, ScaleParams
from repro.experiments.registry import run_experiment
from repro.experiments.resilience import (KILL_SWITCH_ENV, build_cells,
                                          resilience_params,
                                          run_resilience)

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: A seconds-long stand-in for the SMALL scale.
TINY = ScaleParams(popular_population=12, unpopular_population=6,
                   duration=180.0, warmup=90.0)
BEHAVIORS = ("chunk_polluter",)
FRACTIONS = (0.4,)


@pytest.fixture(scope="module", autouse=True)
def tiny_small_scale():
    saved = SCALE_PARAMS[Scale.SMALL]
    SCALE_PARAMS[Scale.SMALL] = TINY
    yield
    SCALE_PARAMS[Scale.SMALL] = saved


def tiny_sweep(jobs=1, checkpoint=None):
    return run_resilience(scale=Scale.SMALL, seed=7, jobs=jobs,
                          fractions=FRACTIONS, behaviors=BEHAVIORS,
                          checkpoint=checkpoint)


@pytest.fixture(scope="module")
def serial():
    return tiny_sweep()


class TestParams:
    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            resilience_params(behaviors=("meteor",))

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fractions"):
            resilience_params(fractions=(0.0,))
        with pytest.raises(ValueError, match="fractions"):
            resilience_params(fractions=(1.5,))

    def test_cell_zero_is_baseline(self):
        cells = build_cells(resilience_params(
            behaviors=("free_rider", "chunk_polluter"),
            fractions=(0.1, 0.3)))
        assert cells[0].label == "baseline"
        assert [c.label for c in cells[1:]] == [
            "free_rider@0.1", "free_rider@0.3",
            "chunk_polluter@0.1", "chunk_polluter@0.3"]


class TestScoring:
    def test_four_statistics_per_adversarial_cell(self, serial):
        labels = [cell.label for cell in serial.cells[1:]]
        for label in labels:
            stats = [s for s in serial.statistics if s.figure == label]
            assert [s.name for s in stats] == [
                "continuity", "transit byte share", "startup delay",
                "top-10% upload share"]

    def test_baseline_not_scored_against_itself(self, serial):
        assert all(s.figure != "baseline" for s in serial.statistics)

    def test_render_mentions_every_cell(self, serial):
        rendered = serial.render()
        assert "baseline:" in rendered
        for cell in serial.cells[1:]:
            assert cell.label in rendered


class TestJobsByteIdentity:
    def test_parallel_matches_serial(self, serial):
        parallel = tiny_sweep(jobs=2)
        assert parallel.outcomes == serial.outcomes
        assert parallel.render() == serial.render()


class TestCheckpoint:
    def test_fresh_checkpointed_run_matches_plain(self, serial,
                                                  tmp_path):
        root = tmp_path / "ckpt"
        fresh = tiny_sweep(checkpoint=CheckpointPolicy(path=str(root)))
        assert fresh.outcomes == serial.outcomes
        assert fresh.render() == serial.render()
        units = sorted(p.name for p in (root / "units").glob("*.json"))
        assert units == ["cell-0000.json", "cell-0001.json"]

    def test_resume_replays_missing_cell(self, serial, tmp_path):
        root = tmp_path / "ckpt"
        tiny_sweep(checkpoint=CheckpointPolicy(path=str(root)))
        os.unlink(root / "units" / "cell-0001.json")
        resumed = tiny_sweep(checkpoint=CheckpointPolicy(
            path=str(root), resume=True))
        assert resumed.outcomes == serial.outcomes
        assert resumed.render() == serial.render()
        units = sorted(p.name for p in (root / "units").glob("*.json"))
        assert units == ["cell-0000.json", "cell-0001.json"]

    def test_other_experiments_still_reject_checkpoint(self, tmp_path):
        with pytest.raises(ValueError, match="only apply"):
            run_experiment("table1", checkpoint=CheckpointPolicy(
                path=str(tmp_path / "nope")))


# ----------------------------------------------------------------------
# kill -9 mid-sweep, then --resume
# ----------------------------------------------------------------------
#: Child entry point: the tiny sweep with per-cell checkpointing.
_CHILD = """\
import sys
from repro.checkpoint import CheckpointPolicy
from repro.experiments.base import SCALE_PARAMS, Scale, ScaleParams
SCALE_PARAMS[Scale.SMALL] = ScaleParams(
    popular_population=12, unpopular_population=6,
    duration=180.0, warmup=90.0)
from repro.experiments.resilience import run_resilience
result = run_resilience(
    scale=Scale.SMALL, seed=7,
    fractions=(0.4,), behaviors=("chunk_polluter",),
    checkpoint=CheckpointPolicy(path=sys.argv[1],
                                resume="resume" in sys.argv[2:],
                                every=1))
sys.stdout.write(result.render() + "\\n")
"""


def _sweep_process(ckpt, tmp_path, resume=False, kill_at=None,
                   timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(KILL_SWITCH_ENV, None)
    if kill_at is not None:
        env[KILL_SWITCH_ENV] = kill_at
    args = [sys.executable, "-c", _CHILD, str(ckpt)]
    if resume:
        args.append("resume")
    return subprocess.run(args, cwd=str(tmp_path), env=env,
                          capture_output=True, text=True,
                          timeout=timeout)


class TestKillResume:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        full = _sweep_process(tmp_path / "full", tmp_path)
        assert full.returncode == 0, full.stderr

        # SIGKILL the sweep early in its adversarial cell: the baseline
        # is flushed, the in-flight cell dies un-checkpointed.
        ckpt = tmp_path / "ckpt"
        killed = _sweep_process(ckpt, tmp_path, kill_at="1:2000")
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        flushed = sorted(p.name for p in (ckpt / "units").glob("*.json"))
        assert flushed == ["cell-0000.json"]

        resumed = _sweep_process(ckpt, tmp_path, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == full.stdout
