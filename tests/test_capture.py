"""Tests for the sniffer, trace store and request/reply matching."""

import pytest

from repro.capture.matching import (match_data_transactions,
                                    match_peerlist_transactions)
from repro.capture.records import Direction, PacketRecord
from repro.capture.sniffer import ProbeSniffer
from repro.capture.store import TraceStore
from repro.network.builder import build_internet
from repro.network.transport import Host
from repro.protocol import messages as m
from repro.protocol.wire import wire_size
from repro.sim import Simulator


class Chatter(Host):
    def handle_datagram(self, datagram):
        pass


def record(time, direction, src, dst, payload):
    return PacketRecord(time=time, direction=direction, src=src, dst=dst,
                        msg_type=type(payload).__name__,
                        wire_bytes=wire_size(payload), packet_id=0,
                        payload=payload)


def probe_trace(events):
    """Build a trace for probe P from (time, direction, remote, payload)."""
    store = TraceStore("P")
    for time, direction, remote, payload in events:
        if direction is Direction.OUT:
            store.append(record(time, direction, "P", remote, payload))
        else:
            store.append(record(time, direction, remote, "P", payload))
    return store


class TestSniffer:
    def test_captures_both_directions(self):
        sim = Simulator(seed=0)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        from repro.network.bandwidth import CAMPUS
        a = Chatter(sim, internet.udp, internet.allocator.allocate(tele),
                    tele, CAMPUS)
        b = Chatter(sim, internet.udp, internet.allocator.allocate(tele),
                    tele, CAMPUS)
        a.go_online()
        b.go_online()
        sniffer = ProbeSniffer(internet.udp, a.address).start()
        a.send(b.address, m.TrackerQuery(channel_id=1),
               wire_size(m.TrackerQuery(channel_id=1)))
        b.send(a.address, m.TrackerReply(channel_id=1),
               wire_size(m.TrackerReply(channel_id=1)))
        sim.run()
        trace = sniffer.stop()
        directions = [r.direction for r in trace]
        assert Direction.OUT in directions
        assert Direction.IN in directions

    def test_ignores_third_party_traffic(self):
        sim = Simulator(seed=0)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        from repro.network.bandwidth import CAMPUS
        hosts = [Chatter(sim, internet.udp,
                         internet.allocator.allocate(tele), tele, CAMPUS)
                 for _ in range(3)]
        for host in hosts:
            host.go_online()
        sniffer = ProbeSniffer(internet.udp, hosts[0].address).start()
        hosts[1].send(hosts[2].address, m.Goodbye(), 10)
        sim.run()
        assert len(sniffer.stop()) == 0

    def test_context_manager(self):
        sim = Simulator(seed=0)
        internet = build_internet(sim)
        with ProbeSniffer(internet.udp, "1.2.3.4") as sniffer:
            assert sniffer.store.probe_address == "1.2.3.4"


class TestStore:
    def test_slicing(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.DataRequest(seq=1)),
            (2.0, Direction.IN, "A", m.DataReply(seq=1)),
            (3.0, Direction.OUT, "B", m.PeerListRequest(request_id=1)),
        ])
        assert len(trace.of_type("DataRequest")) == 1
        assert len(trace.incoming()) == 1
        assert len(trace.outgoing("PeerListRequest")) == 1
        assert trace.remotes() == ["A", "B"]
        assert trace.span == pytest.approx(2.0)
        assert len(trace.between(1.5, 2.5)) == 1

    def test_jsonl_round_trip(self, tmp_path):
        trace = probe_trace([
            (1.0, Direction.OUT, "1.0.0.1",
             m.DataRequest(chunk=5, first=0, last=3, seq=9)),
            (1.5, Direction.IN, "1.0.0.1",
             m.DataReply(chunk=5, first=0, last=3, seq=9,
                         payload_bytes=5520)),
            (2.0, Direction.IN, "1.0.0.2",
             m.PeerListReply(peers=("1.0.0.3", "1.0.0.4"), request_id=2)),
        ])
        path = tmp_path / "trace.jsonl"
        count = trace.save_jsonl(path)
        assert count == 3
        loaded = TraceStore.load_jsonl(path)
        assert loaded.probe_address == "P"
        assert len(loaded) == 3
        assert loaded[0].payload.seq == 9
        assert loaded[2].payload.peers == ("1.0.0.3", "1.0.0.4")
        # The reloaded trace is analysable: matching still works.
        txns, _misses, _un = match_data_transactions(loaded)
        assert len(txns) == 1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            TraceStore.load_jsonl(path)


class TestDataMatching:
    def test_pairs_by_remote_and_seq(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A",
             m.DataRequest(chunk=1, first=0, last=3, seq=1)),
            (1.4, Direction.IN, "A",
             m.DataReply(chunk=1, first=0, last=3, seq=1,
                         payload_bytes=100)),
        ])
        txns, misses, unanswered = match_data_transactions(trace)
        assert len(txns) == 1
        assert txns[0].response_time == pytest.approx(0.4)
        assert txns[0].payload_bytes == 100
        assert misses == 0 and unanswered == 0

    def test_same_seq_different_remotes(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.DataRequest(seq=7)),
            (1.1, Direction.OUT, "B", m.DataRequest(seq=7)),
            (1.5, Direction.IN, "B", m.DataReply(seq=7)),
            (1.9, Direction.IN, "A", m.DataReply(seq=7)),
        ])
        txns, _misses, unanswered = match_data_transactions(trace)
        assert len(txns) == 2
        assert unanswered == 0
        by_remote = {t.remote: t.response_time for t in txns}
        assert by_remote["B"] == pytest.approx(0.4)
        assert by_remote["A"] == pytest.approx(0.9)

    def test_unmatched_reply_ignored(self):
        trace = probe_trace([
            (1.0, Direction.IN, "A", m.DataReply(seq=3)),
        ])
        txns, _m, unanswered = match_data_transactions(trace)
        assert txns == [] and unanswered == 0

    def test_miss_counted(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.DataRequest(seq=2)),
            (1.3, Direction.IN, "A", m.DataMiss(seq=2)),
        ])
        txns, misses, unanswered = match_data_transactions(trace)
        assert txns == [] and misses == 1 and unanswered == 0

    def test_unanswered_counted(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.DataRequest(seq=2)),
        ])
        _t, _m, unanswered = match_data_transactions(trace)
        assert unanswered == 1


class TestPeerListMatching:
    def test_latest_request_rule(self):
        """The reply is matched to the *latest* request to the same IP —
        the paper's rule, even when an id would disambiguate better."""
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.PeerListRequest(request_id=1)),
            (5.0, Direction.OUT, "A", m.PeerListRequest(request_id=2)),
            (5.4, Direction.IN, "A",
             m.PeerListReply(request_id=1, peers=("X",))),
        ])
        txns, unanswered = match_peerlist_transactions(trace)
        assert len(txns) == 1
        assert txns[0].response_time == pytest.approx(0.4)
        assert unanswered == 1  # one of the two requests stays unmatched

    def test_reply_before_any_request_ignored(self):
        trace = probe_trace([
            (1.0, Direction.IN, "A", m.PeerListReply(request_id=1)),
        ])
        txns, unanswered = match_peerlist_transactions(trace)
        assert txns == [] and unanswered == 0

    def test_more_replies_than_requests_capped(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.PeerListRequest(request_id=1)),
            (1.4, Direction.IN, "A", m.PeerListReply(request_id=1)),
            (1.6, Direction.IN, "A", m.PeerListReply(request_id=1)),
        ])
        txns, unanswered = match_peerlist_transactions(trace)
        assert len(txns) == 1 and unanswered == 0

    def test_peers_carried_through(self):
        trace = probe_trace([
            (1.0, Direction.OUT, "A", m.PeerListRequest(request_id=1)),
            (1.4, Direction.IN, "A",
             m.PeerListReply(request_id=1, peers=("1.0.0.9",))),
        ])
        txns, _un = match_peerlist_transactions(trace)
        assert txns[0].peers == ("1.0.0.9",)
