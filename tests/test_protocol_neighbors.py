"""Unit tests for per-neighbor state and the neighbor table."""

import pytest

from repro.protocol.neighbors import NeighborState, NeighborTable


def make_state(address="1.0.0.1", now=0.0):
    return NeighborState(address=address, connected_at=now, last_heard=now)


class TestAvailability:
    def test_record_availability_monotone(self):
        state = make_state()
        state.record_availability(10, now=1.0, have_from=2)
        state.record_availability(5, now=2.0)  # stale report, kept at 10
        assert state.reported_have == 10
        assert state.reported_from == 2
        assert state.last_heard == 2.0

    def test_estimated_have_no_report(self):
        state = make_state()
        assert state.estimated_have(10.0, 4.0, 1.0, 0) == -1

    def test_estimated_have_extrapolates_capped(self):
        state = make_state()
        state.record_availability(10, now=0.0)
        # 40 s elapsed at 1 chunk / 4 s = 10 chunks, capped at 3.
        assert state.estimated_have(40.0, 4.0, 1.0, 0,
                                    max_progress=3) == 13

    def test_estimated_have_margin(self):
        state = make_state()
        state.record_availability(10, now=0.0)
        assert state.estimated_have(0.0, 4.0, 1.0, 2, max_progress=0) == 8

    def test_can_serve_respects_have_from(self):
        state = make_state()
        state.record_availability(20, now=0.0, have_from=15)
        assert state.can_serve(17, 0.0, 4.0, 1.0, 0, 0)
        assert not state.can_serve(10, 0.0, 4.0, 1.0, 0, 0)
        assert not state.can_serve(25, 0.0, 4.0, 1.0, 0, 0)

    def test_miss_grows_bias_and_report_decays_it(self):
        state = make_state()
        state.record_availability(10, now=0.0)
        state.record_miss(now=1.0)
        assert state.availability_bias == 1.0
        state.record_availability(11, now=2.0)
        assert state.availability_bias == 0.5


class TestResponseTracking:
    def test_first_response_sets_ewma(self):
        state = make_state()
        state.record_response(0.4, alpha=0.25)
        assert state.ewma_response == pytest.approx(0.4)
        assert state.min_response == pytest.approx(0.4)

    def test_ewma_smoothing(self):
        state = make_state()
        state.record_response(0.4, alpha=0.5)
        state.record_response(0.8, alpha=0.5)
        assert state.ewma_response == pytest.approx(0.6)

    def test_min_tracks_floor(self):
        state = make_state()
        for value in (0.5, 0.2, 0.9):
            state.record_response(value, alpha=0.25)
        assert state.min_response == pytest.approx(0.2)

    def test_negative_response_rejected(self):
        state = make_state()
        with pytest.raises(ValueError):
            state.record_response(-0.1, alpha=0.25)


class TestTable:
    def test_add_and_capacity(self):
        table = NeighborTable(capacity=2)
        table.add("1.0.0.1", now=0.0)
        table.add("1.0.0.2", now=0.0)
        assert table.is_full
        with pytest.raises(OverflowError):
            table.add("1.0.0.3", now=0.0)

    def test_add_idempotent(self):
        table = NeighborTable(capacity=2)
        first = table.add("1.0.0.1", now=0.0)
        again = table.add("1.0.0.1", now=5.0)
        assert first is again
        assert table.total_ever_connected == 1

    def test_remove(self):
        table = NeighborTable(capacity=2)
        table.add("1.0.0.1", now=0.0)
        removed = table.remove("1.0.0.1")
        assert removed is not None
        assert "1.0.0.1" not in table
        assert table.remove("1.0.0.1") is None

    def test_silent_since(self):
        table = NeighborTable(capacity=4)
        a = table.add("1.0.0.1", now=0.0)
        b = table.add("1.0.0.2", now=0.0)
        a.last_heard = 100.0
        b.last_heard = 5.0
        assert table.silent_since(50.0) == ["1.0.0.2"]

    def test_with_data_capacity(self):
        table = NeighborTable(capacity=4)
        a = table.add("1.0.0.1", now=0.0)
        b = table.add("1.0.0.2", now=0.0)
        a.inflight = 3
        available = table.with_data_capacity(per_neighbor_limit=3)
        assert [s.address for s in available] == ["1.0.0.2"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            NeighborTable(capacity=0)
