"""Checkpoint artifact format, store and corruption handling.

The resume contract is only as strong as its failure modes: every way a
checkpoint directory can be wrong — truncated file, flipped byte, schema
skew, mislabeled unit, foreign file, stale configuration — must raise a
clear :class:`CheckpointError` instead of resuming silently divergent.
This suite is the corruption matrix; the byte-identity of *successful*
resumes is proven in ``test_resume_determinism.py``.
"""

import dataclasses
import json
import os

import pytest

from repro.checkpoint import (SCHEMA_VERSION, CampaignCheckpointStore,
                              CheckpointError, CheckpointPolicy,
                              canonical_json, payload_digest,
                              read_artifact, write_artifact)
from repro.checkpoint.format import TMP_SUFFIX
from repro.faults import FaultSchedule, ServerOutage
from repro.workload.campaign import (CampaignConfig,
                                     campaign_config_digest)


# ----------------------------------------------------------------------
# Envelope format
# ----------------------------------------------------------------------
class TestArtifactFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.json"
        payload = {"day": 3, "locality": {"TELE": 78.50002925045902},
                   "nested": [1, 2.5, None, "x"]}
        write_artifact(path, "unit-test", payload)
        assert read_artifact(path, "unit-test") == payload

    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "f.json"
        values = [0.1 + 0.2, 1e-308, 74.97386921027905, 3.0]
        write_artifact(path, "unit-test", {"values": values})
        restored = read_artifact(path, "unit-test")["values"]
        assert all(a == b for a, b in zip(restored, values))

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) \
            == canonical_json({"a": 2, "b": 1})
        assert payload_digest({"b": 1, "a": 2}) \
            == payload_digest({"a": 2, "b": 1})

    def test_atomic_overwrite(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "unit-test", {"generation": 1})
        write_artifact(path, "unit-test", {"generation": 2})
        assert read_artifact(path, "unit-test") == {"generation": 2}
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(TMP_SUFFIX)]
        assert leftovers == []

    def test_unserialisable_payload_leaves_no_file(self, tmp_path):
        path = tmp_path / "bad.json"
        with pytest.raises(CheckpointError, match="unserialisable"):
            write_artifact(path, "unit-test", {"rng": object()})
        assert not path.exists()

    def test_nan_payload_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="unserialisable"):
            write_artifact(tmp_path / "nan.json", "unit-test",
                           {"value": float("nan")})


class TestArtifactCorruption:
    @pytest.fixture
    def artifact(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, "unit-test", {"day": 1, "value": 2.5})
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_artifact(tmp_path / "absent.json", "unit-test")

    def test_truncated_file(self, artifact):
        text = artifact.read_text()
        artifact.write_text(text[:len(text) // 2])
        with pytest.raises(CheckpointError,
                           match="truncated or malformed"):
            read_artifact(artifact, "unit-test")

    def test_empty_file(self, artifact):
        artifact.write_text("")
        with pytest.raises(CheckpointError,
                           match="truncated or malformed"):
            read_artifact(artifact, "unit-test")

    def test_non_object_envelope(self, artifact):
        artifact.write_text("[1,2,3]\n")
        with pytest.raises(CheckpointError, match="JSON object"):
            read_artifact(artifact, "unit-test")

    @pytest.mark.parametrize("field",
                             ["schema", "kind", "payload", "digest"])
    def test_missing_envelope_field(self, artifact, field):
        envelope = json.loads(artifact.read_text())
        del envelope[field]
        artifact.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match=f"missing '{field}'"):
            read_artifact(artifact, "unit-test")

    def test_schema_skew(self, artifact):
        envelope = json.loads(artifact.read_text())
        envelope["schema"] = SCHEMA_VERSION + 1
        artifact.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="schema skew"):
            read_artifact(artifact, "unit-test")

    def test_kind_mismatch(self, artifact):
        with pytest.raises(CheckpointError, match="kind mismatch"):
            read_artifact(artifact, "some-other-kind")

    def test_digest_mismatch_on_payload_edit(self, artifact):
        envelope = json.loads(artifact.read_text())
        envelope["payload"]["value"] = 99.0  # hand-edited, digest stale
        artifact.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            read_artifact(artifact, "unit-test")

    def test_non_object_payload(self, artifact):
        envelope = json.loads(artifact.read_text())
        envelope["payload"] = [1, 2]
        artifact.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="payload is not"):
            read_artifact(artifact, "unit-test")


# ----------------------------------------------------------------------
# Campaign store
# ----------------------------------------------------------------------
DIGEST = "d" * 64


def _store(tmp_path, digest=DIGEST, units=()):
    store = CampaignCheckpointStore(tmp_path / "ckpt")
    store.initialize(digest, seed=11, days=2, total_units=4)
    for key in units:
        store.write_unit(key, digest,
                         {"population": 10,
                          "locality_by_isp": {"TELE": 75.0},
                          "events_executed": 1000})
    return store


class TestCampaignStore:
    def test_manifest_round_trip(self, tmp_path):
        store = _store(tmp_path)
        manifest = store.load_manifest(DIGEST)
        assert manifest["seed"] == 11
        assert manifest["days"] == 2
        assert manifest["total_units"] == 4

    def test_missing_manifest(self, tmp_path):
        store = CampaignCheckpointStore(tmp_path / "nowhere")
        with pytest.raises(CheckpointError,
                           match="start one with --checkpoint"):
            store.load_manifest(DIGEST)

    def test_stale_config_manifest(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(CheckpointError,
                           match="different campaign configuration"):
            store.load_manifest("e" * 64)

    def test_units_iterate_sorted(self, tmp_path):
        store = _store(tmp_path, units=[("unpopular", 1), ("popular", 0),
                                        ("popular", 1)])
        keys = [key for key, _ in store.iter_units(DIGEST)]
        assert keys == [("popular", 0), ("popular", 1),
                        ("unpopular", 1)]

    def test_unit_payload_round_trip(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        units = store.load_units(DIGEST)
        payload = units[("popular", 0)]
        assert payload["locality_by_isp"] == {"TELE": 75.0}
        assert payload["events_executed"] == 1000

    def test_mislabeled_unit_file(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        os.rename(store.unit_path(("popular", 0)),
                  store.unit_path(("popular", 1)))
        with pytest.raises(CheckpointError, match="mislabeled"):
            store.load_units(DIGEST)

    def test_foreign_file_in_units_dir(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        (store.units_dir / "notes.json").write_text("{}")
        with pytest.raises(CheckpointError, match="unexpected file"):
            store.load_units(DIGEST)

    def test_stale_config_unit(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        store.write_unit(("popular", 1), "e" * 64,
                         {"population": 9,
                          "locality_by_isp": {}, "events_executed": 1})
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            store.load_units(DIGEST)

    def test_truncated_unit(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        path = store.unit_path(("popular", 0))
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError,
                           match="truncated or malformed"):
            store.load_units(DIGEST)

    def test_initialize_clears_stale_units(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0), ("unpopular", 0)])
        store.initialize("e" * 64, seed=12, days=2, total_units=4)
        assert store.load_units("e" * 64) == {}

    def test_tmp_files_are_ignored_by_scans(self, tmp_path):
        store = _store(tmp_path, units=[("popular", 0)])
        (store.units_dir / f"popular-0001.json{TMP_SUFFIX}") \
            .write_text("torn")
        assert list(store.load_units(DIGEST)) == [("popular", 0)]


# ----------------------------------------------------------------------
# Policy and config digests
# ----------------------------------------------------------------------
class TestCheckpointPolicy:
    def test_defaults(self):
        policy = CheckpointPolicy(path="x")
        assert policy.every == 1 and not policy.resume

    @pytest.mark.parametrize("every", [0, -1])
    def test_rejects_non_positive_every(self, every):
        with pytest.raises(ValueError, match="checkpoint-every"):
            CheckpointPolicy(path="x", every=every)


class TestCampaignConfigDigest:
    def test_stable_across_equal_configs(self):
        assert campaign_config_digest(CampaignConfig()) \
            == campaign_config_digest(CampaignConfig())

    @pytest.mark.parametrize("change", [
        {"seed": 12}, {"days": 27}, {"popular_population": 91},
        {"session_duration": 901.0}, {"warmup": 100.0},
        {"audience_noise_sigma": 0.21},
        {"probe_isps": ("ChinaNetcom",)},
    ])
    def test_sensitive_to_result_affecting_knobs(self, change):
        base = campaign_config_digest(CampaignConfig())
        changed = campaign_config_digest(CampaignConfig(**change))
        assert changed != base

    def test_sensitive_to_fault_schedule(self):
        base = campaign_config_digest(CampaignConfig())
        schedule = FaultSchedule(events=(
            ServerOutage(target="bootstrap", start=10.0, duration=10.0),))
        faulted = campaign_config_digest(CampaignConfig(faults=schedule))
        assert faulted != base

    def test_instrumentation_is_excluded(self):
        from repro.obs import Instrumentation
        plain = campaign_config_digest(CampaignConfig())
        instrumented = campaign_config_digest(
            CampaignConfig(instrumentation=Instrumentation()))
        assert instrumented == plain
