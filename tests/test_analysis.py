"""Tests for the trace-analysis layer (locality, response, contributions,
RTT), using hand-built traces so expected numbers are exact."""

import pytest

from repro.analysis import (analyze_contributions, analyze_requests_vs_rtt,
                            bytes_by_isp, data_response_series,
                            fastest_group, locality_breakdown,
                            peerlist_response_series, requests_per_peer,
                            returned_by_source, returned_peer_counts,
                            rtt_estimates, traffic_locality,
                            transmissions_by_isp, unique_listed_peers)
from repro.capture.matching import DataTransaction, PeerListTransaction
from repro.capture.records import Direction, PacketRecord
from repro.capture.store import TraceStore
from repro.network.addressing import AddressAllocator
from repro.network.asn import AsnDirectory
from repro.network.isp import ISPCategory, ResponseGroup, \
    default_isp_catalog
from repro.protocol import messages as m
from repro.protocol.wire import wire_size


@pytest.fixture(scope="module")
def world():
    catalog = default_isp_catalog()
    allocator = AddressAllocator(catalog)
    directory = AsnDirectory(catalog, allocator)
    addresses = {
        "tele1": allocator.allocate(catalog.by_name("ChinaTelecom")),
        "tele2": allocator.allocate(catalog.by_name("ChinaTelecom")),
        "probe": allocator.allocate(catalog.by_name("ChinaTelecom")),
        "cnc1": allocator.allocate(catalog.by_name("ChinaNetcom")),
        "cer1": allocator.allocate(catalog.by_name("CERNET")),
        "us1": allocator.allocate(catalog.by_name("Comcast")),
    }
    return directory, addresses


def txn(remote, chunk=0, t0=1.0, dt=0.5, nbytes=1000):
    return DataTransaction(remote=remote, chunk=chunk, first=0, last=3,
                           request_time=t0, reply_time=t0 + dt,
                           payload_bytes=nbytes)


class TestLocalityAccounting:
    def test_transmissions_and_bytes_by_isp(self, world):
        directory, a = world
        txns = [txn(a["tele1"], nbytes=100), txn(a["tele1"], nbytes=200),
                txn(a["cnc1"], nbytes=300), txn(a["us1"], nbytes=400)]
        tx = transmissions_by_isp(txns, directory)
        assert tx[ISPCategory.TELE] == 2
        assert tx[ISPCategory.CNC] == 1
        by = bytes_by_isp(txns, directory)
        assert by[ISPCategory.TELE] == 300
        assert by[ISPCategory.FOREIGN] == 400

    def test_infrastructure_excluded(self, world):
        directory, a = world
        txns = [txn(a["tele1"], nbytes=100), txn(a["tele2"], nbytes=900)]
        by = bytes_by_isp(txns, directory,
                          infrastructure=frozenset([a["tele2"]]))
        assert by[ISPCategory.TELE] == 100

    def test_traffic_locality(self, world):
        directory, a = world
        txns = [txn(a["tele1"], nbytes=850), txn(a["cnc1"], nbytes=150)]
        locality = traffic_locality(txns, directory, ISPCategory.TELE)
        assert locality == pytest.approx(0.85)

    def test_traffic_locality_empty(self, world):
        directory, _a = world
        assert traffic_locality([], directory, ISPCategory.TELE) == 0.0


def make_trace(probe, records):
    store = TraceStore(probe)
    for r in records:
        store.append(r)
    return store


def incoming(t, src, dst, payload):
    return PacketRecord(time=t, direction=Direction.IN, src=src, dst=dst,
                        msg_type=type(payload).__name__,
                        wire_bytes=wire_size(payload), packet_id=0,
                        payload=payload)


class TestReturnedLists:
    def test_counts_with_duplicates(self, world):
        directory, a = world
        trace = make_trace(a["probe"], [
            incoming(1.0, a["tele1"], a["probe"],
                     m.PeerListReply(peers=(a["tele2"], a["cnc1"],
                                            a["tele2"]))),
            incoming(2.0, a["cnc1"], a["probe"],
                     m.TrackerReply(peers=(a["tele2"], a["us1"]))),
        ])
        counts = returned_peer_counts(trace, directory)
        assert counts[ISPCategory.TELE] == 3  # duplicates count
        assert counts[ISPCategory.CNC] == 1
        assert counts[ISPCategory.FOREIGN] == 1
        assert len(unique_listed_peers(trace)) == 3

    def test_by_source_buckets(self, world):
        directory, a = world
        trace = make_trace(a["probe"], [
            incoming(1.0, a["tele1"], a["probe"],
                     m.PeerListReply(peers=(a["tele2"],))),
            incoming(2.0, a["cnc1"], a["probe"],
                     m.TrackerReply(peers=(a["cnc1"], a["tele1"]))),
            incoming(3.0, a["us1"], a["probe"],
                     m.PeerListReply(peers=(a["us1"],))),
        ])
        buckets = returned_by_source(trace, directory)
        assert buckets["TELE_p"][ISPCategory.TELE] == 1
        assert buckets["CNC_s"][ISPCategory.CNC] == 1
        assert buckets["CNC_s"][ISPCategory.TELE] == 1
        assert buckets["OTHER_p"][ISPCategory.FOREIGN] == 1
        assert sum(buckets["TELE_s"].values()) == 0


class TestResponseSeries:
    def test_grouping_and_averages(self, world):
        directory, a = world
        txns = [
            PeerListTransaction(remote=a["tele1"], request_time=1.0,
                                reply_time=1.2, peers=()),
            PeerListTransaction(remote=a["tele2"], request_time=2.0,
                                reply_time=2.6, peers=()),
            PeerListTransaction(remote=a["cnc1"], request_time=3.0,
                                reply_time=4.0, peers=()),
            PeerListTransaction(remote=a["us1"], request_time=4.0,
                                reply_time=4.1, peers=()),
            PeerListTransaction(remote=a["cer1"], request_time=5.0,
                                reply_time=5.3, peers=()),
        ]
        series = peerlist_response_series(txns, directory)
        assert series[ResponseGroup.TELE].average == pytest.approx(0.4)
        assert series[ResponseGroup.CNC].average == pytest.approx(1.0)
        # OTHER merges Foreign and CER.
        assert series[ResponseGroup.OTHER].count == 2
        assert series[ResponseGroup.OTHER].average == pytest.approx(0.2)
        assert fastest_group(series) is ResponseGroup.OTHER

    def test_clipping_for_display(self, world):
        directory, a = world
        txns = [
            PeerListTransaction(remote=a["tele1"], request_time=0.0,
                                reply_time=5.0, peers=()),
            PeerListTransaction(remote=a["tele1"], request_time=1.0,
                                reply_time=1.5, peers=()),
        ]
        series = peerlist_response_series(txns, directory)
        tele = series[ResponseGroup.TELE]
        # Average includes everything; the plotted view clips at 3 s.
        assert tele.average == pytest.approx(2.75)
        assert tele.clipped() == [0.5]

    def test_data_series_same_grouping(self, world):
        directory, a = world
        txns = [txn(a["tele1"], dt=0.4), txn(a["us1"], dt=0.8)]
        series = data_response_series(txns, directory)
        assert series[ResponseGroup.TELE].average == pytest.approx(0.4)
        assert series[ResponseGroup.OTHER].average == pytest.approx(0.8)

    def test_empty_series_average_none(self, world):
        directory, _a = world
        series = data_response_series([], directory)
        assert all(s.average is None for s in series.values())
        assert fastest_group(series) is None


class TestContributions:
    def test_requests_and_unique_peers(self, world):
        directory, a = world
        txns = ([txn(a["tele1"])] * 5 + [txn(a["tele2"])] * 3
                + [txn(a["cnc1"])] * 2)
        counts = requests_per_peer(txns)
        assert counts == {a["tele1"]: 5, a["tele2"]: 3, a["cnc1"]: 2}
        analysis = analyze_contributions(txns, directory)
        assert analysis.connected_unique == 3
        assert analysis.connected_by_isp[ISPCategory.TELE] == 2

    def test_top10_shares(self, world):
        directory, a = world
        # 10 peers; the top one does most of the work.
        remotes = [a["tele1"]] * 60
        others = [a["tele2"], a["cnc1"], a["cer1"], a["us1"]]
        txns = [txn(r, nbytes=1000) for r in remotes]
        for other in others:
            txns.extend(txn(other, nbytes=1000) for _ in range(5))
        analysis = analyze_contributions(txns, directory)
        assert analysis.top10_byte_share == pytest.approx(
            60.0 / (60 + 20), abs=1e-6)

    def test_fits_present_when_enough_peers(self, world):
        directory, a = world
        txns = []
        for index, remote in enumerate([a["tele1"], a["tele2"], a["cnc1"],
                                        a["cer1"], a["us1"]]):
            txns.extend(txn(remote) for _ in range(50 // (index + 1)))
        analysis = analyze_contributions(txns, directory)
        assert analysis.se_fit is not None
        assert analysis.zipf_fit is not None
        assert analysis.contribution_curve is not None


class TestRtt:
    def test_min_is_the_estimate(self, world):
        directory, a = world
        txns = [txn(a["tele1"], dt=0.9), txn(a["tele1"], dt=0.3),
                txn(a["tele1"], dt=0.5)]
        estimates = rtt_estimates(txns)
        assert estimates[a["tele1"]] == pytest.approx(0.3)

    def test_negative_correlation_when_busy_peers_are_near(self, world):
        directory, a = world
        txns = []
        # tele1: many requests, small RTT; us1: few requests, large RTT.
        txns.extend(txn(a["tele1"], dt=0.1) for _ in range(50))
        txns.extend(txn(a["tele2"], dt=0.3) for _ in range(10))
        txns.extend(txn(a["us1"], dt=0.9) for _ in range(2))
        analysis = analyze_requests_vs_rtt(txns)
        assert analysis.correlation is not None
        assert analysis.correlation < -0.9
        assert analysis.peers[0] == a["tele1"]

    def test_trend_positive_slope(self, world):
        directory, a = world
        txns = []
        txns.extend(txn(a["tele1"], dt=0.1) for _ in range(30))
        txns.extend(txn(a["cnc1"], dt=0.5) for _ in range(10))
        txns.extend(txn(a["us1"], dt=1.2) for _ in range(3))
        analysis = analyze_requests_vs_rtt(txns)
        # RTT grows with rank (rank 1 = most requested = nearest).
        assert analysis.rtt_trend.slope > 0


class TestBreakdown:
    def test_locality_breakdown_end_to_end(self, world):
        directory, a = world
        trace = make_trace(a["probe"], [
            incoming(1.0, a["tele1"], a["probe"],
                     m.PeerListReply(peers=(a["tele2"], a["cnc1"]))),
        ])
        txns = [txn(a["tele1"], nbytes=900), txn(a["cnc1"], nbytes=100)]
        breakdown = locality_breakdown(trace, txns, directory)
        assert breakdown.probe_category is ISPCategory.TELE
        assert breakdown.locality == pytest.approx(0.9)
        assert breakdown.unique_listed == 2
        assert breakdown.returned_total == 2
