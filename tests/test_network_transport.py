"""Unit tests for the uplink queue and UDP transport."""

import pytest

from repro.network.bandwidth import (ADSL, SERVER, AccessProfile,
                                     UplinkQueue)
from repro.network.builder import build_internet
from repro.network.transport import Host
from repro.sim import Simulator


class Echo(Host):
    """Test host that records everything it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_datagram(self, datagram):
        self.received.append(datagram)


def make_pair(seed=0, profile=SERVER):
    sim = Simulator(seed=seed)
    internet = build_internet(sim)
    tele = internet.catalog.by_name("ChinaTelecom")
    a = Echo(sim, internet.udp, internet.allocator.allocate(tele), tele,
             profile)
    b = Echo(sim, internet.udp, internet.allocator.allocate(tele), tele,
             profile)
    a.go_online()
    b.go_online()
    return sim, internet, a, b


class TestUplinkQueue:
    def test_serialisation_delay(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6))
        delay = queue.enqueue(125_000, now=0.0)  # 1 second at 1 Mbit/s
        assert delay == pytest.approx(1.0)

    def test_fifo_backlog_accumulates(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=10.0))
        first = queue.enqueue(125_000, now=0.0)
        second = queue.enqueue(125_000, now=0.0)
        assert second == pytest.approx(first + 1.0)

    def test_backlog_drains_over_time(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6))
        queue.enqueue(125_000, now=0.0)
        assert queue.backlog(0.5) == pytest.approx(0.5)
        assert queue.backlog(2.0) == 0.0

    def test_tail_drop_when_over_backlog(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=1.5))
        queue.enqueue(125_000, now=0.0)
        queue.enqueue(125_000, now=0.0)
        # Backlog is now 2.0 s > 1.5 s: next datagram is dropped.
        assert queue.enqueue(1000, now=0.0) is None
        assert queue.datagrams_dropped == 1

    def test_negative_size_rejected(self):
        queue = UplinkQueue(ADSL)
        with pytest.raises(ValueError):
            queue.enqueue(-1, now=0.0)

    def test_utilization_hint_bounded(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=1.0))
        queue.enqueue(250_000, now=0.0)
        assert queue.utilization_hint(0.0) == 1.0

    def test_reset_clears_backlog(self):
        queue = UplinkQueue(ADSL)
        queue.enqueue(100_000, now=0.0)
        queue.reset(now=0.0)
        assert queue.backlog(0.0) == 0.0


class TestTransport:
    def test_delivery(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "hello", payload_bytes=100)
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].payload == "hello"
        assert b.received[0].src == a.address

    def test_delivery_takes_time(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert sim.now > 0.0

    def test_offline_destination_drops(self):
        sim, internet, a, b = make_pair()
        b.go_offline()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert b.received == []
        assert internet.udp.datagrams_dropped_offline == 1

    def test_departure_mid_flight_drops(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "x", payload_bytes=100)
        b.go_offline()  # packet already in flight
        sim.run()
        assert b.received == []

    def test_duplicate_address_registration_rejected(self):
        sim, internet, a, b = make_pair()
        tele = internet.catalog.by_name("ChinaTelecom")
        clone = Echo(sim, internet.udp, a.address, tele, SERVER)
        with pytest.raises(ValueError):
            clone.go_online()

    def test_uplink_drop_returns_false(self):
        profile = AccessProfile("tiny", 1e6, 1000.0, max_backlog=0.001)
        sim, internet, a, b = make_pair(profile=profile)
        assert a.send(b.address, "1", payload_bytes=10_000) is True
        # The first send saturated the uplink way past the backlog cap.
        assert a.send(b.address, "2", payload_bytes=10_000) is False

    def test_taps_observe_send_and_recv(self):
        sim, internet, a, b = make_pair()
        events = []
        internet.udp.add_tap(lambda e, d, t: events.append((e, d.src, t)))
        a.send(b.address, "x", payload_bytes=10)
        sim.run()
        kinds = [e for e, _src, _t in events]
        assert kinds == ["send", "recv"]

    def test_tap_removal(self):
        sim, internet, a, b = make_pair()
        events = []
        tap = lambda e, d, t: events.append(e)
        internet.udp.add_tap(tap)
        internet.udp.remove_tap(tap)
        a.send(b.address, "x", payload_bytes=10)
        sim.run()
        assert events == []

    def test_counters(self):
        sim, internet, a, b = make_pair()
        for _ in range(5):
            a.send(b.address, "x", payload_bytes=10)
        sim.run()
        udp = internet.udp
        assert udp.datagrams_sent == 5
        assert udp.datagrams_delivered + udp.datagrams_lost == 5

    def test_online_count(self):
        sim, internet, a, b = make_pair()
        base = internet.udp.online_count
        b.go_offline()
        assert internet.udp.online_count == base - 1
