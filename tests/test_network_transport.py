"""Unit tests for the uplink queue and UDP transport."""

import pytest

from repro.network.bandwidth import (ADSL, SERVER, AccessProfile,
                                     UplinkQueue)
from repro.network.builder import build_internet
from repro.network.datagram import HEADER_BYTES
from repro.network.transport import Host
from repro.sim import Simulator


class Echo(Host):
    """Test host that records everything it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_datagram(self, datagram):
        self.received.append(datagram)


def make_pair(seed=0, profile=SERVER):
    sim = Simulator(seed=seed)
    internet = build_internet(sim)
    tele = internet.catalog.by_name("ChinaTelecom")
    a = Echo(sim, internet.udp, internet.allocator.allocate(tele), tele,
             profile)
    b = Echo(sim, internet.udp, internet.allocator.allocate(tele), tele,
             profile)
    a.go_online()
    b.go_online()
    return sim, internet, a, b


class TestUplinkQueue:
    def test_serialisation_delay(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6))
        delay = queue.enqueue(125_000, now=0.0)  # 1 second at 1 Mbit/s
        assert delay == pytest.approx(1.0)

    def test_fifo_backlog_accumulates(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=10.0))
        first = queue.enqueue(125_000, now=0.0)
        second = queue.enqueue(125_000, now=0.0)
        assert second == pytest.approx(first + 1.0)

    def test_backlog_drains_over_time(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6))
        queue.enqueue(125_000, now=0.0)
        assert queue.backlog(0.5) == pytest.approx(0.5)
        assert queue.backlog(2.0) == 0.0

    def test_tail_drop_when_over_backlog(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=1.5))
        queue.enqueue(125_000, now=0.0)
        queue.enqueue(125_000, now=0.0)
        # Backlog is now 2.0 s > 1.5 s: next datagram is dropped.
        assert queue.enqueue(1000, now=0.0) is None
        assert queue.datagrams_dropped == 1

    def test_negative_size_rejected(self):
        queue = UplinkQueue(ADSL)
        with pytest.raises(ValueError):
            queue.enqueue(-1, now=0.0)

    def test_utilization_hint_bounded(self):
        queue = UplinkQueue(AccessProfile("t", 1e6, 1e6, max_backlog=1.0))
        queue.enqueue(250_000, now=0.0)
        assert queue.utilization_hint(0.0) == 1.0

    def test_reset_clears_backlog(self):
        queue = UplinkQueue(ADSL)
        queue.enqueue(100_000, now=0.0)
        queue.reset(now=0.0)
        assert queue.backlog(0.0) == 0.0


class TestTransport:
    def test_delivery(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "hello", payload_bytes=100)
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].payload == "hello"
        assert b.received[0].src == a.address

    def test_delivery_takes_time(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert sim.now > 0.0

    def test_offline_destination_drops(self):
        sim, internet, a, b = make_pair()
        b.go_offline()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert b.received == []
        assert internet.udp.datagrams_dropped_offline == 1

    def test_departure_mid_flight_drops(self):
        sim, internet, a, b = make_pair()
        a.send(b.address, "x", payload_bytes=100)
        b.go_offline()  # packet already in flight
        sim.run()
        assert b.received == []

    def test_duplicate_address_registration_rejected(self):
        sim, internet, a, b = make_pair()
        tele = internet.catalog.by_name("ChinaTelecom")
        clone = Echo(sim, internet.udp, a.address, tele, SERVER)
        with pytest.raises(ValueError):
            clone.go_online()

    def test_uplink_drop_returns_false(self):
        profile = AccessProfile("tiny", 1e6, 1000.0, max_backlog=0.001)
        sim, internet, a, b = make_pair(profile=profile)
        assert a.send(b.address, "1", payload_bytes=10_000) is True
        # The first send saturated the uplink way past the backlog cap.
        assert a.send(b.address, "2", payload_bytes=10_000) is False

    def test_taps_observe_send_and_recv(self):
        sim, internet, a, b = make_pair()
        events = []
        internet.udp.add_tap(lambda e, d, t: events.append((e, d.src, t)))
        a.send(b.address, "x", payload_bytes=10)
        sim.run()
        kinds = [e for e, _src, _t in events]
        assert kinds == ["send", "recv"]

    def test_tap_removal(self):
        sim, internet, a, b = make_pair()
        events = []
        tap = lambda e, d, t: events.append(e)
        internet.udp.add_tap(tap)
        internet.udp.remove_tap(tap)
        a.send(b.address, "x", payload_bytes=10)
        sim.run()
        assert events == []

    def test_duplicate_add_tap_rejected(self):
        sim, internet, a, b = make_pair()
        tap = lambda e, d, t: None
        internet.udp.add_tap(tap)
        with pytest.raises(ValueError, match="already registered"):
            internet.udp.add_tap(tap)
        # The failed add must not have registered a second copy.
        assert internet.udp._taps == [tap]

    def test_remove_unregistered_tap_rejected(self):
        sim, internet, a, b = make_pair()
        with pytest.raises(ValueError, match="not registered"):
            internet.udp.remove_tap(lambda e, d, t: None)

    def test_remove_tap_twice_rejected(self):
        sim, internet, a, b = make_pair()
        tap = lambda e, d, t: None
        internet.udp.add_tap(tap)
        internet.udp.remove_tap(tap)
        with pytest.raises(ValueError, match="not registered"):
            internet.udp.remove_tap(tap)

    def test_bound_method_tap_round_trips(self):
        # Bound methods compare by (__self__, __func__): ledger.tap-style
        # registration must add/detect/remove cleanly even though each
        # attribute access builds a fresh bound-method object.
        sim, internet, a, b = make_pair()

        class Sink:
            def tap(self, event, datagram, time):
                pass

        sink = Sink()
        internet.udp.add_tap(sink.tap)
        with pytest.raises(ValueError, match="already registered"):
            internet.udp.add_tap(sink.tap)
        internet.udp.remove_tap(sink.tap)
        assert internet.udp._taps == []

    def test_removing_last_tap_mid_run_restores_fast_path(self):
        sim, internet, a, b = make_pair()
        events = []
        tap = lambda e, d, t: events.append(e)
        internet.udp.add_tap(tap)

        a.send(b.address, "1", payload_bytes=10)
        sim.call_after(5.0, lambda: internet.udp.remove_tap(tap),
                       label="detach")
        sim.call_after(10.0, lambda: a.send(b.address, "2",
                                            payload_bytes=10),
                       label="late-send")
        sim.run()
        # Only the first datagram was observed; after mid-run removal the
        # tap list is empty again so send/_deliver take the no-tap branch.
        assert events == ["send", "recv"]
        assert internet.udp._taps == []
        assert len(b.received) == 2

    def test_tap_event_filter_limits_dispatch(self):
        sim, internet, a, b = make_pair()
        recv_only, everything = [], []
        internet.udp.add_tap(lambda e, d, t: recv_only.append(e),
                             events=("recv",))
        internet.udp.add_tap(lambda e, d, t: everything.append(e))
        a.send(b.address, "x", payload_bytes=10)
        sim.run()
        assert recv_only == ["recv"]
        assert everything == ["send", "recv"]

    def test_tap_filter_covers_drop_events(self):
        sim, internet, a, b = make_pair()
        drops, recvs = [], []
        internet.udp.add_tap(lambda e, d, t: drops.append(e),
                             events=("drop_uplink", "drop_loss",
                                     "drop_fault"))
        internet.udp.add_tap(lambda e, d, t: recvs.append(e),
                             events=("recv",))
        b.go_offline()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        # Offline destination is a silent counter, not a tap event, so
        # neither tap fires — but the filtered lists stayed disjoint.
        assert recvs == []
        assert drops == []

    def test_unknown_tap_event_rejected(self):
        sim, internet, a, b = make_pair()
        with pytest.raises(ValueError, match="unknown tap event"):
            internet.udp.add_tap(lambda e, d, t: None,
                                 events=("recv", "deliver"))
        assert internet.udp._taps == []

    def test_flow_sink_sees_deliveries_with_wire_bytes(self):
        sim, internet, a, b = make_pair()
        seen = []
        internet.udp.set_flow_sink(
            lambda d, now, wire: seen.append((d.dst, now, wire)))
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert len(seen) == 1
        dst, now, wire = seen[0]
        assert dst == b.address
        assert wire == 100 + HEADER_BYTES
        assert now == pytest.approx(sim.now)

    def test_flow_sink_not_called_for_drops(self):
        sim, internet, a, b = make_pair()
        seen = []
        internet.udp.set_flow_sink(lambda d, now, wire: seen.append(d))
        b.go_offline()
        a.send(b.address, "x", payload_bytes=100)
        sim.run()
        assert seen == []
        assert internet.udp.datagrams_dropped_offline == 1

    def test_flow_sink_single_consumer(self):
        sim, internet, a, b = make_pair()
        internet.udp.set_flow_sink(lambda d, now, wire: None)
        with pytest.raises(ValueError, match="already installed"):
            internet.udp.set_flow_sink(lambda d, now, wire: None)
        internet.udp.clear_flow_sink()
        assert internet.udp._flow_sink is None
        # A cleared slot accepts a fresh sink.
        internet.udp.set_flow_sink(lambda d, now, wire: None)

    def test_clear_flow_sink_restores_fast_path_mid_run(self):
        sim, internet, a, b = make_pair()
        seen = []
        internet.udp.set_flow_sink(lambda d, now, wire: seen.append(d))
        a.send(b.address, "1", payload_bytes=10)
        sim.call_after(5.0, internet.udp.clear_flow_sink,
                       label="detach-sink")
        sim.call_after(10.0, lambda: a.send(b.address, "2",
                                            payload_bytes=10),
                       label="late-send")
        sim.run()
        assert len(seen) == 1
        assert internet.udp._flow_sink is None
        assert len(b.received) == 2

    def test_counters(self):
        sim, internet, a, b = make_pair()
        for _ in range(5):
            a.send(b.address, "x", payload_bytes=10)
        sim.run()
        udp = internet.udp
        assert udp.datagrams_sent == 5
        assert udp.datagrams_delivered + udp.datagrams_lost == 5

    def test_online_count(self):
        sim, internet, a, b = make_pair()
        base = internet.udp.online_count
        b.go_offline()
        assert internet.udp.online_count == base - 1
