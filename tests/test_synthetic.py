"""Tests for the synthetic workload generator.

The generated sessions must preserve the statistical properties the
paper's characterization reports: stretched-exponential request ranks,
top-10% concentration, and the negative requests-vs-RTT correlation.
"""

import math
import random

import pytest

from repro.analysis.contributions import requests_per_peer
from repro.analysis.rtt import analyze_requests_vs_rtt
from repro.capture.matching import DataTransaction
from repro.network.addressing import AddressAllocator
from repro.network.asn import AsnDirectory
from repro.network.isp import ISPCategory, default_isp_catalog
from repro.stats import (fit_stretched_exponential, fit_zipf,
                         top_fraction_share)
from repro.workload.synthetic import (SyntheticWorkloadModel,
                                      synthetic_category_of)


@pytest.fixture(scope="module")
def fitted_model():
    """A model fitted to a hand-made SE-shaped set of transactions."""
    catalog = default_isp_catalog()
    allocator = AddressAllocator(catalog)
    directory = AsnDirectory(catalog, allocator)
    rng = random.Random(12)

    transactions = []
    n = 60
    c, a = 0.35, 5.0
    b = 1.0 + a * math.log(n)
    for rank in range(1, n + 1):
        count = max(1, int((b - a * math.log(rank)) ** (1.0 / c)))
        isp_name = "ChinaTelecom" if rank % 3 else "ChinaNetcom"
        address = allocator.allocate(catalog.by_name(isp_name))
        # RTT grows with rank plus noise (the paper's structure).
        rtt = 0.05 * math.exp(0.02 * rank) * rng.lognormvariate(0.0, 0.1)
        for i in range(count):
            start = rng.uniform(0.0, 1800.0)
            transactions.append(DataTransaction(
                remote=address, chunk=i, first=0, last=9,
                request_time=start, reply_time=start + rtt,
                payload_bytes=13_800))
    model = SyntheticWorkloadModel.from_transactions(
        transactions, directory)
    return model


class TestFitting:
    def test_model_parameters_sane(self, fitted_model):
        model = fitted_model
        assert 0.1 <= model.se_fit.c <= 1.0
        assert model.n_peers == 60
        assert model.bytes_per_transaction == pytest.approx(13_800)
        assert model.rtt_trend.slope > 0  # RTT grows with rank
        total_share = sum(model.isp_shares.values())
        assert total_share == pytest.approx(1.0)

    def test_too_few_peers_rejected(self):
        catalog = default_isp_catalog()
        allocator = AddressAllocator(catalog)
        directory = AsnDirectory(catalog, allocator)
        address = allocator.allocate(catalog.by_name("ChinaTelecom"))
        transactions = [DataTransaction(
            remote=address, chunk=0, first=0, last=0,
            request_time=0.0, reply_time=0.1, payload_bytes=10)]
        with pytest.raises(ValueError):
            SyntheticWorkloadModel.from_transactions(transactions,
                                                     directory)


class TestGeneration:
    def test_counts_follow_se_not_zipf(self, fitted_model):
        rng = random.Random(3)
        transactions = fitted_model.generate(rng, n_peers=80)
        counts = sorted(requests_per_peer(transactions).values(),
                        reverse=True)
        se = fit_stretched_exponential(counts)
        zipf = fit_zipf(counts)
        assert se.r_squared > 0.97
        assert se.r_squared >= zipf.r_squared

    def test_concentration_preserved(self, fitted_model):
        rng = random.Random(4)
        transactions = fitted_model.generate(rng, n_peers=80)
        counts = list(requests_per_peer(transactions).values())
        assert top_fraction_share(counts, 0.10) > 0.3

    def test_rtt_anticorrelation(self, fitted_model):
        rng = random.Random(5)
        transactions = fitted_model.generate(rng, n_peers=80)
        analysis = analyze_requests_vs_rtt(transactions)
        assert analysis.correlation is not None
        assert analysis.correlation < -0.3

    def test_addresses_carry_category(self, fitted_model):
        rng = random.Random(6)
        transactions = fitted_model.generate(rng, n_peers=20)
        categories = {synthetic_category_of(t.remote)
                      for t in transactions}
        assert None not in categories
        assert categories <= set(ISPCategory)

    def test_duration_respected(self, fitted_model):
        rng = random.Random(7)
        transactions = fitted_model.generate(rng, duration=100.0)
        assert all(0.0 <= t.request_time <= 100.0 for t in transactions)
        # Sorted by request time for stream-like consumption.
        times = [t.request_time for t in transactions]
        assert times == sorted(times)

    def test_bad_population_rejected(self, fitted_model):
        with pytest.raises(ValueError):
            fitted_model.generate(random.Random(1), n_peers=0)


class TestCategoryLabels:
    def test_round_trip(self):
        assert synthetic_category_of("se-TELE-1") is ISPCategory.TELE
        assert synthetic_category_of("se-Foreign-9") is ISPCategory.FOREIGN

    def test_garbage_is_none(self):
        assert synthetic_category_of("1.2.3.4") is None
        assert synthetic_category_of("se-???-1") is None


class TestEndToEnd:
    def test_fit_from_simulated_session(self):
        from repro.workload import ScenarioConfig, run_session
        result = run_session(ScenarioConfig(seed=31, population=25,
                                            duration=360.0, warmup=140.0))
        model = SyntheticWorkloadModel.from_session(result)
        rng = random.Random(8)
        synthetic = model.generate(rng)
        assert len(synthetic) > 0
        counts = requests_per_peer(synthetic)
        assert len(counts) == model.n_peers
