"""Unit tests for address allocation and the IP->ASN directory."""

import ipaddress

import pytest

from repro.network.addressing import (AddressAllocator,
                                      AddressExhaustedError)
from repro.network.asn import AsnDirectory
from repro.network.isp import ISPCategory, default_isp_catalog


@pytest.fixture
def catalog():
    return default_isp_catalog()


@pytest.fixture
def allocator(catalog):
    return AddressAllocator(catalog, blocks_per_isp=2)


class TestAllocation:
    def test_addresses_unique(self, catalog, allocator):
        tele = catalog.by_name("ChinaTelecom")
        cnc = catalog.by_name("ChinaNetcom")
        addresses = {allocator.allocate(tele) for _ in range(100)}
        addresses |= {allocator.allocate(cnc) for _ in range(100)}
        assert len(addresses) == 200

    def test_address_within_isp_prefix(self, catalog, allocator):
        tele = catalog.by_name("ChinaTelecom")
        address = allocator.allocate(tele)
        prefixes = allocator.prefixes_of(tele)
        assert any(address in p for p in prefixes)

    def test_prefixes_do_not_overlap(self, allocator):
        networks = [p.network for p in allocator.all_prefixes()]
        for i, a in enumerate(networks):
            for b in networks[i + 1:]:
                assert not a.overlaps(b), f"{a} overlaps {b}"

    def test_allocation_record(self, catalog, allocator):
        tele = catalog.by_name("ChinaTelecom")
        address = allocator.allocate(tele)
        assert allocator.asn_of(address) == tele.asn
        assert address in allocator

    def test_unknown_address_raises(self, allocator):
        with pytest.raises(KeyError):
            allocator.asn_of("9.9.9.9")

    def test_exhaustion(self, catalog):
        allocator = AddressAllocator(catalog, blocks_per_isp=1)
        tele = catalog.by_name("ChinaTelecom")
        capacity = allocator.capacity(tele)
        # Drain the space (2^16 - 1 addresses) and expect failure after.
        for _ in range(capacity):
            allocator.allocate(tele)
        with pytest.raises(AddressExhaustedError):
            allocator.allocate(tele)

    def test_blocks_per_isp_validated(self, catalog):
        with pytest.raises(ValueError):
            AddressAllocator(catalog, blocks_per_isp=0)

    def test_network_address_never_assigned(self, catalog, allocator):
        tele = catalog.by_name("ChinaTelecom")
        first = allocator.allocate(tele)
        network = allocator.prefixes_of(tele)[0].network
        assert ipaddress.IPv4Address(first) != network.network_address


class TestDirectory:
    def test_lookup_matches_allocation(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        for isp in catalog:
            address = allocator.allocate(isp)
            record = directory.lookup(address)
            assert record is not None
            assert record.asn == isp.asn
            assert record.category is isp.category

    def test_unallocated_but_in_prefix_resolves(self, catalog, allocator):
        # The directory does longest-prefix matching over CIDR blocks, so
        # any address inside an owned block resolves, allocated or not.
        directory = AsnDirectory(catalog, allocator)
        tele = catalog.by_name("ChinaTelecom")
        network = allocator.prefixes_of(tele)[0].network
        inside = str(network.network_address + 12345)
        record = directory.lookup(inside)
        assert record is not None and record.asn == tele.asn

    def test_outside_any_prefix_returns_none(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        assert directory.lookup("0.0.0.1") is None
        assert directory.lookup("255.255.255.254") is None

    def test_garbage_address_returns_none(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        assert directory.lookup("not-an-ip") is None

    def test_category_shortcut(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        cer = catalog.by_name("CERNET")
        address = allocator.allocate(cer)
        assert directory.category_of(address) is ISPCategory.CER

    def test_bulk_lookup(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        tele = catalog.by_name("ChinaTelecom")
        addresses = [allocator.allocate(tele) for _ in range(5)]
        records = directory.bulk_lookup(addresses)
        assert all(r is not None and r.asn == tele.asn for r in records)

    def test_caching_counts_lookups(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        tele = catalog.by_name("ChinaTelecom")
        address = allocator.allocate(tele)
        directory.lookup(address)
        directory.lookup(address)
        assert directory.lookups_served == 2

    def test_whois_line_format(self, catalog, allocator):
        directory = AsnDirectory(catalog, allocator)
        tele = catalog.by_name("ChinaTelecom")
        address = allocator.allocate(tele)
        line = directory.lookup(address).as_whois_line()
        assert str(tele.asn) in line
        assert address in line
        assert "CN" in line
