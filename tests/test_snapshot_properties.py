"""Hypothesis round-trips for the snapshot/restore layer.

Everything the checkpoint/resume machinery relies on reduces to one
property: ``snapshot -> restore -> snapshot`` is a fixed point, and a
restored component behaves *identically* to the original from that
point on — same pop order, same RNG draws, same eviction and
tie-breaking decisions.  Hypothesis drives each component through
randomized operation sequences and checks both halves.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.neighbors import NeighborTable
from repro.protocol.peerlist import CandidatePool, ListSource
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.sim.random import RandomRouter


def _cb() -> None:
    """Module-level so snapshots stay picklable."""


def _cb_arg(arg) -> None:
    """Module-level single-arg callback for pooled events."""


# ----------------------------------------------------------------------
# EventQueue
# ----------------------------------------------------------------------
#: One queue operation: (kind, time-ish int).  Times are small ints so
#: ties (the FIFO tie-break path) are common, not rare.
_QUEUE_OPS = st.lists(
    st.tuples(st.sampled_from(["schedule", "pooled", "cancel", "pop"]),
              st.integers(min_value=0, max_value=7)),
    max_size=60)


def _apply_queue_ops(queue: EventQueue, ops):
    handles = []
    for kind, value in ops:
        if kind == "schedule":
            handles.append(queue.schedule(float(value), _cb,
                                          label=f"t{value}"))
        elif kind == "pooled":
            queue.schedule_pooled(float(value), _cb_arg, arg=value,
                                  label=f"p{value}")
        elif kind == "cancel" and handles:
            queue.cancel(handles[value % len(handles)])
        elif kind == "pop":
            event = queue.pop()
            if event is not None:
                # Mirror the engine: recycle pooled events, mark
                # one-shot events consumed so a late cancel is a no-op.
                if event.poolable:
                    queue.recycle(event)
                else:
                    event.cancel()
    return queue


def _drain(queue: EventQueue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.seq, event.label, event.arg))


class TestEventQueueSnapshot:
    @given(ops=_QUEUE_OPS)
    @settings(max_examples=80, deadline=None)
    def test_snapshot_restore_is_a_fixed_point(self, ops):
        queue = _apply_queue_ops(EventQueue(), ops)
        state = queue.snapshot_state()
        restored = EventQueue()
        restored.restore_state(state)
        assert restored.snapshot_state() == state
        assert len(restored) == len(queue)

    @given(ops=_QUEUE_OPS)
    @settings(max_examples=80, deadline=None)
    def test_restored_queue_pops_identically(self, ops):
        queue = _apply_queue_ops(EventQueue(), ops)
        restored = EventQueue()
        restored.restore_state(queue.snapshot_state())
        assert _drain(restored) == _drain(queue)

    @given(ops=_QUEUE_OPS,
           more=st.lists(st.integers(min_value=0, max_value=7),
                         max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_restored_queue_continues_sequence_numbering(self, ops, more):
        queue = _apply_queue_ops(EventQueue(), ops)
        restored = EventQueue()
        restored.restore_state(queue.snapshot_state())
        # Scheduling the same tail on both sides must produce the same
        # sequence numbers — FIFO tie-breaking cannot diverge on resume.
        for value in more:
            original = queue.schedule(float(value), _cb)
            clone = restored.schedule(float(value), _cb)
            assert clone.seq == original.seq
        assert _drain(restored) == _drain(queue)

    @given(ops=_QUEUE_OPS)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_is_picklable(self, ops):
        queue = _apply_queue_ops(EventQueue(), ops)
        state = pickle.loads(pickle.dumps(queue.snapshot_state()))
        restored = EventQueue()
        restored.restore_state(state)
        assert _drain(restored) == _drain(queue)


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
class TestSimulatorSnapshot:
    @given(times=st.lists(st.integers(min_value=0, max_value=20),
                          min_size=1, max_size=30),
           run_until=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_mid_run_snapshot_round_trips(self, times, run_until):
        sim = Simulator(seed=5)
        for value in times:
            sim.call_at(float(value), _cb, label=f"t{value}")
        sim.run_until(float(run_until))
        state = sim.snapshot_state()

        clone = Simulator(seed=5)
        clone.restore_state(state)
        assert clone.snapshot_state() == state
        assert clone.now == sim.now
        assert clone.events_executed == sim.events_executed

        end = float(max(times + [run_until]) + 1)
        sim.run_until(end)
        clone.run_until(end)
        assert clone.now == sim.now
        assert clone.events_executed == sim.events_executed

    @given(draws=st.integers(min_value=0, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_restored_sim_rng_streams_continue_identically(self, draws):
        sim = Simulator(seed=9)
        stream = sim.random.stream("latency")
        for _ in range(draws):
            stream.random()
        clone = Simulator(seed=9)
        clone.restore_state(sim.snapshot_state())
        assert [clone.random.stream("latency").random()
                for _ in range(5)] \
            == [stream.random() for _ in range(5)]


# ----------------------------------------------------------------------
# RandomRouter
# ----------------------------------------------------------------------
class TestRandomRouterSnapshot:
    @given(plan=st.dictionaries(
        st.sampled_from(["latency", "churn", "sample", "campaign"]),
        st.integers(min_value=0, max_value=30), max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_streams_resume_mid_sequence(self, plan):
        router = RandomRouter(master_seed=13)
        for name, draws in plan.items():
            stream = router.stream(name)
            for _ in range(draws):
                stream.random()
        state = router.snapshot_state()

        restored = RandomRouter(master_seed=13)
        restored.restore_state(state)
        assert restored.snapshot_state() == state
        for name in list(plan) + ["fresh-stream"]:
            assert [restored.stream(name).random() for _ in range(4)] \
                == [router.stream(name).random() for _ in range(4)]

    @given(label=st.text(alphabet="abcdef:0123456789", min_size=1,
                         max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_forks_are_stateless_and_unaffected_by_restore(self, label):
        router = RandomRouter(master_seed=21)
        before = router.fork(label).stream("campaign").random()
        restored = RandomRouter(master_seed=21)
        restored.restore_state(router.snapshot_state())
        assert restored.fork(label).stream("campaign").random() == before


# ----------------------------------------------------------------------
# CandidatePool
# ----------------------------------------------------------------------
_ADDRESSES = [f"10.0.0.{i}:40000" for i in range(12)]

_POOL_OPS = st.lists(
    st.tuples(st.sampled_from(["add", "fail", "remove"]),
              st.integers(min_value=0, max_value=11),
              st.sampled_from(list(ListSource))),
    max_size=50)


def _apply_pool_ops(pool: CandidatePool, ops):
    now = 0.0
    for kind, index, source in ops:
        now += 1.0
        address = _ADDRESSES[index]
        if kind == "add":
            pool.add(address, now, source)
        elif kind == "fail":
            pool.note_failure(address, now)
        else:
            pool.remove(address)
    return now


class TestCandidatePoolSnapshot:
    @given(ops=_POOL_OPS)
    @settings(max_examples=80, deadline=None)
    def test_fixed_point_and_future_behavior(self, ops):
        pool = CandidatePool("10.0.0.99:40000", capacity=6)
        now = _apply_pool_ops(pool, ops)
        state = pool.snapshot_state()

        restored = CandidatePool("x", capacity=1)
        restored.restore_state(state)
        assert restored.snapshot_state() == state
        assert restored.addresses() == pool.addresses()
        assert restored.connectable(now) == pool.connectable(now)
        assert restored.build_peer_list([], 10, now) \
            == pool.build_peer_list([], 10, now)

        # Eviction order (dict insertion + last_seen ties) must survive
        # the round-trip: fill both pools past capacity identically.
        for extra in range(8):
            address = f"10.1.0.{extra}:40000"
            pool.add(address, now + 2.0, ListSource.TRACKER)
            restored.add(address, now + 2.0, ListSource.TRACKER)
        assert restored.addresses() == pool.addresses()


# ----------------------------------------------------------------------
# NeighborTable
# ----------------------------------------------------------------------
_TABLE_OPS = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "avail", "response",
                               "miss"]),
              st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=50)),
    max_size=50)


def _apply_table_ops(table: NeighborTable, ops):
    now = 0.0
    for kind, index, value in ops:
        now += 0.5
        address = _ADDRESSES[index]
        state = table.get(address)
        if kind == "add":
            if not table.is_full and address not in table:
                table.add(address, now)
        elif kind == "remove":
            table.remove(address)
        elif state is not None and kind == "avail":
            state.record_availability(value, now)
        elif state is not None and kind == "response":
            state.record_response(value / 100.0, alpha=0.3)
        elif state is not None and kind == "miss":
            state.record_miss(now)
    return now


class TestNeighborTableSnapshot:
    @given(ops=_TABLE_OPS)
    @settings(max_examples=80, deadline=None)
    def test_fixed_point_and_scheduler_inputs(self, ops):
        table = NeighborTable(capacity=5)
        now = _apply_table_ops(table, ops)
        state = table.snapshot_state()

        restored = NeighborTable(capacity=1)
        restored.restore_state(state)
        assert restored.snapshot_state() == state
        assert restored.addresses() == table.addresses()
        assert restored.total_ever_connected == table.total_ever_connected
        for original in table:
            clone = restored.get(original.address)
            assert clone.effective_response() \
                == original.effective_response()
            assert clone.estimated_have(now + 1.0, 4.0, 1.0, 2) \
                == original.estimated_have(now + 1.0, 4.0, 1.0, 2)
        assert restored.silent_since(now - 3.0) \
            == table.silent_since(now - 3.0)

    @given(ops=_TABLE_OPS)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_is_picklable(self, ops):
        table = NeighborTable(capacity=5)
        _apply_table_ops(table, ops)
        state = pickle.loads(pickle.dumps(table.snapshot_state()))
        restored = NeighborTable(capacity=5)
        restored.restore_state(state)
        assert restored.snapshot_state() == table.snapshot_state()


# ----------------------------------------------------------------------
# Live protocol objects (tracker + peer on a real deployment)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def running_session():
    from repro.workload.scenario import ScenarioConfig, SessionScenario
    scenario = SessionScenario(ScenarioConfig(seed=3, population=8))
    sim = Simulator(seed=3)
    deployment = scenario.build_deployment(sim)
    from tests.test_protocol_peer import make_peer
    peer = make_peer(scenario, deployment)
    peer.join()
    sim.run_until(45.0)
    return sim, deployment, peer


class TestLiveProtocolSnapshots:
    def test_tracker_round_trip_preserves_future_samples(
            self, running_session):
        sim, deployment, _peer = running_session
        tracker = deployment.trackers[0]
        state = pickle.loads(pickle.dumps(tracker.snapshot_state()))
        draws = [tracker._rng.random() for _ in range(4)]
        tracker.restore_state(state)
        assert tracker.snapshot_state() == state
        assert [tracker._rng.random() for _ in range(4)] == draws
        tracker.restore_state(state)
        assert tracker.snapshot_state() == state

    def test_peer_round_trip_is_a_fixed_point(self, running_session):
        _sim, _deployment, peer = running_session
        state = peer.snapshot_state()
        pickle.dumps(state)
        peer.restore_state(state)
        assert peer.snapshot_state() == state

    def test_armed_fault_callbacks_are_picklable(self):
        """The injector schedules partials of bound methods, never
        closures: every armed fault event must survive pickling (the
        requirement that forced the closure refactor)."""
        from repro.faults import (FaultInjector, FaultSchedule, FlashCrowd,
                                  LinkDegradation, PeerBlackout,
                                  ServerOutage)
        from repro.workload.scenario import ScenarioConfig, SessionScenario
        scenario = SessionScenario(ScenarioConfig(seed=4, population=6))
        sim = Simulator(seed=4)
        deployment = scenario.build_deployment(sim)
        schedule = FaultSchedule(events=(
            ServerOutage(target="bootstrap", start=10.0, duration=5.0),
            LinkDegradation(pair_class="domestic", start=12.0,
                            duration=6.0, latency_multiplier=2.0),
            PeerBlackout(isp_name="ChinaTelecom", start=15.0,
                         fraction=0.5),
            FlashCrowd(start=18.0, duration=4.0, arrivals=3),
        ))
        injector = FaultInjector(
            sim, schedule, network=deployment.internet.udp,
            latency=deployment.internet.latency,
            bootstrap=deployment.bootstrap,
            trackers=deployment.trackers, source=deployment.source,
            population=object(), master_seed=4)
        armed = injector.arm()
        assert armed == len(schedule.events)
        fault_events = [event for _t, _s, event in sim.queue._heap
                        if event.label.startswith("fault")]
        assert fault_events
        for event in fault_events:
            pickle.dumps(event.callback)
