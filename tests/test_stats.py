"""Tests for the statistics toolkit, including property-based checks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (contribution_cdf, empirical_ccdf, empirical_cdf,
                         fit_stretched_exponential, fit_zipf,
                         least_squares_line, log_linear_fit,
                         log_log_correlation, pearson, r_squared,
                         rank_values, top_fraction_share, weibull_ccdf)


class TestLeastSquares:
    def test_exact_line_recovered(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0 * v + 1.0 for v in x]
        fit = least_squares_line(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            least_squares_line([1.0], [2.0])
        with pytest.raises(ValueError):
            least_squares_line([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            least_squares_line([1.0, 2.0], [1.0])

    def test_r_squared_perfect_and_mean(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
        # Predicting the mean gives exactly zero.
        assert r_squared([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_rank_values(self):
        ranks, ordered = rank_values([3.0, 1.0, 2.0])
        assert list(ranks) == [1.0, 2.0, 3.0]
        assert list(ordered) == [3.0, 2.0, 1.0]


class TestZipf:
    def test_recovers_known_alpha(self):
        values = [1000.0 * r ** -0.8 for r in range(1, 101)]
        fit = fit_zipf(values)
        assert fit.alpha == pytest.approx(0.8, abs=0.01)
        assert fit.r_squared > 0.999

    def test_rejects_too_few_positive(self):
        with pytest.raises(ValueError):
            fit_zipf([5.0, 0.0])

    def test_predict_shape(self):
        fit = fit_zipf([100.0, 50.0, 30.0, 20.0, 10.0])
        predicted = fit.predict([1, 2])
        assert predicted[0] > predicted[1]


class TestStretchedExponential:
    @staticmethod
    def se_values(c, a, n):
        """Generate an exact SE rank distribution (paper Eq. 1-2)."""
        b = 1.0 + a * math.log(n)
        return [(max(b - a * math.log(i), 0.0)) ** (1.0 / c)
                for i in range(1, n + 1)]

    def test_recovers_known_c(self):
        values = self.se_values(c=0.35, a=5.0, n=300)
        fit = fit_stretched_exponential(values)
        assert fit.c == pytest.approx(0.35, abs=0.051)
        assert fit.r_squared > 0.999

    def test_fits_se_better_than_zipf_fits_it(self):
        values = self.se_values(c=0.3, a=6.0, n=200)
        se = fit_stretched_exponential(values)
        zipf = fit_zipf(values)
        assert se.r_squared > zipf.r_squared

    def test_constrained_intercept_close(self):
        # With y_n = 1 the paper's Eq. 2 gives b = 1 + a log n; the free
        # fit should land near it on exact SE data.
        values = self.se_values(c=0.4, a=8.0, n=150)
        fit = fit_stretched_exponential(values, c_grid=[0.4])
        assert fit.b == pytest.approx(1.0 + fit.a * math.log(150),
                                      rel=0.05)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            fit_stretched_exponential([1.0, 2.0])

    def test_predict_monotone(self):
        values = self.se_values(c=0.3, a=5.0, n=100)
        fit = fit_stretched_exponential(values)
        predicted = fit.predict(np.arange(1, 101, dtype=float))
        assert all(predicted[i] >= predicted[i + 1] - 1e-9
                   for i in range(99))

    def test_weibull_ccdf_bounds(self):
        values = weibull_ccdf(np.array([0.0, 1.0, 10.0]), x0=2.0, c=0.5)
        assert values[0] == pytest.approx(1.0)
        assert 0.0 < values[2] < values[1] < 1.0

    def test_weibull_ccdf_validates(self):
        with pytest.raises(ValueError):
            weibull_ccdf(np.array([1.0]), x0=0.0, c=0.5)

    @given(st.floats(0.15, 0.9), st.floats(1.0, 20.0),
           st.integers(30, 400))
    @settings(max_examples=30, deadline=None)
    def test_property_high_r2_on_exact_se_data(self, c, a, n):
        values = self.se_values(c, a, n)
        if min(values) <= 0:
            return
        fit = fit_stretched_exponential(values)
        assert fit.r_squared > 0.98


class TestCdfs:
    def test_empirical_cdf_endpoints(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == pytest.approx(1.0)

    def test_ccdf_complements(self):
        xs, ccdf = empirical_ccdf([1.0, 2.0, 3.0, 4.0])
        assert ccdf[0] == pytest.approx(1.0)
        assert ccdf[-1] == pytest.approx(0.25)

    def test_contribution_cdf_reaches_one(self):
        ranks, shares = contribution_cdf([10.0, 30.0, 60.0])
        assert shares[-1] == pytest.approx(1.0)
        assert shares[0] == pytest.approx(0.6)  # biggest first

    def test_contribution_rejects_bad_input(self):
        with pytest.raises(ValueError):
            contribution_cdf([])
        with pytest.raises(ValueError):
            contribution_cdf([-1.0, 2.0])
        with pytest.raises(ValueError):
            contribution_cdf([0.0, 0.0])

    def test_top_fraction_share(self):
        values = [70.0] + [1.0] * 9  # top 10% (1 of 10) has 70/79
        share = top_fraction_share(values, 0.10)
        assert share == pytest.approx(70.0 / 79.0)

    def test_top_fraction_rounds_up(self):
        values = [50.0, 30.0, 20.0]  # 10% of 3 -> 1 item
        assert top_fraction_share(values, 0.10) == pytest.approx(0.5)

    def test_top_fraction_validates(self):
        with pytest.raises(ValueError):
            top_fraction_share([1.0], 0.0)
        with pytest.raises(ValueError):
            top_fraction_share([], 0.1)

    @given(st.lists(st.floats(0.001, 1000.0), min_size=2, max_size=200),
           st.floats(0.05, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_share_bounds(self, values, fraction):
        share = top_fraction_share(values, fraction)
        k = math.ceil(fraction * len(values))
        assert k / len(values) - 1e-9 <= 1.0
        # The top-k share is at least k/n (top items >= average).
        assert share >= k / len(values) - 1e-9
        assert share <= 1.0 + 1e-9


class TestCorrelation:
    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_validates(self):
        with pytest.raises(ValueError):
            pearson([1], [2])
        with pytest.raises(ValueError):
            pearson([1, 1], [2, 3])

    def test_log_log_correlation_drops_nonpositive(self):
        # The (0, y) pair is discarded; remaining pairs correlate exactly.
        value = log_log_correlation([1.0, 2.0, 4.0, 0.0],
                                    [1.0, 4.0, 16.0, 5.0])
        assert value == pytest.approx(1.0)

    def test_log_log_needs_two_positive_pairs(self):
        with pytest.raises(ValueError):
            log_log_correlation([0.0, 1.0], [1.0, 0.0])

    def test_log_linear_fit_slope_sign(self):
        # RTT decaying with rank gives a negative slope in log space.
        ranks = list(range(1, 50))
        rtts = [math.exp(-0.05 * r) for r in ranks]
        fit = log_linear_fit(ranks, rtts)
        assert fit.slope == pytest.approx(-0.05, abs=1e-6)
