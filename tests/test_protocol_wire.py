"""Wire-codec tests: round-trips, size guarantees, malformed input.

The protocol hot path never encodes; it relies on ``wire_size`` matching
``len(encode(msg))`` exactly.  The property-based round-trip tests here
are what make that shortcut safe.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import messages as m
from repro.protocol.wire import WireError, decode, encode, wire_size

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
addresses = st.builds(
    lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
    st.integers(1, 255), st.integers(0, 255),
    st.integers(0, 255), st.integers(1, 254))

address_lists = st.lists(addresses, max_size=60).map(tuple)
channel_ids = st.integers(0, 2 ** 32 - 1)
chunks = st.integers(-1, 2 ** 40)
have = st.integers(-1, 2 ** 40)
seqs = st.integers(0, 2 ** 32 - 1)
subpiece_index = st.integers(0, 200)
names = st.text(min_size=1, max_size=40).filter(
    lambda s: len(s.encode("utf-8")) <= 255)


def message_strategy():
    return st.one_of(
        st.just(m.ChannelListRequest()),
        st.builds(m.ChannelListReply,
                  channels=st.lists(
                      st.tuples(channel_ids, names), max_size=10
                  ).map(tuple)),
        st.builds(m.PlaylinkRequest, channel_id=channel_ids),
        st.builds(m.PlaylinkReply, channel_id=channel_ids,
                  playlink=names, trackers=address_lists),
        st.builds(m.TrackerQuery, channel_id=channel_ids),
        st.builds(m.TrackerReply, channel_id=channel_ids,
                  peers=address_lists),
        st.builds(m.Hello, channel_id=channel_ids, have_until=have,
                  have_from=have),
        st.builds(m.HelloAck, channel_id=channel_ids, have_until=have,
                  have_from=have),
        st.builds(m.HelloReject, channel_id=channel_ids),
        st.builds(m.Goodbye, channel_id=channel_ids),
        st.builds(m.PeerListRequest, channel_id=channel_ids,
                  enclosed=address_lists, have_until=have,
                  have_from=have, request_id=seqs),
        st.builds(m.PeerListReply, channel_id=channel_ids,
                  peers=address_lists, have_until=have, have_from=have,
                  request_id=seqs),
        st.builds(m.DataRequest, channel_id=channel_ids,
                  chunk=st.integers(0, 2 ** 40), first=subpiece_index,
                  last=subpiece_index, seq=seqs),
        st.builds(m.DataReply, channel_id=channel_ids,
                  chunk=st.integers(0, 2 ** 40), first=subpiece_index,
                  last=subpiece_index, seq=seqs, have_until=have,
                  have_from=have,
                  payload_bytes=st.integers(0, 30_000)),
        st.builds(m.DataMiss, channel_id=channel_ids,
                  chunk=st.integers(0, 2 ** 40), seq=seqs,
                  have_until=have, have_from=have),
        st.builds(m.BufferMapAnnounce, channel_id=channel_ids,
                  have_until=have, have_from=have),
    )


class TestRoundTrip:
    @given(message_strategy())
    @settings(max_examples=300)
    def test_decode_inverts_encode(self, msg):
        assert decode(encode(msg)) == msg

    @given(message_strategy())
    @settings(max_examples=300)
    def test_wire_size_matches_encoding(self, msg):
        assert wire_size(msg) == len(encode(msg))


class TestTypeTags:
    def test_all_types_unique(self):
        tags = [cls.TYPE for cls in m.ALL_MESSAGE_TYPES]
        assert len(tags) == len(set(tags))

    def test_all_types_encodable(self):
        for cls in m.ALL_MESSAGE_TYPES:
            msg = cls()
            assert decode(encode(msg)) == msg


class TestMalformedInput:
    def test_short_header(self):
        with pytest.raises(WireError):
            decode(b"PP")

    def test_bad_magic(self):
        with pytest.raises(WireError):
            decode(b"XX\x01\x01" + b"\x00" * 10)

    def test_bad_version(self):
        with pytest.raises(WireError):
            decode(b"PP\x63\x01" + b"\x00" * 10)

    def test_unknown_type(self):
        with pytest.raises(WireError):
            decode(b"PP\x01\xff" + b"\x00" * 10)

    def test_bad_address_rejected_on_encode(self):
        msg = m.TrackerReply(peers=("999.999.999.999",))
        with pytest.raises(WireError):
            encode(msg)

    def test_oversized_string_rejected(self):
        msg = m.PlaylinkReply(playlink="x" * 300)
        with pytest.raises(WireError):
            encode(msg)


class TestPayloadSizes:
    def test_data_reply_carries_payload_bytes(self):
        small = m.DataReply(payload_bytes=0)
        large = m.DataReply(payload_bytes=13_800)
        assert wire_size(large) - wire_size(small) == 13_800

    def test_peer_list_scales_with_entries(self):
        empty = m.PeerListReply(peers=())
        full = m.PeerListReply(peers=tuple(f"1.0.0.{i}"
                                           for i in range(1, 61)))
        assert wire_size(full) - wire_size(empty) == 60 * 6

    def test_buffermap_is_tiny(self):
        assert wire_size(m.BufferMapAnnounce()) <= 32
