"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (EngineStoppedError, SchedulingError, Simulator,
                       Sleep, spawn)


class TestClockAndScheduling:
    def test_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_custom_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0

    def test_call_at_executes_at_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_after_relative(self):
        sim = Simulator()
        seen = []
        sim.call_after(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.call_after(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        seen = []
        sim.call_after(0.0, lambda: seen.append(True))
        sim.run()
        assert seen == [True]

    def test_fifo_order_at_same_timestamp(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.call_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_execution_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.call_after(1.0, lambda: seen.append("second"))

        sim.call_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0


class TestRunUntil:
    def test_stops_at_end_time(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        executed = sim.run_until(2.0)
        assert executed == 2
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0

    def test_clock_advances_to_end_even_when_idle(self):
        sim = Simulator()
        sim.run_until(50.0)
        assert sim.now == 50.0

    def test_consecutive_windows(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 5.0, 9.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run_until(4.0)
        assert seen == [1.0]
        sim.run_until(10.0)
        assert seen == [1.0, 5.0, 9.0]

    def test_end_before_now_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SchedulingError):
            sim.run_until(5.0)

    def test_max_events_bound(self):
        sim = Simulator()
        for t in range(10):
            sim.call_at(float(t + 1), lambda: None)
        executed = sim.run_until(100.0, max_events=3)
        assert executed == 3

    def test_max_events_break_does_not_skip_queued_events(self):
        # Regression: when the max_events bound fires, the clock must
        # stay at the last executed event, not jump to end_time past
        # events that are still queued and due before it.
        sim = Simulator()
        seen = []
        for t in range(10):
            sim.call_at(float(t + 1), lambda t=t: seen.append(t + 1))
        sim.run_until(100.0, max_events=3)
        assert sim.now == 3.0
        # The remaining events are still runnable in a later window.
        sim.run_until(100.0)
        assert seen == list(range(1, 11))
        assert sim.now == 100.0

    def test_run_until_without_break_still_reaches_end_time(self):
        sim = Simulator()
        sim.call_at(2.0, lambda: None)
        sim.run_until(50.0)
        assert sim.now == 50.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.call_at(1.0, lambda: seen.append(True))
        sim.cancel(event)
        sim.run()
        assert seen == []

    def test_double_cancel_is_safe(self):
        sim = Simulator()
        event = sim.call_at(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert len(sim.queue) == 0

    def test_live_count_tracks_cancellations(self):
        sim = Simulator()
        events = [sim.call_at(float(i + 1), lambda: None)
                  for i in range(5)]
        assert len(sim.queue) == 5
        sim.cancel(events[2])
        assert len(sim.queue) == 4


class TestStop:
    def test_stopped_engine_rejects_scheduling(self):
        sim = Simulator()
        sim.stop()
        with pytest.raises(EngineStoppedError):
            sim.call_after(1.0, lambda: None)

    def test_stop_clears_queue(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.stop()
        assert len(sim.queue) == 0


class TestTimers:
    def test_timer_repeats(self):
        sim = Simulator()
        seen = []
        timer = sim.every(1.0, lambda: seen.append(sim.now))
        sim.run_until(5.5)
        timer.stop()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_timer_stop_inside_callback(self):
        sim = Simulator()
        seen = []
        timer = sim.every(1.0, lambda: (seen.append(sim.now),
                                        timer.stop() if len(seen) >= 3
                                        else None))
        sim.run_until(10.0)
        assert len(seen) == 3

    def test_timer_jitter_applied(self):
        sim = Simulator()
        seen = []
        sim.every(10.0, lambda: seen.append(sim.now),
                  jitter_fn=lambda: -2.0)
        sim.run_until(17.0)
        assert seen == [8.0, 16.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.every(0.0, lambda: None)


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append(("start", sim.now))
            yield Sleep(5.0)
            seen.append(("middle", sim.now))
            yield 3.0  # bare numbers are sleeps too
            seen.append(("end", sim.now))

        process = spawn(sim, script)
        sim.run()
        assert seen == [("start", 0.0), ("middle", 5.0), ("end", 8.0)]
        assert process.finished

    def test_spawn_with_delay(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append(sim.now)
            yield Sleep(1.0)

        spawn(sim, script, delay=4.0)
        sim.run()
        assert seen == [4.0]

    def test_cancel_process(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append("a")
            yield Sleep(5.0)
            seen.append("b")

        process = spawn(sim, script)
        sim.run_until(1.0)
        process.cancel()
        sim.run()
        assert seen == ["a"]
        assert process.cancelled
        assert not process.alive

    def test_process_error_propagates(self):
        sim = Simulator()

        def script():
            yield Sleep(1.0)
            raise RuntimeError("boom")

        process = spawn(sim, script)
        with pytest.raises(RuntimeError):
            sim.run()
        assert process.error is not None


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Simulator(seed=42).random.stream("x")
        b = Simulator(seed=42).random.stream("x")
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        sim = Simulator(seed=42)
        a = sim.random.stream("a")
        b = sim.random.stream("b")
        assert [a.random() for _ in range(5)] != \
               [b.random() for _ in range(5)]

    def test_fork_differs_from_parent(self):
        sim = Simulator(seed=42)
        parent = sim.random.stream("x")
        child = sim.random.fork("node").stream("x")
        assert parent.random() != child.random()


class TestEventQueueInternals:
    def test_peek_time(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(5.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_bool_reflects_live_events(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        assert not queue
        event = queue.schedule(1.0, lambda: None)
        assert queue
        queue.cancel(event)
        assert not queue


class TestProcessValidation:
    def test_bad_yield_raises_process_error(self):
        from repro.sim import ProcessError, Simulator, spawn

        def script():
            yield "not-a-command"

        sim = Simulator()
        spawn(sim, script)
        with pytest.raises(ProcessError):
            sim.run()

    def test_negative_sleep_rejected(self):
        from repro.sim import ProcessError, Sleep
        with pytest.raises(ProcessError):
            Sleep(-1.0)

    def test_timer_stopped_property(self):
        sim = Simulator()
        timer = sim.every(1.0, lambda: None)
        assert not timer.stopped
        timer.stop()
        assert timer.stopped
