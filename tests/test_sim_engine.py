"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (EngineStoppedError, SchedulingError, Simulator,
                       Sleep, spawn)


class TestClockAndScheduling:
    def test_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_custom_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0

    def test_call_at_executes_at_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_after_relative(self):
        sim = Simulator()
        seen = []
        sim.call_after(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.call_after(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        seen = []
        sim.call_after(0.0, lambda: seen.append(True))
        sim.run()
        assert seen == [True]

    def test_fifo_order_at_same_timestamp(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.call_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_execution_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.call_after(1.0, lambda: seen.append("second"))

        sim.call_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0


class TestRunUntil:
    def test_stops_at_end_time(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        executed = sim.run_until(2.0)
        assert executed == 2
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0

    def test_clock_advances_to_end_even_when_idle(self):
        sim = Simulator()
        sim.run_until(50.0)
        assert sim.now == 50.0

    def test_consecutive_windows(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 5.0, 9.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run_until(4.0)
        assert seen == [1.0]
        sim.run_until(10.0)
        assert seen == [1.0, 5.0, 9.0]

    def test_end_before_now_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SchedulingError):
            sim.run_until(5.0)

    def test_max_events_bound(self):
        sim = Simulator()
        for t in range(10):
            sim.call_at(float(t + 1), lambda: None)
        executed = sim.run_until(100.0, max_events=3)
        assert executed == 3

    def test_max_events_break_does_not_skip_queued_events(self):
        # Regression: when the max_events bound fires, the clock must
        # stay at the last executed event, not jump to end_time past
        # events that are still queued and due before it.
        sim = Simulator()
        seen = []
        for t in range(10):
            sim.call_at(float(t + 1), lambda t=t: seen.append(t + 1))
        sim.run_until(100.0, max_events=3)
        assert sim.now == 3.0
        # The remaining events are still runnable in a later window.
        sim.run_until(100.0)
        assert seen == list(range(1, 11))
        assert sim.now == 100.0

    def test_run_until_without_break_still_reaches_end_time(self):
        sim = Simulator()
        sim.call_at(2.0, lambda: None)
        sim.run_until(50.0)
        assert sim.now == 50.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.call_at(1.0, lambda: seen.append(True))
        sim.cancel(event)
        sim.run()
        assert seen == []

    def test_double_cancel_is_safe(self):
        sim = Simulator()
        event = sim.call_at(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert len(sim.queue) == 0

    def test_live_count_tracks_cancellations(self):
        sim = Simulator()
        events = [sim.call_at(float(i + 1), lambda: None)
                  for i in range(5)]
        assert len(sim.queue) == 5
        sim.cancel(events[2])
        assert len(sim.queue) == 4


class TestStop:
    def test_stopped_engine_rejects_scheduling(self):
        sim = Simulator()
        sim.stop()
        with pytest.raises(EngineStoppedError):
            sim.call_after(1.0, lambda: None)

    def test_stop_clears_queue(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.stop()
        assert len(sim.queue) == 0


class TestTimers:
    def test_timer_repeats(self):
        sim = Simulator()
        seen = []
        timer = sim.every(1.0, lambda: seen.append(sim.now))
        sim.run_until(5.5)
        timer.stop()
        assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_timer_stop_inside_callback(self):
        sim = Simulator()
        seen = []
        timer = sim.every(1.0, lambda: (seen.append(sim.now),
                                        timer.stop() if len(seen) >= 3
                                        else None))
        sim.run_until(10.0)
        assert len(seen) == 3

    def test_timer_jitter_applied(self):
        sim = Simulator()
        seen = []
        sim.every(10.0, lambda: seen.append(sim.now),
                  jitter_fn=lambda: -2.0)
        sim.run_until(17.0)
        assert seen == [8.0, 16.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.every(0.0, lambda: None)


class TestProcesses:
    def test_process_sleeps(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append(("start", sim.now))
            yield Sleep(5.0)
            seen.append(("middle", sim.now))
            yield 3.0  # bare numbers are sleeps too
            seen.append(("end", sim.now))

        process = spawn(sim, script)
        sim.run()
        assert seen == [("start", 0.0), ("middle", 5.0), ("end", 8.0)]
        assert process.finished

    def test_spawn_with_delay(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append(sim.now)
            yield Sleep(1.0)

        spawn(sim, script, delay=4.0)
        sim.run()
        assert seen == [4.0]

    def test_cancel_process(self):
        sim = Simulator()
        seen = []

        def script():
            seen.append("a")
            yield Sleep(5.0)
            seen.append("b")

        process = spawn(sim, script)
        sim.run_until(1.0)
        process.cancel()
        sim.run()
        assert seen == ["a"]
        assert process.cancelled
        assert not process.alive

    def test_process_error_propagates(self):
        sim = Simulator()

        def script():
            yield Sleep(1.0)
            raise RuntimeError("boom")

        process = spawn(sim, script)
        with pytest.raises(RuntimeError):
            sim.run()
        assert process.error is not None


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Simulator(seed=42).random.stream("x")
        b = Simulator(seed=42).random.stream("x")
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        sim = Simulator(seed=42)
        a = sim.random.stream("a")
        b = sim.random.stream("b")
        assert [a.random() for _ in range(5)] != \
               [b.random() for _ in range(5)]

    def test_fork_differs_from_parent(self):
        sim = Simulator(seed=42)
        parent = sim.random.stream("x")
        child = sim.random.fork("node").stream("x")
        assert parent.random() != child.random()


class TestEventQueueInternals:
    def test_peek_time(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(5.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_bool_reflects_live_events(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        assert not queue
        event = queue.schedule(1.0, lambda: None)
        assert queue
        queue.cancel(event)
        assert not queue


class TestRunLoopFastPath:
    """Regression tests for the inlined run loops.

    ``run_until`` / ``run`` reach into the heap directly (one heap
    access per event) — these pin the observable semantics to the
    plain ``step()`` loop they replaced.
    """

    @staticmethod
    def _busy_sim(seed):
        sim = Simulator(seed=seed)
        seen = []

        def tick(t):
            seen.append((sim.now, t))
            if t < 40:
                sim.call_after(0.5, lambda: tick(t + 10))

        for t in (5.0, 1.0, 3.0, 1.0, 2.0):
            sim.call_at(t, lambda t=t: tick(t))
        return sim, seen

    def test_run_until_matches_step_loop(self):
        fast_sim, fast_seen = self._busy_sim(seed=3)
        executed = fast_sim.run_until(4.0)

        ref_sim, ref_seen = self._busy_sim(seed=3)
        stepped = 0
        while True:
            next_time = ref_sim.queue.peek_time()
            if next_time is None or next_time > 4.0:
                break
            ref_sim.step()
            stepped += 1
        ref_sim.clock.advance_to(4.0)

        assert fast_seen == ref_seen
        assert executed == stepped
        assert fast_sim.events_executed == ref_sim.events_executed
        assert fast_sim.now == ref_sim.now == 4.0

    def test_events_executed_counts_every_event(self):
        sim = Simulator()
        for t in range(10):
            sim.call_at(float(t), lambda: None)
        sim.run_until(4.5)
        assert sim.events_executed == 5
        sim.run()
        assert sim.events_executed == 10

    def test_events_executed_visible_mid_run(self):
        # The heartbeat/profiler reads events_executed from inside a
        # callback; the fast loop must keep the counter per-event, not
        # batch it at loop exit.
        sim = Simulator()
        observed = []
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda: observed.append(sim.events_executed))
        sim.run()
        assert observed == [1, 2, 3]

    def test_clock_reads_event_time_inside_callback(self):
        sim = Simulator()
        observed = []
        for t in (1.25, 2.5):
            sim.call_at(t, lambda: observed.append(sim.now))
        sim.run_until(10.0)
        assert observed == [1.25, 2.5]
        assert sim.now == 10.0

    def test_run_until_max_events_zero_executes_nothing(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(True))
        assert sim.run_until(5.0, max_events=0) == 0
        assert seen == []
        # The pending event survives for a later window.
        sim.run_until(5.0)
        assert seen == [True]

    def test_run_skips_cancelled_without_counting(self):
        sim = Simulator()
        seen = []
        keep = sim.call_at(1.0, lambda: seen.append("keep"))
        drop = sim.call_at(1.0, lambda: seen.append("drop"))
        sim.cancel(drop)
        sim.run()
        assert seen == ["keep"]
        assert sim.events_executed == 1
        assert keep is not drop


class TestTombstoneCompaction:
    def test_cancel_heavy_workload_keeps_heap_bounded(self):
        # Schedule + cancel 100k timers: with lazy tombstones alone the
        # heap would hold all 100k dead entries; compaction must keep it
        # near the live population instead.
        from repro.sim import EventQueue
        queue = EventQueue()
        live = [queue.schedule(1e9 + i, lambda: None) for i in range(50)]
        for i in range(100_000):
            event = queue.schedule(float(i), lambda: None)
            queue.cancel(event)
        assert len(queue) == 50
        # Bounded: proportional to live events, nowhere near 100k.
        assert len(queue._heap) <= 2 * len(live) + 64
        # Pop order is unaffected by compaction.
        assert queue.pop().time == 1e9

    def test_compaction_preserves_pop_order(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        times = [float(t) for t in (7, 3, 9, 1, 5, 8, 2, 6, 4, 0)]
        kept = [queue.schedule(t, lambda: None, label=str(t))
                for t in times]
        doomed = [queue.schedule(t + 0.5, lambda: None)
                  for t in times for _ in range(20)]
        for event in doomed:
            queue.cancel(event)
        queue.compact()
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(times)
        assert kept[0].label == "7.0"

    def test_live_count_consistent_after_compaction(self):
        from repro.sim import EventQueue
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None)
                  for i in range(200)]
        for event in events[::2]:
            queue.cancel(event)
        assert len(queue) == 100
        assert queue.peek_time() == 1.0


class TestPooledPost:
    def test_post_fires_without_arg(self):
        sim = Simulator()
        seen = []
        sim.post(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_post_passes_arg_positionally(self):
        sim = Simulator()
        seen = []
        sim.post(1.0, seen.append, arg="payload")
        sim.post(2.0, seen.append, arg=None)  # None is a real argument
        sim.run()
        assert seen == ["payload", None]

    def test_post_interleaves_with_call_at_in_seq_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append("a"))
        sim.post(1.0, seen.append, arg="b")
        sim.call_at(1.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_post_rejects_past_time(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.post(1.0, lambda: None)

    def test_post_rejects_stopped_engine(self):
        sim = Simulator()
        sim.stop()
        with pytest.raises(EngineStoppedError):
            sim.post(1.0, lambda: None)

    def test_pooled_events_are_recycled(self):
        sim = Simulator()
        for i in range(100):
            sim.post(float(i), lambda: None)
        sim.run()
        # Events returned to the free-list get reused by later posts.
        assert len(sim.queue._pool) > 0
        pooled_before = len(sim.queue._pool)
        sim.post(sim.now + 1.0, lambda: None)
        assert len(sim.queue._pool) == pooled_before - 1

    def test_pool_reuse_preserves_ordering_and_args(self):
        sim = Simulator()
        seen = []
        for round_no in range(3):
            for i in range(10):
                sim.post(sim.now + float(i + 1), seen.append,
                         arg=(round_no, i))
            sim.run()
        assert seen == [(r, i) for r in range(3) for i in range(10)]


class TestProcessValidation:
    def test_bad_yield_raises_process_error(self):
        from repro.sim import ProcessError, Simulator, spawn

        def script():
            yield "not-a-command"

        sim = Simulator()
        spawn(sim, script)
        with pytest.raises(ProcessError):
            sim.run()

    def test_negative_sleep_rejected(self):
        from repro.sim import ProcessError, Sleep
        with pytest.raises(ProcessError):
            Sleep(-1.0)

    def test_timer_stopped_property(self):
        sim = Simulator()
        timer = sim.every(1.0, lambda: None)
        assert not timer.stopped
        timer.stop()
        assert timer.stopped
