"""Tests for the EXPERIMENTS.md collector."""

from pathlib import Path

import pytest

from repro.experiments.collect import (DOCUMENT_ORDER, PAPER_TARGETS,
                                       build_document, collect, main)


class TestCollect:
    def test_every_ordered_id_has_a_paper_target(self):
        for experiment_id in DOCUMENT_ORDER:
            assert experiment_id in PAPER_TARGETS

    def test_missing_artifacts_flagged(self, tmp_path):
        collected = collect(tmp_path)
        assert all(e.measured is None for e in collected)
        document = build_document(tmp_path)
        assert "no artifact found" in document
        assert f"0/{len(DOCUMENT_ORDER)}" in document

    def test_artifacts_embedded(self, tmp_path):
        (tmp_path / "fig02.txt").write_text("MEASURED CONTENT 42\n")
        document = build_document(tmp_path)
        assert "MEASURED CONTENT 42" in document
        assert f"1/{len(DOCUMENT_ORDER)}" in document
        # Paper target text accompanies the artifact.
        assert "~70% of returned addresses" in document

    def test_main_writes_output(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig02.txt").write_text("data\n")
        output = tmp_path / "EXP.md"
        assert main([str(results), str(output)]) == 0
        assert output.exists()
        assert "data" in output.read_text()

    def test_main_missing_dir(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2
