"""Determinism-equivalence harness for the parallel execution layer.

The contract under test: because every simulation unit derives its RNG
streams from its own key, fanning units out to worker processes must
change *nothing* about the results — ``run_campaign(..., jobs=N)`` is
byte-identical for every ``N``, worker crashes and timeouts degrade
throughput but never output, and the serial path's campaign-level event
stream is exactly what it was before the parallel layer existed.
"""

import hashlib
import multiprocessing
import os
import time

import pytest

from repro.experiments.fig06 import Figure6
from repro.obs import Instrumentation, RingSink
from repro.parallel import (WHERE_FALLBACK, WHERE_POOL, WHERE_SERIAL, Job,
                            JobFailure, execute_jobs, merge_by_key,
                            run_jobs, run_seed_sweep)
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig, run_campaign
from repro.workload.scenario import ScenarioConfig


# ----------------------------------------------------------------------
# Job functions must be module-level so they pickle across processes.
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _crash_in_worker(x):
    """Poisoned job: kills any pool worker, succeeds in-process."""
    if multiprocessing.parent_process() is not None:
        os._exit(17)
    return x + 100


def _sleep_in_worker(x):
    """Hangs any pool worker; returns immediately in-process."""
    if multiprocessing.parent_process() is not None:
        time.sleep(300.0)
    return x


def _always_raise(x):
    raise ValueError(f"deterministic failure for {x}")


def _series_digest(result):
    """Stable digest over all six locality curves of a campaign."""
    parts = []
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for curve in ("CNC", "TELE", "Mason"):
            parts.append(",".join(f"{value:.9e}" for value
                                  in result.series(popularity, curve)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


TINY_CAMPAIGN = dict(seed=11, days=2, popular_population=10,
                     unpopular_population=6, session_duration=120.0,
                     warmup=60.0)


# ----------------------------------------------------------------------
# run_jobs core behaviour
# ----------------------------------------------------------------------
class TestRunJobs:
    def test_serial_matches_input_order(self):
        jobs = [Job(key=i, fn=_square, args=(i,)) for i in (3, 1, 2)]
        merged = run_jobs(jobs)
        assert list(merged.items()) == [(3, 9), (1, 1), (2, 4)]

    def test_pool_matches_serial(self):
        jobs = [Job(key=i, fn=_square, args=(i,)) for i in range(8)]
        assert run_jobs(jobs, workers=2) == run_jobs(jobs)

    def test_empty_job_list(self):
        assert list(run_jobs([], workers=4)) == []

    def test_duplicate_keys_rejected(self):
        jobs = [Job(key="x", fn=_square, args=(1,)),
                Job(key="x", fn=_square, args=(2,))]
        with pytest.raises(ValueError, match="unique"):
            run_jobs(jobs)

    def test_serial_outcomes_are_marked_serial(self):
        outcomes = execute_jobs([Job(key=0, fn=_square, args=(5,))])
        assert [o.where for o in outcomes] == [WHERE_SERIAL]
        assert outcomes[0].attempts == 1
        assert outcomes[0].queue_wait == 0.0

    def test_pool_outcomes_record_timing(self):
        outcomes = execute_jobs([Job(key=i, fn=_square, args=(i,))
                                 for i in range(3)], workers=2)
        for outcome in outcomes:
            assert outcome.where == WHERE_POOL
            assert outcome.wall_clock >= 0.0
            assert outcome.queue_wait >= 0.0


class TestCrashAndTimeout:
    def test_poisoned_job_falls_back_in_process(self):
        jobs = [Job(key="a", fn=_square, args=(3,)),
                Job(key="poison", fn=_crash_in_worker, args=(1,)),
                Job(key="b", fn=_square, args=(4,))]
        outcomes = {o.key: o for o in execute_jobs(jobs, workers=2,
                                                   retries=1)}
        # Every job delivered the right value despite the crash ...
        assert outcomes["a"].value == 9
        assert outcomes["b"].value == 16
        assert outcomes["poison"].value == 101
        # ... and the poisoned one was retried then run in-process.
        assert outcomes["poison"].where == WHERE_FALLBACK
        assert outcomes["poison"].attempts == 3  # 2 pool rounds + fallback

    def test_timeout_falls_back_without_hanging(self):
        started = time.monotonic()
        jobs = [Job(key="slow", fn=_sleep_in_worker, args=(7,)),
                Job(key="ok", fn=_square, args=(2,))]
        outcomes = {o.key: o for o in execute_jobs(jobs, workers=2,
                                                   timeout=1.0,
                                                   retries=0)}
        elapsed = time.monotonic() - started
        assert outcomes["slow"].value == 7
        assert outcomes["slow"].where == WHERE_FALLBACK
        assert outcomes["ok"].value == 4
        # The 300 s worker sleep must not block the merge.
        assert elapsed < 60.0

    def test_deterministic_failure_raises_job_failure(self):
        with pytest.raises(JobFailure, match="bad"):
            run_jobs([Job(key="bad", fn=_always_raise, args=(0,))],
                     workers=2, retries=1)

    def test_failure_raises_in_serial_mode_too(self):
        with pytest.raises(JobFailure):
            run_jobs([Job(key="bad", fn=_always_raise, args=(0,))])


class TestMergeByKey:
    def test_merge_follows_key_order_not_insertion_order(self):
        results = {"b": 2, "a": 1, "c": 3}  # "completion" order b, a, c
        merged = merge_by_key(["a", "b", "c"], results)
        assert list(merged.items()) == [("a", 1), ("b", 2), ("c", 3)]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            merge_by_key(["a", "b"], {"a": 1})

    def test_unknown_result_key_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            merge_by_key(["a"], {"a": 1, "zzz": 9})

    def test_duplicate_key_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_by_key(["a", "a"], {"a": 1})


# ----------------------------------------------------------------------
# Campaign: serial vs parallel byte-identical results
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_campaign():
    return run_campaign(CampaignConfig(**TINY_CAMPAIGN), jobs=1)


class TestCampaignEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_byte_identical_across_job_counts(self, serial_campaign,
                                              jobs):
        parallel = run_campaign(CampaignConfig(**TINY_CAMPAIGN),
                                jobs=jobs)
        # Rendered Figure 6 table: byte-identical.
        assert (Figure6(result=parallel).render()
                == Figure6(result=serial_campaign).render())
        # Per-day locality series: bit-identical floats.
        assert _series_digest(parallel) == _series_digest(serial_campaign)
        # Structured fields match exactly, day by day.
        for mine, theirs in zip(parallel.popular + parallel.unpopular,
                                serial_campaign.popular
                                + serial_campaign.unpopular):
            assert mine.day == theirs.day
            assert mine.popularity == theirs.popularity
            assert mine.population == theirs.population
            assert mine.locality_by_isp == theirs.locality_by_isp

    def test_pool_unavailable_falls_back_to_serial(self,
                                                   serial_campaign,
                                                   monkeypatch):
        # Platform cannot provide a process pool: the campaign must
        # degrade to in-process execution with byte-identical output.
        import repro.parallel.jobs as jobs_module
        real_make_pool = jobs_module._make_pool
        calls = {"n": 0}

        def flaky_pool(workers):
            calls["n"] += 1
            if calls["n"] == 1:
                return None  # pool "unavailable" -> serial fallback
            return real_make_pool(workers)

        monkeypatch.setattr(jobs_module, "_make_pool", flaky_pool)
        parallel = run_campaign(CampaignConfig(**TINY_CAMPAIGN), jobs=2)
        assert _series_digest(parallel) == _series_digest(serial_campaign)


def _campaign_events(jobs):
    # Generous capacity: the serial path also streams every per-session
    # event into the sink, and the campaign_day records must survive.
    sink = RingSink(capacity=500_000)
    obs = Instrumentation(trace=sink)
    config = CampaignConfig(instrumentation=obs, **TINY_CAMPAIGN)
    run_campaign(config, jobs=jobs)
    return [record for record in sink.records
            if record["event"] == "campaign_day"]


@pytest.fixture(scope="module")
def serial_events():
    return _campaign_events(jobs=1)


class TestCampaignEventStream:
    """The serial path's campaign-level event stream is untouched, and
    the parallel path replays the identical stream after its merge."""

    def test_serial_event_stream_shape(self, serial_events):
        events = serial_events
        days = TINY_CAMPAIGN["days"]
        # One event per (program, day): all popular days in order, then
        # all unpopular days — exactly the pre-parallel serial protocol.
        assert [(e["popularity"], e["day"]) for e in events] == \
            [("popular", d + 1) for d in range(days)] \
            + [("unpopular", d + 1) for d in range(days)]
        for event in events:
            assert event["days"] == days
            assert set(event["locality_by_isp"]) == {"CNC", "TELE",
                                                     "Mason"}

    def test_parallel_emits_identical_campaign_events(self,
                                                      serial_events):
        parallel = _campaign_events(jobs=2)
        assert serial_events == parallel


# ----------------------------------------------------------------------
# Seed sweeps and ablation grids
# ----------------------------------------------------------------------
class TestSeedSweep:
    SCENARIO = dict(population=12, duration=120.0, warmup=60.0)

    def test_parallel_sweep_matches_serial(self):
        config = ScenarioConfig(**self.SCENARIO)
        serial = run_seed_sweep(config, [1, 2, 3], jobs=1)
        parallel = run_seed_sweep(config, [1, 2, 3], jobs=2)
        assert serial == parallel
        assert [m.seed for m in parallel] == [1, 2, 3]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_seed_sweep(ScenarioConfig(**self.SCENARIO), [])

    def test_duplicate_seeds_allowed(self):
        config = ScenarioConfig(**self.SCENARIO)
        metrics = run_seed_sweep(config, [5, 5], jobs=2)
        assert metrics[0] == metrics[1]


class TestParallelObservability:
    def test_job_metrics_flow_into_bundle(self):
        obs = Instrumentation(trace=RingSink())
        jobs = [Job(key=i, fn=_square, args=(i,)) for i in range(4)]
        run_jobs(jobs, workers=2, obs=obs)
        pool_jobs = obs.metrics.get("parallel.jobs", {"where": "pool"})
        assert pool_jobs is not None and pool_jobs.value == 4
        assert obs.metrics.get("parallel.job_seconds").count == 4
        assert obs.metrics.get("parallel.queue_seconds").count == 4
        assert obs.metrics.get("parallel.workers").value == 2
        runs = obs.trace.events("parallel_run")
        assert runs and runs[0]["jobs"] == 4

    def test_null_obs_costs_nothing(self):
        # No bundle: the runner must not allocate metrics anywhere.
        jobs = [Job(key=i, fn=_square, args=(i,)) for i in range(2)]
        merged = run_jobs(jobs, workers=2, obs=None)
        assert dict(merged) == {0: 0, 1: 1}
