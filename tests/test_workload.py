"""Tests for population mixes, churn, diurnal patterns and scenarios."""

import random

import pytest

from repro.network.isp import ISPCategory, default_isp_catalog
from repro.sim import Simulator
from repro.streaming.video import Popularity
from repro.workload import (ChurnModel, DiurnalPattern, PopulationManager,
                            ScenarioConfig, SessionScenario, mix_for,
                            popular_channel_mix, run_session,
                            session_start_seconds, unpopular_channel_mix)


class TestMixes:
    def test_popular_mix_is_tele_dominated(self):
        mix = popular_channel_mix()
        assert (mix.category_share(ISPCategory.TELE)
                > 2 * mix.category_share(ISPCategory.FOREIGN))
        assert (mix.category_share(ISPCategory.TELE)
                > mix.category_share(ISPCategory.CNC))

    def test_unpopular_mix_cnc_comparable_to_tele(self):
        mix = unpopular_channel_mix()
        tele = mix.category_share(ISPCategory.TELE)
        cnc = mix.category_share(ISPCategory.CNC)
        assert cnc >= tele  # paper: "the number from CNC is even a bit larger"
        assert abs(tele - cnc) < 0.1

    def test_sampling_matches_weights(self):
        mix = popular_channel_mix()
        catalog = default_isp_catalog()
        rng = random.Random(7)
        draws = [mix.sample_viewer(catalog, rng)[0].category
                 for _ in range(3000)]
        tele_share = draws.count(ISPCategory.TELE) / len(draws)
        assert abs(tele_share - mix.category_share(ISPCategory.TELE)) < 0.05

    def test_mix_for_lookup(self):
        assert mix_for("popular").name == "popular"
        assert mix_for("unpopular").name == "unpopular"
        with pytest.raises(ValueError):
            mix_for("nope")


class TestChurn:
    def test_session_durations_bounded_below(self):
        model = ChurnModel(min_session=60.0)
        rng = random.Random(1)
        assert all(model.sample_session(rng) >= 60.0 for _ in range(200))

    def test_median_roughly_respected(self):
        model = ChurnModel(median_session=1000.0, session_sigma=0.5,
                           min_session=1.0)
        rng = random.Random(2)
        values = sorted(model.sample_session(rng) for _ in range(999))
        assert 800 < values[len(values) // 2] < 1250

    def test_population_manager_reaches_target(self):
        sim = Simulator(seed=3)
        spawned = []

        class FakeViewer:
            def leave(self):
                pass

            def crash(self):
                pass

        manager = PopulationManager(
            sim, target_size=20,
            spawn_viewer=lambda: spawned.append(FakeViewer()) or spawned[-1],
            ramp_seconds=50.0)
        manager.start()
        sim.run_until(60.0)
        assert manager.active_count == 20

    def test_departures_replaced(self):
        sim = Simulator(seed=4)

        class FakeViewer:
            def leave(self):
                pass

            def crash(self):
                pass

        churn = ChurnModel(median_session=30.0, session_sigma=0.3,
                           min_session=10.0)
        manager = PopulationManager(sim, target_size=10,
                                    spawn_viewer=FakeViewer,
                                    churn=churn, ramp_seconds=10.0)
        manager.start()
        sim.run_until(300.0)
        assert manager.total_departed > 0
        # Replacements keep the audience near the target.
        assert 5 <= manager.active_count <= 12

    def test_stop_ends_replacement(self):
        sim = Simulator(seed=5)

        class FakeViewer:
            def leave(self):
                pass

            def crash(self):
                pass

        churn = ChurnModel(median_session=20.0, session_sigma=0.2,
                           min_session=10.0)
        manager = PopulationManager(sim, target_size=5,
                                    spawn_viewer=FakeViewer,
                                    churn=churn, ramp_seconds=5.0)
        manager.start()
        sim.run_until(50.0)
        manager.stop()
        sim.run_until(500.0)
        assert manager.active_count == 0


class TestDiurnal:
    def test_peak_at_evening(self):
        pattern = DiurnalPattern()
        peak = pattern.factor(session_start_seconds(2, 20.5))
        trough = pattern.factor(session_start_seconds(2, 5.0))
        assert peak > trough
        assert trough >= pattern.trough_level * 0.9

    def test_weekend_boost(self):
        pattern = DiurnalPattern(weekend_boost=1.5)
        # Day 0 is a Saturday, day 2 a Monday.
        weekend = pattern.factor(session_start_seconds(0, 20.5))
        weekday = pattern.factor(session_start_seconds(2, 20.5))
        assert weekend > weekday

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPattern(trough_level=0.0)
        with pytest.raises(ValueError):
            DiurnalPattern(weekend_boost=0.5)
        with pytest.raises(ValueError):
            session_start_seconds(-1)
        with pytest.raises(ValueError):
            session_start_seconds(0, 25.0)


class TestScenario:
    @pytest.fixture(scope="class")
    def session(self):
        return run_session(ScenarioConfig(
            seed=9, population=18, duration=240.0, warmup=100.0))

    def test_probe_trace_nonempty(self, session):
        probe = session.probe()
        assert len(probe.trace) > 50

    def test_probe_downloads_data(self, session):
        probe = session.probe()
        assert len(probe.report.data) > 0
        assert sum(t.payload_bytes for t in probe.report.data) > 0

    def test_infrastructure_addresses_known(self, session):
        infra = session.infrastructure
        assert len(infra) == 7  # bootstrap + 5 trackers + source

    def test_probe_is_tele_by_default(self, session):
        category = session.directory.category_of(session.probe().address)
        assert category is ISPCategory.TELE

    def test_deterministic_for_seed(self):
        config = ScenarioConfig(seed=13, population=8, duration=120.0,
                                warmup=60.0)
        a = run_session(config)
        b = run_session(config)
        assert len(a.probe().trace) == len(b.probe().trace)
        assert a.probe().address == b.probe().address
        assert (len(a.probe().report.data)
                == len(b.probe().report.data))

    def test_multi_probe(self):
        from repro.workload.scenario import MASON_PROBE, TELE_PROBE
        result = run_session(ScenarioConfig(
            seed=5, population=10, duration=120.0, warmup=60.0,
            probes=(TELE_PROBE, MASON_PROBE)))
        assert set(result.probes) == {"tele-probe", "mason-probe"}
        mason = result.probe("mason-probe")
        assert (result.directory.category_of(mason.address)
                is ISPCategory.FOREIGN)
        with pytest.raises(ValueError):
            result.probe()  # ambiguous

    def test_unpopular_popularity_flag(self):
        result = run_session(ScenarioConfig(
            seed=5, population=8, duration=120.0, warmup=60.0,
            mix=unpopular_channel_mix(),
            popularity=Popularity.UNPOPULAR))
        assert result.deployment.channel.popularity is Popularity.UNPOPULAR
