"""The chaos experiment: recovery measurement and --jobs determinism."""

import pytest

from repro.experiments.base import SCALE_PARAMS, Scale
from repro.experiments.chaos import (BinSample, ChaosRun,
                                     CONTINUITY_TOLERANCE, FaultReport,
                                     _recovery_time, build_reports,
                                     chaos_params, demo_schedule,
                                     run_chaos, window_stats)
from repro.experiments.registry import (ALL_EXPERIMENT_IDS,
                                        EXPERIMENT_DESCRIPTIONS)
from repro.faults import FaultSchedule
from repro.obs import Instrumentation, MetricsRegistry, MemorySpanSink


# ----------------------------------------------------------------------
# Cheap unit coverage (no sessions)
# ----------------------------------------------------------------------
def make_run(bins, **overrides):
    fields = dict(bins=tuple(bins), overall_continuity=1.0,
                  overall_locality=0.5, probe_startup_delay=10.0,
                  total_rebootstraps=0, total_crashed=0,
                  faults_begun=0, faults_ended=0)
    fields.update(overrides)
    return ChaosRun(**fields)


def sample(time, continuity, locality=0.5):
    return BinSample(time=time, continuity=continuity, locality=locality,
                     startup_mean=None, startup_count=0, viewers=10)


class TestRecoveryTime:
    def test_immediate_recovery(self):
        baseline = make_run([sample(t, 1.0) for t in (110, 120, 130)])
        faulted = make_run([sample(t, 1.0) for t in (110, 120, 130)])
        assert _recovery_time(faulted, baseline, 100.0, 130.0) == 10.0

    def test_degraded_then_healed(self):
        times = (110, 120, 130, 140, 150)
        baseline = make_run([sample(t, 1.0) for t in times])
        # A degraded first bin pulls the cumulative mean down; the tail
        # only passes once enough clean bins accumulate: cumulative
        # means 0.5, 0.75, 0.833, 0.875 — first >= 0.85 at t=140.
        faulted = make_run([sample(110, 0.5)]
                           + [sample(t, 1.0) for t in times[1:]])
        recovery = _recovery_time(faulted, baseline, 100.0, 150.0)
        assert recovery == 40.0

    def test_never_recovers(self):
        times = (110, 120, 130, 140)
        baseline = make_run([sample(t, 1.0) for t in times])
        floor = 1.0 - 2 * CONTINUITY_TOLERANCE
        faulted = make_run([sample(t, floor) for t in times])
        assert _recovery_time(faulted, baseline, 100.0, 140.0) is None

    def test_locality_alone_can_block_recovery(self):
        times = (110, 120, 130)
        baseline = make_run([sample(t, 1.0, locality=0.9)
                             for t in times])
        faulted = make_run([sample(t, 1.0, locality=0.1)
                            for t in times])
        assert _recovery_time(faulted, baseline, 100.0, 130.0) is None


class TestWindows:
    def test_window_stats_means(self):
        run = make_run([sample(10, 0.5, locality=0.2),
                        sample(20, 1.0, locality=0.4),
                        sample(30, None, locality=None)])
        stats = window_stats(run, 0.0, 30.0)
        assert stats.continuity == pytest.approx(0.75)
        assert stats.locality == pytest.approx(0.3)
        assert stats.viewers_mean == pytest.approx(10.0)
        empty = window_stats(run, 100.0, 200.0)
        assert empty.continuity is None

    def test_after_window_truncated_at_next_fault(self):
        params = chaos_params(Scale.SMALL, seed=7)
        schedule = demo_schedule(params.warmup, params.duration)
        bins = [sample(float(t), 1.0)
                for t in range(15, int(params.end_time) + 1, 15)]
        reports = build_reports(schedule, make_run(bins), make_run(bins),
                                params)
        by_start = sorted(schedule.events, key=lambda e: e.start)
        for report, nxt in zip(
                sorted(reports, key=lambda r: r.start), by_start[1:]):
            after = [b.time for b in make_run(bins).bins_between(
                report.end, nxt.start)]
            # Every report recovered within its own horizon, before the
            # next fault begins.
            assert report.recovery_time is not None
            assert report.end + report.recovery_time <= nxt.start + 1e-9
            assert after  # the storm leaves a gap to measure in


class TestScheduleScaling:
    def test_demo_schedule_fits_session(self):
        params = chaos_params(Scale.SMALL, seed=7)
        schedule = demo_schedule(params.warmup, params.duration)
        assert len(schedule) == 4
        kinds = {event.KIND for event in schedule}
        assert kinds == {"server_outage", "flash_crowd", "peer_blackout",
                         "link_degradation"}
        for event in schedule:
            assert params.warmup <= event.start < params.end_time
            assert event.end <= params.end_time

    def test_bin_seconds_floor(self):
        small = chaos_params(Scale.SMALL, seed=7)
        assert small.bin_seconds == 15.0
        assert chaos_params(Scale.SMALL, seed=7,
                            bin_seconds=40.0).bin_seconds == 40.0
        full = SCALE_PARAMS[Scale.DEFAULT]
        assert chaos_params(Scale.DEFAULT, seed=7).bin_seconds == \
            pytest.approx(max(15.0, full.duration / 28.0))


class TestRegistry:
    def test_chaos_registered(self):
        assert "chaos" in ALL_EXPERIMENT_IDS
        assert "chaos" in EXPERIMENT_DESCRIPTIONS


# ----------------------------------------------------------------------
# Full experiment runs (slow; shared module-scoped results)
# ----------------------------------------------------------------------
def instrumented():
    return Instrumentation(metrics=MetricsRegistry(),
                           spans=MemorySpanSink())


@pytest.fixture(scope="module")
def serial_result():
    obs = instrumented()
    result = run_chaos(scale=Scale.SMALL, instrumentation=obs, jobs=1)
    return result, obs


@pytest.fixture(scope="module")
def parallel_result():
    obs = instrumented()
    result = run_chaos(scale=Scale.SMALL, instrumentation=obs, jobs=2)
    return result, obs


class TestChaosRecovery:
    def test_every_fault_recovers(self, serial_result):
        result, _ = serial_result
        for report in result.reports:
            assert report.recovered, \
                f"{report.name} never recovered: {result.render()}"
        assert result.all_recovered

    def test_faults_all_fired_and_ended(self, serial_result):
        result, _ = serial_result
        assert result.faulted.faults_begun == 4
        assert result.faulted.faults_ended == 4
        assert result.baseline.faults_begun == 0
        assert result.baseline.total_crashed == 0

    def test_recovery_paths_exercised(self, serial_result):
        result, _ = serial_result
        # Tracker outage forced automatic re-bootstraps...
        assert result.faulted.total_rebootstraps > 0
        assert result.baseline.total_rebootstraps == 0
        # ...and the blackout actually crashed CNC viewers.
        assert result.faulted.total_crashed > 0

    def test_faults_visibly_hurt(self, serial_result):
        # The storm is not a no-op: at least one during-window is worse
        # than its before-window (otherwise recovery proves nothing).
        result, _ = serial_result
        drops = [report.before.continuity - report.during.continuity
                 for report in result.reports
                 if report.before.continuity is not None
                 and report.during.continuity is not None]
        assert drops and max(drops) > 0.0

    def test_render_mentions_recovery(self, serial_result):
        result, _ = serial_result
        text = result.render()
        assert "recovery" in text
        assert "4/4 recovered" in text

    def test_committed_example_script_recovers(self):
        schedule = FaultSchedule.load("examples/faults/chaos_demo.json")
        result = run_chaos(schedule=schedule, scale=Scale.SMALL)
        assert len(result.reports) == 2
        assert result.all_recovered, result.render()
        assert result.faulted.total_rebootstraps > 0


class TestChaosObservability:
    def test_chaos_metrics_emitted(self, serial_result):
        result, obs = serial_result
        names = {m.name for m in obs.metrics}
        assert {"chaos.continuity_baseline", "chaos.continuity_faulted",
                "chaos.locality_baseline", "chaos.locality_faulted",
                "chaos.rebootstraps", "chaos.faults",
                "chaos.faults_recovered",
                "chaos.recovery_seconds"} <= names
        recovered = [m for m in obs.metrics
                     if m.name == "chaos.faults_recovered"]
        assert sum(m.value for m in recovered) == len(result.reports)

    def test_chaos_spans_emitted(self, serial_result):
        result, obs = serial_result
        chaos_spans = obs.spans.by_category("chaos")
        windowed = [s for s in chaos_spans if s.end > s.start]
        instants = [s for s in chaos_spans if s.end == s.start]
        # Three windowed faults + the instantaneous blackout.
        assert len(windowed) == 3
        assert len(instants) == 1
        assert instants[0].name == "fault:peer_blackout"


class TestJobsEquivalence:
    def test_results_identical_across_jobs(self, serial_result,
                                           parallel_result):
        serial, _ = serial_result
        parallel, _ = parallel_result
        # Dataclass equality covers every bin sample, window stat and
        # recovery time of both runs.
        assert serial.baseline == parallel.baseline
        assert serial.faulted == parallel.faulted
        assert serial.reports == parallel.reports
        assert serial.render() == parallel.render()

    def test_metrics_identical_across_jobs(self, serial_result,
                                           parallel_result):
        _, serial_obs = serial_result
        _, parallel_obs = parallel_result
        serial_records = sorted(
            str(m.to_record()) for m in serial_obs.metrics
            if m.name.startswith("chaos."))
        parallel_records = sorted(
            str(m.to_record()) for m in parallel_obs.metrics
            if m.name.startswith("chaos."))
        assert serial_records == parallel_records

    def test_spans_identical_across_jobs(self, serial_result,
                                         parallel_result):
        _, serial_obs = serial_result
        _, parallel_obs = parallel_result

        def shape(obs):
            return [(s.name, s.category, s.start, s.end, s.attrs)
                    for s in obs.spans.spans]

        assert shape(serial_obs) == shape(parallel_obs)
