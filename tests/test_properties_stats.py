"""Property-based tests on the statistics and pool invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import gini_coefficient
from repro.protocol.peerlist import CandidatePool, ListSource
from repro.stats import (fit_stretched_exponential, fit_zipf,
                         top_fraction_share)

positive_floats = st.floats(0.01, 1e6, allow_nan=False,
                            allow_infinity=False)


class TestStatProperties:
    @given(st.lists(positive_floats, min_size=2, max_size=100),
           st.floats(1.1, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_gini_scale_invariant(self, values, factor):
        base = gini_coefficient(values)
        scaled = gini_coefficient([v * factor for v in values])
        assert math.isclose(base, scaled, abs_tol=1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_gini_bounds(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g < 1.0

    @given(st.floats(0.2, 2.5), st.integers(20, 300))
    @settings(max_examples=40, deadline=None)
    def test_zipf_alpha_recovered(self, alpha, n):
        values = [100000.0 * r ** -alpha for r in range(1, n + 1)]
        assume(min(values) > 0)
        fit = fit_zipf(values)
        assert math.isclose(fit.alpha, alpha, rel_tol=0.05, abs_tol=0.02)
        assert fit.r_squared > 0.999

    @given(st.lists(positive_floats, min_size=3, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_top_share_monotone_in_fraction(self, values):
        small = top_fraction_share(values, 0.10)
        large = top_fraction_share(values, 0.50)
        assert large >= small - 1e-9
        assert top_fraction_share(values, 1.0) == pytest.approx(1.0)

    @given(st.lists(positive_floats, min_size=5, max_size=150),
           st.floats(1.1, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_se_fit_c_scale_invariant_in_shape(self, values, factor):
        """Scaling the data does not change which c the grid picks
        dramatically (the transform is monotone)."""
        try:
            base = fit_stretched_exponential(values)
            scaled = fit_stretched_exponential([v * factor
                                                for v in values])
        except ValueError:
            return
        # R^2 quality is preserved under scaling within tolerance.
        assert abs(base.r_squared - scaled.r_squared) < 0.2


class TestCandidatePoolProperties:
    @given(st.lists(st.tuples(st.integers(1, 40), st.floats(0, 1000)),
                    min_size=1, max_size=300),
           st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, sightings, capacity):
        pool = CandidatePool("9.9.9.9", capacity=capacity)
        for host_id, now in sightings:
            pool.add(f"1.0.0.{host_id}", now, ListSource.TRACKER)
        assert len(pool) <= capacity

    @given(st.lists(st.integers(1, 60), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_peer_list_no_duplicates_and_within_limit(self, host_ids):
        pool = CandidatePool("9.9.9.9", capacity=500)
        for index, host_id in enumerate(host_ids):
            pool.add(f"1.0.0.{host_id}", float(index),
                     ListSource.NEIGHBOR)
        neighbors = [f"2.0.0.{i}" for i in range(1, 6)]
        out = pool.build_peer_list(neighbors, limit=60, now=1e6)
        assert len(out) == len(set(out))
        assert len(out) <= 60
        assert out[:5] == neighbors
