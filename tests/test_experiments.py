"""Tests for the experiment drivers at SMALL scale.

These validate that every figure driver runs end to end, renders, and
produces internally consistent numbers; paper-shape assertions are kept
loose because SMALL-scale sessions are short and noisy (the benchmark
suite exercises the shapes at DEFAULT scale).
"""

import pytest

from repro.experiments import (ALL_EXPERIMENT_IDS, Scale, WorkloadBank,
                               build_config, build_table1,
                               contribution_figure, locality_figure,
                               response_figure, rtt_figure, run_experiment)
from repro.network.isp import ISPCategory, ResponseGroup
from repro.streaming.video import Popularity


@pytest.fixture(scope="module")
def bank():
    return WorkloadBank()


@pytest.fixture(scope="module")
def tele_popular(bank):
    return bank.tele_popular(scale=Scale.SMALL, seed=5)


@pytest.fixture(scope="module")
def mason_unpopular(bank):
    return bank.mason_unpopular(scale=Scale.SMALL, seed=5)


class TestWorkloadBank:
    def test_sessions_memoised(self, bank, tele_popular):
        again = bank.tele_popular(scale=Scale.SMALL, seed=5)
        assert again is tele_popular

    def test_build_config_scales(self):
        from repro.experiments.base import WorkloadKey
        small = build_config(WorkloadKey("tele", Popularity.POPULAR,
                                         Scale.SMALL, 1))
        full = build_config(WorkloadKey("tele", Popularity.POPULAR,
                                        Scale.FULL, 1))
        assert small.population < full.population
        assert small.duration < full.duration

    def test_unknown_probe_rejected(self):
        from repro.experiments.base import WorkloadKey
        with pytest.raises(ValueError):
            build_config(WorkloadKey("nowhere", Popularity.POPULAR,
                                     Scale.SMALL, 1))


class TestLocalityFigure:
    def test_fig02_shape(self, tele_popular):
        fig = locality_figure(tele_popular, "fig02", "test")
        assert fig.breakdown.probe_category is ISPCategory.TELE
        assert fig.breakdown.returned_total > 0
        assert 0.0 <= fig.breakdown.locality <= 1.0
        text = fig.render()
        assert "fig02" in text
        assert "traffic locality" in text

    def test_fig05_probe_is_foreign(self, mason_unpopular):
        fig = locality_figure(mason_unpopular, "fig05", "test")
        assert fig.breakdown.probe_category is ISPCategory.FOREIGN

    def test_shares_sum_to_one(self, tele_popular):
        fig = locality_figure(tele_popular, "fig02", "test")
        bytes_total = fig.breakdown.bytes_total
        if bytes_total:
            assert (sum(fig.breakdown.bytes.values())
                    == pytest.approx(bytes_total))


class TestResponseFigure:
    def test_fig07_renders_with_averages(self, tele_popular):
        fig = response_figure(tele_popular, "fig07", "test")
        counted = [g for g in ResponseGroup if fig.series[g].count > 0]
        assert counted  # some peer-list replies matched
        assert "avg resp" in fig.render()

    def test_averages_count_everything_clip_only_display(self,
                                                         tele_popular):
        fig = response_figure(tele_popular, "fig07", "test")
        for group in ResponseGroup:
            series = fig.series[group]
            assert len(series.clipped()) <= series.count


class TestTable1:
    def test_four_rows(self, bank):
        table = build_table1(
            bank.tele_popular(Scale.SMALL, 5),
            bank.tele_unpopular(Scale.SMALL, 5),
            bank.mason_popular(Scale.SMALL, 5),
            bank.mason_unpopular(Scale.SMALL, 5))
        assert set(table.rows) == {"TELE-Popular", "TELE-Unpopular",
                                   "Mason-Popular", "Mason-Unpopular"}
        text = table.render()
        assert "TELE peers" in text


class TestContributionFigure:
    def test_fig11_panels(self, tele_popular):
        fig = contribution_figure(tele_popular, "fig11", "test")
        analysis = fig.analysis
        assert analysis.connected_unique > 0
        assert analysis.connected_unique <= fig.unique_listed
        if analysis.top10_byte_share is not None:
            assert 0.0 < analysis.top10_byte_share <= 1.0
        assert "top 10%" in fig.render()

    def test_request_ranks_descending(self, tele_popular):
        fig = contribution_figure(tele_popular, "fig11", "test")
        ranks = fig.analysis.request_ranks
        assert ranks == sorted(ranks, reverse=True)


class TestRttFigure:
    def test_fig15_consistency(self, tele_popular):
        fig = rtt_figure(tele_popular, "fig15", "test")
        analysis = fig.analysis
        assert len(analysis.peers) == len(analysis.rtts)
        assert all(rtt > 0 for rtt in analysis.rtts)
        assert analysis.request_counts == sorted(analysis.request_counts,
                                                 reverse=True)
        assert "correlation" in fig.render() or not analysis.correlation


class TestRegistry:
    def test_all_ids_known(self):
        assert "fig02" in ALL_EXPERIMENT_IDS
        assert "table1" in ALL_EXPERIMENT_IDS
        assert "chaos" in ALL_EXPERIMENT_IDS
        assert "resilience" in ALL_EXPERIMENT_IDS
        assert len(ALL_EXPERIMENT_IDS) == 20

    def test_run_experiment_uses_bank(self, bank):
        fig = run_experiment("fig11", bank=bank, scale=Scale.SMALL, seed=5)
        assert fig.figure_id == "fig11"

    def test_unknown_id_rejected(self, bank):
        with pytest.raises(ValueError):
            run_experiment("fig99", bank=bank)
