"""Unit tests for the deterministic RNG substreams and variate helpers."""

import random

import pytest

from repro.sim.random import (RandomRouter, bounded_normal, derive_seed,
                              exponential, lognormal_from_median, pareto,
                              sample_without_replacement, shuffled,
                              weighted_choice)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        value = derive_seed(123456, "stream-name")
        assert 0 <= value < 2 ** 64


class TestRouter:
    def test_stream_cached(self):
        router = RandomRouter(0)
        assert router.stream("x") is router.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        router_a = RandomRouter(7)
        sequence_before = [router_a.stream("x").random() for _ in range(5)]

        router_b = RandomRouter(7)
        router_b.stream("y").random()  # extra draw on another stream
        sequence_after = [router_b.stream("x").random() for _ in range(5)]
        assert sequence_before == sequence_after

    def test_fork_is_deterministic(self):
        a = RandomRouter(3).fork("node").stream("s").random()
        b = RandomRouter(3).fork("node").stream("s").random()
        assert a == b


class TestVariates:
    def setup_method(self):
        self.rng = random.Random(99)

    def test_exponential_positive(self):
        values = [exponential(self.rng, 2.0) for _ in range(200)]
        assert all(v > 0 for v in values)
        mean = sum(values) / len(values)
        assert 1.4 < mean < 2.8  # loose CLT bound

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            exponential(self.rng, 0.0)

    def test_bounded_normal_clamped(self):
        values = [bounded_normal(self.rng, 0.0, 10.0, -1.0, 1.0)
                  for _ in range(100)]
        assert all(-1.0 <= v <= 1.0 for v in values)

    def test_bounded_normal_empty_interval(self):
        with pytest.raises(ValueError):
            bounded_normal(self.rng, 0.0, 1.0, 2.0, 1.0)

    def test_pareto_minimum(self):
        values = [pareto(self.rng, 2.0, 5.0) for _ in range(100)]
        assert all(v >= 5.0 for v in values)

    def test_pareto_rejects_bad_params(self):
        with pytest.raises(ValueError):
            pareto(self.rng, 0.0, 1.0)

    def test_lognormal_median(self):
        values = sorted(lognormal_from_median(self.rng, 10.0, 0.5)
                        for _ in range(999))
        median = values[len(values) // 2]
        assert 8.0 < median < 12.5

    def test_lognormal_rejects_bad_median(self):
        with pytest.raises(ValueError):
            lognormal_from_median(self.rng, -1.0, 0.5)


class TestChoices:
    def setup_method(self):
        self.rng = random.Random(5)

    def test_weighted_choice_respects_zero_weight(self):
        for _ in range(100):
            choice = weighted_choice(self.rng, ["a", "b"], [1.0, 0.0])
            assert choice == "a"

    def test_weighted_choice_distribution(self):
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(self.rng, ["a", "b"], [3.0, 1.0])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.2 < ratio < 4.2

    def test_weighted_choice_rejects_mismatch(self):
        with pytest.raises(ValueError):
            weighted_choice(self.rng, ["a"], [1.0, 2.0])

    def test_weighted_choice_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice(self.rng, ["a", "b"], [0.0, 0.0])

    def test_weighted_choice_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_choice(self.rng, ["a", "b"], [2.0, -1.0])

    def test_sample_without_replacement_distinct(self):
        sample = sample_without_replacement(self.rng, list(range(20)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_caps_at_population(self):
        sample = sample_without_replacement(self.rng, [1, 2, 3], 10)
        assert sorted(sample) == [1, 2, 3]

    def test_sample_zero(self):
        assert sample_without_replacement(self.rng, [1, 2], 0) == []

    def test_shuffled_preserves_input(self):
        items = [1, 2, 3, 4]
        result = sorted(shuffled(self.rng, items))
        assert result == items
        assert items == [1, 2, 3, 4]
