"""Traffic-flow telemetry: ledger, sketch, artifact, and the contracts.

The load-bearing guarantees, each pinned here:

* the ledger's totals equal the transport's delivered counters exactly,
* flow accounting never changes simulation results (tap neutrality),
* the ledger's transit-byte share equals the post-hoc analysis number
  *exactly* (same integers, same expression) on the seed-11 golden
  campaign,
* the ``--flows`` artifact is byte-identical across ``--jobs {1,2}``
  and across checkpoint/resume,
* snapshots are JSON fixed points so checkpoints restore losslessly.
"""

import dataclasses
import io
import json

import pytest

from repro.analysis import transit_byte_share
from repro.checkpoint import CheckpointError, CheckpointPolicy
from repro.cli import main
from repro.network.datagram import HEADER_BYTES
from repro.obs import (FLOWS_VERSION, FlowLedger, FlowSpec, FlowsWriter,
                       Instrumentation, SpaceSavingSketch,
                       flows_summary_payload, intra_share,
                       merge_flow_payloads, read_flows,
                       render_flow_matrix, render_flow_summary,
                       render_flow_top, render_flow_windows,
                       summarize_flows, transit_share,
                       validate_flow_payload)
from repro.workload.campaign import CampaignConfig, run_campaign
from repro.workload.scenario import ScenarioConfig, SessionScenario

SPEC = FlowSpec(window=30.0, top_k=16)

TINY = CampaignConfig(seed=11, days=2, popular_population=10,
                      unpopular_population=6, session_duration=120.0,
                      warmup=60.0, flows=SPEC)

#: The golden campaign shape used by tests/test_campaign_goldens.py.
GOLDEN = CampaignConfig(seed=11, days=3, popular_population=10,
                        unpopular_population=6, session_duration=120.0,
                        warmup=60.0, flows=SPEC)


def _tiny_session(**overrides) -> ScenarioConfig:
    config = ScenarioConfig(seed=3, population=12, warmup=30.0,
                            duration=60.0, flows=SPEC)
    return dataclasses.replace(config, **overrides)


# ----------------------------------------------------------------------
# Space-saving sketch
# ----------------------------------------------------------------------
class TestSpaceSavingSketch:
    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(4)
        sketch.add("a", 10)
        sketch.add("b", 5)
        sketch.add("a", 1)
        assert sketch.items() == [["a", 11, 0], ["b", 5, 0]]

    def test_eviction_inherits_the_victim_count(self):
        sketch = SpaceSavingSketch(2)
        sketch.add("a", 10)
        sketch.add("b", 3)
        sketch.add("c", 1)  # evicts b (min count) -> count 4, error 3
        assert sketch.items() == [["a", 10, 0], ["c", 4, 3]]

    def test_eviction_ties_break_by_key_not_insertion_order(self):
        first = SpaceSavingSketch(2)
        for key in ("b", "a"):
            first.add(key, 5)
        second = SpaceSavingSketch(2)
        for key in ("a", "b"):
            second.add(key, 5)
        first.add("z", 1)
        second.add("z", 1)
        # Both evict "a" (the tie's smallest key), whatever arrived first.
        assert first.items() == second.items()

    def test_below_capacity_insertion_order_is_irrelevant(self):
        additions = [("a", 7), ("b", 3), ("c", 9), ("d", 2), ("e", 5)]
        forward = SpaceSavingSketch(8)
        for key, amount in additions:
            forward.add(key, amount)
        backward = SpaceSavingSketch(8)
        for key, amount in reversed(additions):
            backward.add(key, amount)
        # Under capacity the sketch is exact, so order cannot show.
        assert forward.items() == backward.items()

    def test_eviction_conserves_total_count_mass(self):
        # The space-saving invariant: an eviction transfers the victim's
        # count to the newcomer, so the summed counts always equal the
        # summed additions — whatever order they arrived in.
        additions = [("a", 7), ("b", 3), ("c", 9), ("d", 2), ("e", 5)]
        for ordering in (additions, list(reversed(additions))):
            sketch = SpaceSavingSketch(3)
            for key, amount in ordering:
                sketch.add(key, amount)
            assert sum(row[1] for row in sketch.items()) == \
                sum(amount for _key, amount in additions)

    def test_merged_items_truncates_to_capacity(self):
        rows_a = [["a", 10, 0], ["b", 2, 0]]
        rows_b = [["b", 4, 1], ["c", 3, 0]]
        merged = SpaceSavingSketch.merged_items(2, [rows_a, rows_b])
        assert merged == [["a", 10, 0], ["b", 6, 1]]

    def test_load_items_over_capacity_rejected(self):
        sketch = SpaceSavingSketch(1)
        with pytest.raises(ValueError, match="over the"):
            sketch.load_items([["a", 1, 0], ["b", 1, 0]])


# ----------------------------------------------------------------------
# Ledger accounting (direct record() calls; no simulation)
# ----------------------------------------------------------------------
class TestFlowLedgerDirect:
    @pytest.fixture()
    def deployment(self):
        from repro.network.builder import build_internet
        from repro.sim import Simulator
        sim = Simulator(seed=1)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        cnc = internet.catalog.by_name("ChinaNetcom")
        comcast = internet.catalog.by_name("Comcast")
        addresses = {
            "tele1": internet.allocator.allocate(tele),
            "tele2": internet.allocator.allocate(tele),
            "cnc": internet.allocator.allocate(cnc),
            "us": internet.allocator.allocate(comcast),
        }
        return internet, addresses

    def test_scope_classification(self, deployment):
        internet, addr = deployment
        ledger = FlowLedger(internet.directory, internet.catalog, SPEC)
        ledger.record(addr["tele1"], addr["tele2"], "Chunk", 100, 1.0)
        ledger.record(addr["tele1"], addr["cnc"], "Chunk", 50, 2.0)
        ledger.record(addr["tele1"], addr["us"], "Chunk", 25, 3.0)
        ledger.finish(4.0)
        assert ledger.totals == {"bytes": 175, "datagrams": 3,
                                 "intra_bytes": 100, "transit_bytes": 50,
                                 "transoceanic_bytes": 25}
        assert intra_share(ledger.totals) == 100 / 175
        assert transit_share(ledger.totals) == 75 / 175

    def test_matrix_cells_by_isp_and_kind(self, deployment):
        internet, addr = deployment
        ledger = FlowLedger(internet.directory, internet.catalog, SPEC)
        ledger.record(addr["tele1"], addr["cnc"], "Chunk", 10, 0.0)
        ledger.record(addr["tele2"], addr["cnc"], "Chunk", 20, 0.0)
        ledger.record(addr["tele1"], addr["cnc"], "Ping", 5, 0.0)
        state = ledger.snapshot_state()
        assert state["matrix"] == [
            ["ChinaTelecom", "ChinaNetcom", "Chunk", "transit", 30, 2],
            ["ChinaTelecom", "ChinaNetcom", "Ping", "transit", 5, 1],
        ]

    def test_windows_key_to_sim_time(self, deployment):
        internet, addr = deployment
        ledger = FlowLedger(internet.directory, internet.catalog,
                            FlowSpec(window=10.0, top_k=4))
        ledger.record(addr["tele1"], addr["tele2"], "Chunk", 7, 3.0)
        ledger.record(addr["tele1"], addr["tele2"], "Chunk", 9, 12.0)
        # Sparse: nothing lands in [20, 30), so no empty row appears.
        ledger.record(addr["tele1"], addr["cnc"], "Chunk", 4, 31.0)
        ledger.finish(40.0)
        state = ledger.snapshot_state()
        assert [row[0] for row in state["windows"]] == [0, 1, 3]
        index0 = state["windows"][0]
        assert index0[1] == 7 and index0[3] == 7  # bytes, intra
        tele_in_out = index0[6]["ChinaTelecom"]
        assert tele_in_out == [7, 7]  # same-ISP: in and out both count
        assert state["open_window"] is None

    def test_heartbeat_fields_sorted_and_rounded(self, deployment):
        internet, addr = deployment
        ledger = FlowLedger(internet.directory, internet.catalog,
                            FlowSpec(window=10.0, top_k=4))
        ledger.record(addr["tele1"], addr["cnc"], "Chunk", 300, 5.0)
        ledger.record(addr["tele1"], addr["tele2"], "Chunk", 100, 15.0)
        fields = ledger.heartbeat_fields()
        assert list(fields) == sorted(fields)
        assert fields["bytes"] == 400
        assert fields["transit_bytes"] == 300
        # Last *closed* window is index 0 (all transit): 300B over 10s.
        assert fields["transit_bps"] == pytest.approx(240.0)

    def test_unresolvable_endpoint_is_counted_not_skewed(self, deployment):
        internet, addr = deployment
        ledger = FlowLedger(internet.directory, internet.catalog, SPEC)
        ledger.record(addr["tele1"], "203.0.113.99", "Chunk", 10, 0.0)
        ledger.finish(1.0)
        assert ledger.totals["bytes"] == 0
        assert ledger.datagrams_ignored == 1


# ----------------------------------------------------------------------
# Snapshot / restore / merge
# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def _ledger_with_traffic(self):
        config = _tiny_session()
        result = SessionScenario(config).run()
        return result

    def test_snapshot_is_a_json_fixed_point(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        assert state == json.loads(json.dumps(state))

    def test_restore_round_trips_exactly(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        restored = FlowLedger(result.directory,
                              result.deployment.internet.catalog, SPEC)
        restored.restore_state(json.loads(json.dumps(state)))
        assert restored.snapshot_state() == state
        assert restored.heartbeat_fields() == \
            result.flows.heartbeat_fields()

    def test_restore_rejects_spec_mismatch(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        other = FlowLedger(result.directory,
                           result.deployment.internet.catalog,
                           FlowSpec(window=5.0, top_k=16))
        with pytest.raises(ValueError, match="window"):
            other.restore_state(state)

    def test_restore_rejects_wrong_version(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        state["version"] = FLOWS_VERSION + 1
        fresh = FlowLedger(result.directory,
                           result.deployment.internet.catalog, SPEC)
        with pytest.raises(ValueError, match="version"):
            fresh.restore_state(state)

    def test_mid_run_snapshot_carries_the_open_window(self):
        from repro.network.builder import build_internet
        from repro.sim import Simulator
        sim = Simulator(seed=1)
        internet = build_internet(sim)
        tele = internet.catalog.by_name("ChinaTelecom")
        a = internet.allocator.allocate(tele)
        b = internet.allocator.allocate(tele)
        ledger = FlowLedger(internet.directory, internet.catalog,
                            FlowSpec(window=10.0, top_k=4))
        ledger.record(a, b, "Chunk", 5, 3.0)  # window 0 still open
        state = ledger.snapshot_state()
        assert state["open_window"] is not None
        assert state["windows"] == []
        restored = FlowLedger(internet.directory, internet.catalog,
                              FlowSpec(window=10.0, top_k=4))
        restored.restore_state(state)
        restored.record(a, b, "Chunk", 7, 12.0)  # rolls window 0 closed
        restored.finish(20.0)
        final = restored.snapshot_state()
        assert [row[0] for row in final["windows"]] == [0, 1]
        assert final["totals"]["bytes"] == 12

    def test_merge_is_order_insensitive_and_sums(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        other = SessionScenario(_tiny_session(seed=4)).run() \
            .flows.snapshot_state()
        ab = merge_flow_payloads([state, other])
        ba = merge_flow_payloads([other, state])
        assert ab == ba
        assert ab["totals"]["bytes"] == (state["totals"]["bytes"]
                                         + other["totals"]["bytes"])
        assert ab == json.loads(json.dumps(ab))

    def test_merge_rejects_mixed_specs(self):
        result = self._ledger_with_traffic()
        state = result.flows.snapshot_state()
        mismatched = json.loads(json.dumps(state))
        mismatched["window"] = state["window"] * 2
        with pytest.raises(ValueError, match="window"):
            merge_flow_payloads([state, mismatched])

    def test_validate_flow_payload_reports_missing_fields(self):
        with pytest.raises(ValueError, match="missing"):
            validate_flow_payload({"version": FLOWS_VERSION,
                                   "window": 30.0, "top_k": 16})


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_totals_match_the_transport_counters_exactly(self):
        result = SessionScenario(_tiny_session()).run()
        udp = result.deployment.internet.udp
        ledger = result.flows
        assert ledger.totals["bytes"] == udp.bytes_delivered
        assert ledger.totals["datagrams"] == udp.datagrams_delivered
        assert ledger.datagrams_ignored == 0
        # And the sink was detached at session end: fast path restored,
        # and the general tap seam was never occupied at all.
        assert udp._flow_sink is None
        assert udp._taps == []

    def test_flow_accounting_never_changes_the_simulation(self):
        with_flows = SessionScenario(_tiny_session()).run()
        without = SessionScenario(_tiny_session(flows=None)).run()
        assert without.flows is None
        assert (with_flows.deployment.sim.events_executed
                == without.deployment.sim.events_executed)
        assert (with_flows.deployment.internet.udp.bytes_delivered
                == without.deployment.internet.udp.bytes_delivered)

    def test_spec_resolves_from_the_instrumentation_bundle(self):
        obs = Instrumentation(flows_spec=SPEC)
        result = SessionScenario(
            _tiny_session(flows=None, instrumentation=obs)).run()
        assert result.flows is not None
        assert result.flows.spec == SPEC

    def test_heartbeats_carry_the_flow_snapshot(self, tmp_path):
        from repro.obs import ProgressBus, read_progress
        path = tmp_path / "p.jsonl"
        obs = Instrumentation(progress_bus=ProgressBus(str(path)))
        SessionScenario(_tiny_session(instrumentation=obs)).run()
        obs.close()
        beats = [r for r in read_progress(str(path))
                 if r["kind"] == "heartbeat"]
        assert beats
        for beat in beats:
            flows = beat["flows"]
            assert list(flows) == sorted(flows)
            assert {"bytes", "intra_share", "transit_bytes"} <= set(flows)


# ----------------------------------------------------------------------
# The golden cross-check: live ledger == post-hoc analysis, exactly
# ----------------------------------------------------------------------
class TestGoldenCrossCheck:
    def test_ledger_transit_share_equals_analysis_exactly(self):
        """Seed-11 golden campaign: per-unit and aggregate equality.

        A session hook attaches an independent full-delivery tap next to
        the ledger; the post-hoc pipeline then recomputes the transit
        byte share from that raw trace.  The two must agree to the last
        bit — same integers in, same expression — unit by unit and on
        the merged campaign totals.
        """
        traces = []

        def capture_hook(sim, deployment, manager, probe_peers):
            deliveries = []
            directory = deployment.internet.directory

            def tap(event, datagram, time):
                if event == "recv":
                    deliveries.append(
                        (datagram.src, datagram.dst,
                         datagram.payload_bytes + HEADER_BYTES))
            deployment.internet.udp.add_tap(tap)
            traces.append((deliveries, directory))

        config = dataclasses.replace(GOLDEN, session_hook=capture_hook)
        result = run_campaign(config)
        units = result.popular + result.unpopular
        assert len(traces) == len(units) == 2 * GOLDEN.days

        total_bytes = 0
        total_intra = 0
        for daily, (deliveries, directory) in zip(units, traces):
            payload = daily.flows
            assert payload is not None
            ledger_share = transit_share(payload["totals"])
            analysis_share = transit_byte_share(deliveries, directory)
            assert ledger_share == analysis_share  # exact, no approx
            assert payload["totals"]["bytes"] == \
                sum(wire for _s, _d, wire in deliveries)
            total_bytes += payload["totals"]["bytes"]
            total_intra += payload["totals"]["intra_bytes"]

        merged = merge_flow_payloads([daily.flows for daily in units])
        assert merged["totals"]["bytes"] == total_bytes
        assert merged["totals"]["intra_bytes"] == total_intra
        all_deliveries = [item for deliveries, _dir in traces
                          for item in deliveries]
        assert transit_share(merged["totals"]) == \
            transit_byte_share(all_deliveries, traces[0][1])


# ----------------------------------------------------------------------
# Campaign artifact determinism
# ----------------------------------------------------------------------
def _run_campaign_artifact(tmp_path, name, jobs=1, checkpoint=None,
                           config=TINY):
    path = tmp_path / f"{name}.jsonl"
    writer = FlowsWriter(str(path), SPEC)
    obs = Instrumentation(flows=writer)
    run_campaign(dataclasses.replace(config, instrumentation=obs),
                 jobs=jobs, checkpoint=checkpoint)
    obs.close()
    return path


class TestCampaignArtifact:
    def test_byte_identical_across_jobs(self, tmp_path):
        serial = _run_campaign_artifact(tmp_path, "serial", jobs=1)
        parallel = _run_campaign_artifact(tmp_path, "parallel", jobs=2)
        assert serial.read_bytes() == parallel.read_bytes()
        records = read_flows(str(serial))
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "flows_header"
        assert kinds[-1] == "flows_summary"
        assert kinds.count("unit_flows") == 2 * TINY.days
        # Units land in canonical campaign order, not completion order.
        units = [r["unit"] for r in records if r["kind"] == "unit_flows"]
        assert units == [{"day": 0, "popularity": "popular"},
                         {"day": 1, "popularity": "popular"},
                         {"day": 0, "popularity": "unpopular"},
                         {"day": 1, "popularity": "unpopular"}]

    def test_byte_identical_across_checkpoint_resume(self, tmp_path):
        plain = _run_campaign_artifact(tmp_path, "plain")
        ckpt = _run_campaign_artifact(
            tmp_path, "ckpt",
            checkpoint=CheckpointPolicy(path=str(tmp_path / "store"),
                                        every=1, resume=False))
        assert plain.read_bytes() == ckpt.read_bytes()
        # Kill one unit and resume: the replayed campaign must emit the
        # same artifact byte for byte.
        (tmp_path / "store" / "units" / "popular-0001.json").unlink()
        resumed = _run_campaign_artifact(
            tmp_path, "resumed",
            checkpoint=CheckpointPolicy(path=str(tmp_path / "store"),
                                        every=1, resume=True))
        assert plain.read_bytes() == resumed.read_bytes()

    def test_resume_without_flow_snapshots_fails_loudly(self, tmp_path):
        bare = dataclasses.replace(TINY, flows=None)
        run_campaign(bare, checkpoint=CheckpointPolicy(
            path=str(tmp_path / "store"), every=1, resume=False))
        with pytest.raises(CheckpointError, match="without "
                                                  "flow accounting"):
            run_campaign(TINY, checkpoint=CheckpointPolicy(
                path=str(tmp_path / "store"), every=1, resume=True))

    def test_summary_footer_matches_recomputed_merge(self, tmp_path):
        path = _run_campaign_artifact(tmp_path, "footer")
        records = read_flows(str(path))
        footer = records[-1]
        assert footer["kind"] == "flows_summary"
        assert footer["units"] == 2 * TINY.days
        assert footer["flows"] == flows_summary_payload(records)


# ----------------------------------------------------------------------
# Writer / reader / renderer / CLI
# ----------------------------------------------------------------------
class TestWriterAndReaders:
    def _payload(self):
        return SessionScenario(_tiny_session()).run() \
            .flows.snapshot_state()

    def test_writer_emits_header_units_footer(self):
        buffer = io.StringIO()
        writer = FlowsWriter(buffer, SPEC)
        payload = self._payload()
        writer.write_unit({"session": "s1"}, payload)
        writer.close()
        records = [json.loads(line) for line
                   in buffer.getvalue().splitlines()]
        assert [r["kind"] for r in records] == [
            "flows_header", "unit_flows", "flows_summary"]
        assert records[0]["version"] == FLOWS_VERSION
        assert records[0]["window"] == SPEC.window
        assert records[1]["unit"] == {"session": "s1"}
        # Single unit: the footer merge is the unit itself (closed).
        assert records[2]["flows"]["totals"] == payload["totals"]

    def test_writer_rejects_spec_mismatched_payloads(self):
        writer = FlowsWriter(io.StringIO(), SPEC)
        payload = self._payload()
        payload["top_k"] = SPEC.top_k + 1
        with pytest.raises(ValueError, match="top_k"):
            writer.write_unit({"session": "bad"}, payload)

    def test_reader_tolerates_a_torn_tail(self, tmp_path):
        path = tmp_path / "f.jsonl"
        writer = FlowsWriter(str(path), SPEC)
        writer.write_unit({"session": "s1"}, self._payload())
        text = path.read_text()
        path.write_text(text[:len(text) - 40])  # tear the last record
        records, tail = read_flows(str(path), with_tail=True)
        assert tail
        assert [r["kind"] for r in records] == ["flows_header"]

    def test_summarize_and_render(self):
        buffer = io.StringIO()
        writer = FlowsWriter(buffer, SPEC)
        payload = self._payload()
        writer.write_unit({"session": "s1"}, payload)
        writer.close()
        buffer.seek(0)
        records = read_flows(buffer)
        summary = summarize_flows(records)
        assert summary["state"] == "finished"
        assert summary["units"] == 1
        assert summary["totals"]["bytes"] == payload["totals"]["bytes"]
        assert 0.0 <= summary["intra_share"] <= 1.0
        assert summary["intra_share"] + summary["transit_share"] \
            == pytest.approx(1.0)
        text = render_flow_summary(summary, source="f.jsonl")
        assert "intra-ISP" in text and "transit" in text
        merged = flows_summary_payload(records)
        matrix = render_flow_matrix(merged)
        assert "ChinaTelecom" in matrix
        by_kind = render_flow_matrix(merged, by_kind=True)
        assert "kind" in by_kind.splitlines()[0]
        windows = render_flow_windows(merged)
        assert "intra%" in windows.splitlines()[0]
        top = render_flow_top(merged, limit=3)
        assert "->" in top

    def test_cli_views(self, tmp_path, capsys):
        path = tmp_path / "f.jsonl"
        writer = FlowsWriter(str(path), SPEC)
        writer.write_unit({"session": "s1"}, self._payload())
        writer.close()
        assert main(["flows", "summary", str(path)]) == 0
        assert "delivered" in capsys.readouterr().out
        assert main(["flows", "matrix", str(path)]) == 0
        assert "scope" in capsys.readouterr().out
        assert main(["flows", "windows", str(path)]) == 0
        capsys.readouterr()
        assert main(["flows", "top", str(path), "--limit", "3"]) == 0
        capsys.readouterr()
        assert main(["flows", "summary", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["version"] == FLOWS_VERSION

    def test_cli_on_torn_only_artifact(self, tmp_path, capsys):
        path = tmp_path / "f.jsonl"
        path.write_text('{"kind":"flows_header","versi')
        assert main(["flows", "summary", str(path)]) == 1
        assert "no complete records" in capsys.readouterr().err

    def test_cli_matrix_without_units(self, tmp_path, capsys):
        path = tmp_path / "f.jsonl"
        FlowsWriter(str(path), SPEC).close()
        assert main(["flows", "matrix", str(path)]) == 1
        assert "no unit flow records" in capsys.readouterr().err

    def test_cli_missing_file(self, tmp_path, capsys):
        assert main(["flows", "summary",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
