"""Tests for per-subsystem wall-time attribution (obs.attribution)."""

from repro.obs.attribution import (LABEL_SUBSYSTEMS, SUBSYSTEMS,
                                   build_attribution, render_attribution,
                                   subsystem_of)
from repro.obs.profiler import EngineProfiler


class TestSubsystemOf:
    def test_exact_labels(self):
        assert subsystem_of("udp-deliver") == "transport"
        assert subsystem_of("tracker-round") == "protocol"
        assert subsystem_of("playback-maintenance") == "playback"
        assert subsystem_of("viewer-arrive") == "workload"
        assert subsystem_of("obs-heartbeat") == "obs"
        assert subsystem_of("chaos-bin") == "analysis"

    def test_prefixes(self):
        assert subsystem_of("fault-server-outage") == "faults"
        assert subsystem_of("spawn:viewer") == "workload"

    def test_unlabelled_and_unknown(self):
        assert subsystem_of("") == "workload"
        assert subsystem_of("timer") == "workload"
        assert subsystem_of("brand-new-label") == "other"

    def test_every_mapped_bucket_is_a_known_subsystem(self):
        for bucket in LABEL_SUBSYSTEMS.values():
            assert bucket in SUBSYSTEMS


def _profiler(labels, phases):
    profiler = EngineProfiler()
    for label, (count, wall) in labels.items():
        for _ in range(count):
            profiler.record(label, wall / count)
    profiler.phases.update(phases)
    return profiler


class TestBuildAttribution:
    def test_buckets_sum_and_coverage(self):
        profiler = _profiler(
            {"udp-deliver": (100, 0.4), "tracker-round": (10, 0.3),
             "gossip-round": (5, 0.1)},
            {"setup": 0.05, "sim": 1.0, "analysis": 0.1})
        attribution = build_attribution(profiler, total_wall_seconds=1.2)
        buckets = attribution["buckets"]
        assert buckets["transport"]["wall_seconds"] == 0.4
        assert buckets["transport"]["events"] == 100
        assert buckets["protocol"]["wall_seconds"] == 0.4
        # Dispatch = sim phase minus callback wall: 1.0 - 0.8 = 0.2.
        assert buckets["engine"]["wall_seconds"] == 0.2
        assert buckets["setup"]["wall_seconds"] == 0.05
        assert buckets["analysis"]["wall_seconds"] == 0.1
        covered = sum(b["wall_seconds"] for b in buckets.values())
        assert attribution["coverage"] == round(
            min(1.0, covered / 1.2), 4)
        assert attribution["coverage"] >= 0.9

    def test_engine_bucket_never_negative(self):
        # Callback wall exceeding the sim phase (measurement jitter)
        # must clamp, not go negative.
        profiler = _profiler({"udp-deliver": (10, 0.5)}, {"sim": 0.4})
        attribution = build_attribution(profiler, 0.5)
        assert attribution["buckets"]["engine"]["wall_seconds"] == 0.0

    def test_buckets_follow_display_order(self):
        profiler = _profiler(
            {"udp-deliver": (1, 0.1), "tracker-round": (1, 0.1),
             "strange": (1, 0.1)},
            {"sim": 0.3, "setup": 0.1})
        names = list(build_attribution(profiler, 0.4)["buckets"])
        assert names == [name for name in SUBSYSTEMS if name in names] \
            or names[-1] == "strange"
        assert "other" in names  # the unmapped label landed somewhere

    def test_shares_against_caller_total(self):
        profiler = _profiler({"udp-deliver": (1, 0.5)}, {"sim": 0.5})
        attribution = build_attribution(profiler, 1.0)
        assert attribution["buckets"]["transport"]["share"] == 0.5
        assert attribution["total_wall_seconds"] == 1.0

    def test_render_smoke(self):
        profiler = _profiler({"udp-deliver": (2, 0.2)}, {"sim": 0.3})
        text = render_attribution(build_attribution(profiler, 0.3))
        assert "transport" in text
        assert "covered" in text
        assert render_attribution(None) == "(no attribution block)"
