"""Adversary models, AdversaryEvent injection, and protocol defenses."""

import pytest

from repro.adversary import (ADVERSARY_BEHAVIORS, BufferMapLiar,
                             ChunkPolluter, FreeRider, RequestFlooder,
                             StalePeerlistResponder, build_adversary)
from repro.faults import AdversaryEvent, FaultSchedule
from repro.network.datagram import Datagram
from repro.protocol import messages as m
from repro.protocol.config import ProtocolConfig
from repro.protocol.peerlist import Candidate, ListSource
from repro.sim import Simulator
from repro.workload.scenario import ScenarioConfig, SessionScenario


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------
class TestModels:
    def test_registry_covers_every_behavior(self):
        for behavior in ADVERSARY_BEHAVIORS:
            model = build_adversary(behavior, seed=1)
            assert model.BEHAVIOR == behavior

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary behavior"):
            build_adversary("meteor", seed=1)

    def test_same_seed_same_stream(self):
        a = ChunkPolluter(seed=5)
        b = ChunkPolluter(seed=5)
        assert [a.serve_action() for _ in range(100)] \
            == [b.serve_action() for _ in range(100)]

    def test_snapshot_restore_resumes_stream(self):
        model = ChunkPolluter(seed=9)
        for _ in range(10):
            model.serve_action()
        state = model.snapshot_state()
        expected = [model.serve_action() for _ in range(20)]
        restored = build_adversary(state["behavior"], state["seed"])
        restored.restore_state(state)
        assert [restored.serve_action() for _ in range(20)] == expected

    def test_free_rider_never_serves(self):
        model = FreeRider(seed=3)
        assert all(model.serve_action() == "miss" for _ in range(50))

    def test_polluter_mostly_poisons(self):
        model = ChunkPolluter(seed=3)
        actions = [model.serve_action() for _ in range(200)]
        assert actions.count("poison") > 100
        assert set(actions) <= {"poison", "serve"}

    def test_liar_inflates_advertisements(self):
        model = BufferMapLiar(seed=3)
        for _ in range(50):
            lied = model.advertised_have(100)
            assert 100 + BufferMapLiar.LIE_MIN <= lied \
                <= 100 + BufferMapLiar.LIE_MAX
        # A peer with no buffer yet has nothing to lie about.
        assert model.advertised_have(-1) == -1

    def test_flooder_requests_per_tick(self):
        model = RequestFlooder(seed=3)
        assert model.flood_requests() == RequestFlooder.FLOOD_PER_TICK

    def test_stale_peerlist_returns_oldest(self):
        candidates = [
            Candidate(address=f"1.0.2.{i}", first_seen=float(i),
                      last_seen=float(i), source=ListSource.TRACKER)
            for i in range(30)]
        model = StalePeerlistResponder(seed=3)
        stale = model.peer_list(candidates, 60)
        assert stale == [f"1.0.2.{i}" for i in range(12)]

    def test_honest_override_points_by_default(self):
        model = FreeRider(seed=1)
        assert model.advertised_have(7) == 7
        assert model.flood_requests() == 0
        assert model.peer_list([], 60) is None


# ----------------------------------------------------------------------
# Schedule event
# ----------------------------------------------------------------------
class TestAdversaryEvent:
    def test_json_round_trip(self):
        schedule = FaultSchedule(events=(
            AdversaryEvent(behavior="free_rider", start=10.0,
                           duration=50.0, fraction=0.2, label="riders"),))
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    @pytest.mark.parametrize("bad", [
        dict(kind="adversary", behavior="meteor", start=0.0,
             duration=10.0),
        dict(kind="adversary", behavior="free_rider", start=0.0,
             duration=10.0, fraction=0.0),
        dict(kind="adversary", behavior="free_rider", start=0.0,
             duration=10.0, fraction=1.5),
        dict(kind="adversary", behavior="free_rider", start=0.0,
             duration=-1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"events": [bad]})


# ----------------------------------------------------------------------
# Injection and defenses (integration)
# ----------------------------------------------------------------------
def run_adversarial_session(behavior, fraction, seed=13, population=14,
                            warmup=120.0, duration=240.0):
    schedule = FaultSchedule(events=(
        AdversaryEvent(behavior=behavior, start=0.0,
                       duration=warmup + duration, fraction=fraction),))
    config = ScenarioConfig(seed=seed, population=population,
                            warmup=warmup, duration=duration,
                            protocol=ProtocolConfig().hardened(),
                            faults=schedule)
    return SessionScenario(config).run()


def defense_counters(result):
    viewers = list(result.population.active)
    counters = {}
    for name in ("poisoned_replies", "chunks_refetched",
                 "neighbors_banned", "requests_rate_limited",
                 "rejected_messages"):
        counters[name] = sum(getattr(v, name, 0) for v in viewers)
    counters["adversaries_attached"] = \
        result.injector.adversaries_attached
    counters["total_spawned"] = result.population.total_spawned
    return counters


class TestInjection:
    def test_fraction_one_attaches_every_arrival(self):
        result = run_adversarial_session("free_rider", fraction=1.0)
        assert result.injector.adversaries_attached \
            == result.population.total_spawned
        assert all(v.adversary is not None
                   for v in result.population.active)

    def test_polluter_triggers_refetch_and_bans(self):
        result = run_adversarial_session("chunk_polluter", fraction=0.5)
        counters = defense_counters(result)
        assert counters["adversaries_attached"] >= 1
        assert counters["poisoned_replies"] > 0
        assert counters["chunks_refetched"] > 0
        assert counters["neighbors_banned"] > 0

    def test_flooder_trips_rate_cap(self):
        result = run_adversarial_session("request_flooder", fraction=0.3)
        counters = defense_counters(result)
        assert counters["requests_rate_limited"] > 0

    def test_adversarial_run_is_deterministic(self):
        first = defense_counters(
            run_adversarial_session("chunk_polluter", fraction=0.5))
        second = defense_counters(
            run_adversarial_session("chunk_polluter", fraction=0.5))
        assert first == second


# ----------------------------------------------------------------------
# Hardened dispatch: garbage payloads at a peer
# ----------------------------------------------------------------------
class TestPeerGarbage:
    @pytest.fixture
    def active_peer(self):
        from repro.network.bandwidth import CABLE
        from repro.protocol.peer import PeerPhase, PPLivePeer
        scenario = SessionScenario(ScenarioConfig(seed=2, population=10))
        sim = Simulator(seed=2)
        dep = scenario.build_deployment(sim)
        internet = dep.internet
        isp = internet.catalog.by_name("ChinaTelecom")
        peer = PPLivePeer(sim, internet.udp,
                          internet.allocator.allocate(isp), isp, CABLE,
                          scenario.config.protocol, dep.channel,
                          bootstrap_address=dep.bootstrap.address,
                          source_address=dep.source.address)
        peer.join()
        sim.run_until(10.0)
        assert peer.phase is PeerPhase.ACTIVE
        return peer

    def garbage(self, peer, payload):
        return Datagram(src="9.9.9.9", dst=peer.address,
                        payload=payload, payload_bytes=8, sent_at=0.0)

    def test_unknown_payload_counted_and_dropped(self, active_peer):
        active_peer.handle_datagram(
            self.garbage(active_peer, object()))
        assert active_peer.rejected_messages == 1

    def test_malformed_fields_counted_and_dropped(self, active_peer):
        bad = m.DataRequest(channel_id=1, chunk=None, first=0, last=0,
                            seq=1)
        active_peer.handle_datagram(self.garbage(active_peer, bad))
        assert active_peer.rejected_messages == 1
