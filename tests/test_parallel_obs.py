"""Heartbeat/profiler/span interaction with ``--jobs N`` runs.

Workers never receive the parent's Instrumentation bundle (sinks do
not pickle and worker completion order is racy), so everything here is
*parent-side*: the campaign's results and its campaign-level span and
event streams must be byte-equivalent between serial and parallel
execution even with a full bundle — spans, profiler, heartbeat —
enabled in the parent.
"""

import hashlib
import io

import pytest

from repro.obs import (EngineProfiler, Instrumentation, MemorySpanSink,
                       RingSink)
from repro.parallel import Job, execute_jobs
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig, run_campaign

TINY_CAMPAIGN = dict(seed=11, days=2, popular_population=10,
                     unpopular_population=6, session_duration=120.0,
                     warmup=60.0)


def _square(x):
    return x * x


def _series_digest(result):
    parts = []
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for curve in ("CNC", "TELE", "Mason"):
            parts.append(",".join(f"{value:.9e}" for value
                                  in result.series(popularity, curve)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def _full_bundle():
    """Spans + trace + profiler + heartbeat, all parent-side."""
    return Instrumentation(trace=RingSink(capacity=500_000),
                           spans=MemorySpanSink(),
                           profiler=EngineProfiler(),
                           progress=True,
                           progress_stream=io.StringIO())


def _campaign(jobs):
    obs = _full_bundle()
    config = CampaignConfig(instrumentation=obs, **TINY_CAMPAIGN)
    result = run_campaign(config, jobs=jobs)
    return result, obs


@pytest.fixture(scope="module")
def serial():
    return _campaign(jobs=1)


@pytest.fixture(scope="module")
def parallel():
    return _campaign(jobs=2)


def _campaign_day_spans(obs):
    """The campaign-level span stream, stripped of allocation-order
    IDs (serial runs interleave per-session spans, so absolute IDs
    differ by construction while content must not)."""
    return [(s.name, s.start, s.actor, dict(s.attrs))
            for s in obs.spans.spans if s.name == "campaign_day"]


class TestByteEquivalenceWithFullBundle:
    def test_results_identical(self, serial, parallel):
        assert _series_digest(serial[0]) == _series_digest(parallel[0])

    def test_campaign_day_spans_identical(self, serial, parallel):
        serial_spans = _campaign_day_spans(serial[1])
        assert serial_spans
        assert serial_spans == _campaign_day_spans(parallel[1])

    def test_campaign_event_stream_identical(self, serial, parallel):
        def days(obs):
            return [r for r in obs.trace.records
                    if r["event"] == "campaign_day"]
        assert days(serial[1]) == days(parallel[1])

    def test_heartbeat_progress_lines_identical(self, serial, parallel):
        def lines(obs):
            return [line for line
                    in obs.progress_stream.getvalue().splitlines()
                    if line.startswith("[campaign]")]
        serial_lines = lines(serial[1])
        assert len(serial_lines) == 2 * TINY_CAMPAIGN["days"]
        assert serial_lines == lines(parallel[1])


class TestParallelSpanMerge:
    def test_parallel_run_gets_job_spans_in_key_order(self, parallel):
        obs = parallel[1]
        runs = [s for s in obs.spans.spans if s.name == "parallel_run"]
        assert len(runs) == 1
        (run_span,) = runs
        assert run_span.attrs["jobs"] == 2 * TINY_CAMPAIGN["days"]
        assert run_span.attrs["workers"] == 2
        job_spans = [s for s in obs.spans.spans if s.name == "job"]
        # Merged key order — (popular, 0..n), then (unpopular, 0..n) —
        # regardless of which worker finished first.
        expected = [str((popularity.value, day))
                    for popularity in (Popularity.POPULAR,
                                       Popularity.UNPOPULAR)
                    for day in range(TINY_CAMPAIGN["days"])]
        assert [s.attrs["key"] for s in job_spans] == expected
        for span in job_spans:
            assert span.parent_id == run_span.span_id
            assert span.trace_id == run_span.trace_id
            assert span.status == "ok"
        # Synthetic end-to-end timeline: jobs abut, run covers them.
        for earlier, later in zip(job_spans, job_spans[1:]):
            assert later.start >= earlier.end
        assert run_span.end == job_spans[-1].end

    def test_serial_campaign_has_no_job_spans(self, serial):
        names = {s.name for s in serial[1].spans.spans}
        assert "parallel_run" not in names and "job" not in names

    def test_execute_jobs_without_spans_records_none(self):
        obs = Instrumentation(trace=RingSink())
        execute_jobs([Job(key=i, fn=_square, args=(i,))
                      for i in range(3)], workers=2, obs=obs)
        assert obs.spans.spans_recorded == 0

    def test_execute_jobs_serial_path_also_spans(self):
        obs = Instrumentation(spans=MemorySpanSink())
        execute_jobs([Job(key=i, fn=_square, args=(i,))
                      for i in range(3)], workers=1, obs=obs)
        jobs = [s for s in obs.spans.spans if s.name == "job"]
        assert [s.attrs["key"] for s in jobs] == ["0", "1", "2"]
        assert all(s.attrs["where"] == "serial" for s in jobs)


class TestProfilerWithJobs:
    def test_parent_profiler_sees_only_parent_simulations(self,
                                                          parallel):
        # Workers run the sessions, so the parent profiler must not
        # have accumulated worker events; the parallel.* metrics carry
        # the fan-out accounting instead.
        obs = parallel[1]
        assert obs.profiler.total_events == 0
        pool = obs.metrics.get("parallel.jobs", {"where": "pool"})
        fallback = obs.metrics.get("parallel.jobs",
                                   {"where": "fallback"})
        counted = (pool.value if pool is not None else 0) + \
            (fallback.value if fallback is not None else 0)
        assert counted == 2 * TINY_CAMPAIGN["days"]
        assert obs.metrics.get("parallel.workers").value == 2

    def test_serial_profiler_accumulates_sessions(self, serial):
        obs = serial[1]
        assert obs.profiler.total_events > 0
        sessions = obs.metrics.counter("sim.sessions_run")
        assert sessions.value == 2 * TINY_CAMPAIGN["days"]
