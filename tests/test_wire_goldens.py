"""Golden byte-level encodings.

These pin the wire format: any change to the layout breaks these tests
loudly, which is the point — captured JSONL traces and any future
cross-version tooling depend on the byte layout staying put (or the
``VERSION`` byte being bumped).
"""

import pytest

from repro.protocol import messages as m
from repro.protocol.wire import decode, encode


GOLDENS = [
    (m.ChannelListRequest(),
     "50500101"),
    (m.PlaylinkRequest(channel_id=7),
     "5050010300000007"),
    (m.TrackerQuery(channel_id=1),
     "5050010500000001"),
    (m.TrackerReply(channel_id=1, peers=("1.0.0.9",)),
     "505001060000000100010100000900 00".replace(" ", "")),
    (m.Hello(channel_id=1, have_until=5, have_from=2),
     "5050010700000001"
     "0000000000000005" "0000000000000002"),
    (m.Goodbye(channel_id=3),
     "5050010a00000003"),
    (m.DataRequest(channel_id=1, chunk=9, first=2, last=4, seq=77),
     "5050010d00000001"
     "0000000000000009" "0002" "0004" "0000004d"),
    (m.DataMiss(channel_id=1, chunk=9, seq=8, have_until=4,
                have_from=1),
     "5050010f00000001" "0000000000000009" "00000008"
     "0000000000000004" "0000000000000001"),
    (m.BufferMapAnnounce(channel_id=2, have_until=10, have_from=3),
     "5050011000000002"
     "000000000000000a" "0000000000000003"),
]


@pytest.mark.parametrize("msg,expected_hex", GOLDENS,
                         ids=[type(g[0]).__name__ for g in GOLDENS])
def test_golden_encoding(msg, expected_hex):
    assert encode(msg).hex() == expected_hex.replace(" ", "")


@pytest.mark.parametrize("msg,expected_hex", GOLDENS,
                         ids=[type(g[0]).__name__ for g in GOLDENS])
def test_golden_decoding(msg, expected_hex):
    assert decode(bytes.fromhex(expected_hex.replace(" ", ""))) == msg


def test_version_byte_is_one():
    # Bump wire.VERSION (and these goldens) together, deliberately.
    assert encode(m.Goodbye())[2] == 1
