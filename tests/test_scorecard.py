"""Tests for the run-fidelity scorecard (``repro report``).

One real scorecard is built at SMALL scale (four memoised sessions) and
shared module-wide; everything about rendering, trend records and
artifact-derived perf is tested on cheap synthetic cards.
"""

import json

import pytest

from repro.analysis.response import ResponseGroup
from repro.experiments import Scale
from repro.experiments.collect import PAPER_TARGETS
from repro.experiments.scorecard import (PerfBlock, Scorecard, Statistic,
                                         append_trend, build_scorecard,
                                         perf_from_artifacts)

#: Figures whose statistics must appear in every scorecard — all the
#: paper-target statistics repro.analysis computes.
EXPECTED_FIGURES = ("fig02", "fig03", "fig04", "fig05",
                    "fig11", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "fig17", "fig18", "table1")


@pytest.fixture(scope="module")
def card():
    return build_scorecard(scale=Scale.SMALL, seed=5, label="unit test")


class TestStatistic:
    def test_status_pass_inside_range(self):
        assert Statistic("f", "s", 0.5, (0.4, 1.0)).status == "pass"
        assert Statistic("f", "s", 0.4, (0.4, 1.0)).status == "pass"

    def test_status_deviates_outside_range(self):
        assert Statistic("f", "s", 0.3, (0.4, 1.0)).status == "deviates"

    def test_no_target_is_informational(self):
        assert Statistic("f", "s", 0.3, None).status == "pass"

    def test_missing_value_is_na(self):
        stat = Statistic("f", "s", None, (0.0, 1.0))
        assert stat.status == "n/a"
        assert stat.format_value() == "—"

    def test_formatting(self):
        stat = Statistic("f", "s", 0.78894, (0.05, 5.0), paper=0.7889,
                         unit="s")
        assert stat.format_value() == "0.789s"
        assert stat.format_target() == "[0.05, 5]s"
        assert stat.format_paper() == "0.7889s"


class TestBuildScorecard:
    def test_covers_every_paper_statistic(self, card):
        figures = {s.figure for s in card.statistics}
        assert figures == set(EXPECTED_FIGURES)
        by_figure = {}
        for s in card.statistics:
            by_figure.setdefault(s.figure, []).append(s.name)
        for fig in ("fig02", "fig03", "fig04", "fig05"):
            assert "byte locality (own-ISP share)" in by_figure[fig]
            assert "returned own-ISP share" in by_figure[fig]
        for fig in ("fig11", "fig12", "fig13", "fig14"):
            assert "top-10% neighbor byte share" in by_figure[fig]
            assert "SE fit R^2" in by_figure[fig]
            assert "SE beats Zipf" in by_figure[fig]
        for fig in ("fig15", "fig16", "fig17", "fig18"):
            assert "log-log RTT correlation" in by_figure[fig]
        # Table 1: every response group of every row is scored.
        for group in ResponseGroup:
            assert any(str(group) in name
                       for name in by_figure["table1"])

    def test_mostly_in_range_at_small_scale(self, card):
        # Small-scale swarms deviate on a few absolute magnitudes
        # (documented in EXPERIMENTS.md); the shape claims must hold
        # for the overwhelming majority.
        assert card.scored == len(card.statistics)
        assert card.passed >= card.scored - 5

    def test_perf_block_is_real(self, card):
        perf = card.perf
        assert perf.events_executed > 0
        assert perf.wall_seconds > 0
        assert perf.events_per_sec > 0
        assert perf.spans_recorded > 0
        assert perf.metric_series > 0
        assert perf.sessions == 4  # the four canonical sessions

    def test_statistics_all_scored(self, card):
        # Every line carries a value and a target band at this scale —
        # "n/a" rows would silently shrink the denominator.
        assert all(s.value is not None for s in card.statistics)


class TestRendering:
    def test_markdown_contains_every_row_and_the_paper_prose(self, card):
        text = card.render_markdown()
        assert text.startswith("# Run-fidelity scorecard")
        assert f"**{card.passed}/{card.scored}**" in text
        for s in card.statistics:
            assert s.name in text
        for fig in EXPECTED_FIGURES[:-1]:
            assert PAPER_TARGETS[fig] in text
        assert "## Engine performance" in text
        assert "events per sec" in text

    def test_html_renders_and_escapes(self, card):
        page = card.render_html()
        assert page.startswith("<!DOCTYPE html>")
        assert f"<b>{card.passed}/{card.scored}</b>" in page
        synthetic = Scorecard(scale="small", seed=1,
                              label="<script>alert(1)</script>")
        assert "<script>" not in synthetic.render_html()
        assert "&lt;script&gt;" in synthetic.render_html()

    def test_trend_record_shape(self, card):
        record = card.trend_record()
        assert record["kind"] == "scorecard"
        assert record["scale"] == "small" and record["seed"] == 5
        assert record["passed"] == card.passed
        assert record["scored"] == card.scored
        assert len(record["statistics"]) == len(card.statistics)
        assert "fig02.byte_locality_(own-isp_share)" in \
            record["statistics"]
        assert set(record["perf"]) == {"events_executed",
                                       "wall_seconds", "events_per_sec",
                                       "spans_recorded",
                                       "metric_series", "sessions"}
        json.dumps(record)  # must be JSON-serialisable as-is


class TestTrendFile:
    def test_append_trend_writes_one_line(self, tmp_path):
        card = Scorecard(scale="small", seed=1)
        card.statistics.append(Statistic("fig02", "x", 0.5, (0.0, 1.0)))
        path = tmp_path / "nested" / "trend.jsonl"
        append_trend(card, path)
        append_trend(card, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["kind"] == "scorecard"
            assert record["passed"] == 1


class TestPerfFromArtifacts:
    def test_from_metrics_jsonl(self, tmp_path):
        path = tmp_path / "m.jsonl"
        rows = [
            {"name": "sim.events_executed", "type": "counter",
             "tags": {}, "value": 1000},
            {"name": "sim.sessions_run", "type": "counter",
             "tags": {}, "value": 2},
            {"name": "sim.wall_seconds_total", "type": "gauge",
             "tags": {}, "value": 4.0},
            {"name": "net.datagrams_sent", "type": "counter",
             "tags": {}, "value": 50},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        perf = perf_from_artifacts(metrics_path=str(path))
        assert perf.events_executed == 1000
        assert perf.sessions == 2
        assert perf.wall_seconds == 4.0
        assert perf.events_per_sec == 250.0
        assert perf.metric_series == 4

    def test_from_span_artifacts(self, tmp_path):
        jsonl = tmp_path / "s.jsonl"
        jsonl.write_text('{"name":"a"}\n{"name":"b"}\n')
        assert perf_from_artifacts(
            spans_path=str(jsonl)).spans_recorded == 2

        chrome = tmp_path / "s.json"
        chrome.write_text(json.dumps({"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "x"}},
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0,
             "dur": 1},
            {"name": "b", "ph": "i", "s": "t", "pid": 1, "tid": 1,
             "ts": 2},
        ]}))
        assert perf_from_artifacts(
            spans_path=str(chrome)).spans_recorded == 2

    def test_empty_block_without_artifacts(self):
        perf = perf_from_artifacts()
        assert perf.to_record() == PerfBlock().to_record()
