"""Setup shim for environments whose pip lacks the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables legacy
`pip install -e . --no-use-pep517` editable installs.
"""
from setuptools import setup

setup()
