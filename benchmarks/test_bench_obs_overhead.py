"""Benchmark: observability overhead on the simulation hot path.

Two claims are checked on a small canonical session:

* **Disabled is free.**  With no ``Instrumentation`` the instrumented
  call sites reduce to shared no-op instruments and one boolean check,
  so a run without obs flags must cost no more than an enabled run
  (within timing noise) — i.e. the instrumentation points themselves do
  not slow the default path.
* **Enabled is cheap.**  Full metrics + profiler + ring tracing must
  stay within a small multiple of the uninstrumented run.

Timings use min-of-N (min is the low-noise estimator for repeated
identical work).  The structural zero-overhead properties (shared null
singletons, no registry allocated by default) are asserted exactly.
"""

import time

from repro.obs import (NULL_INSTRUMENTATION, NULL_REGISTRY, NULL_SINK,
                      EngineProfiler, Instrumentation, RingSink, resolve)
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)

ROUNDS = 3


def _config(obs=None) -> ScenarioConfig:
    return ScenarioConfig(
        seed=5,
        population=20,
        mix=popular_channel_mix(),
        popularity=Popularity.POPULAR,
        probes=(TELE_PROBE,),
        warmup=60.0,
        duration=180.0,
        instrumentation=obs,
    )


def _min_wall(make_obs) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        SessionScenario(_config(make_obs())).run()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_disabled_path_is_noop(benchmark, save_result):
    disabled = benchmark.pedantic(lambda: _min_wall(lambda: None),
                                  rounds=1, iterations=1)
    enabled = _min_wall(lambda: Instrumentation(
        trace=RingSink(capacity=10_000), profiler=EngineProfiler()))

    overhead = enabled / disabled - 1.0
    save_result("obs_overhead",
                f"obs overhead (small session, min of {ROUNDS}):\n"
                f"  disabled: {disabled * 1000:.1f} ms\n"
                f"  enabled:  {enabled * 1000:.1f} ms\n"
                f"  enabled/disabled - 1 = {overhead:+.1%}")

    # Disabled must not be slower than enabled beyond timing noise: the
    # no-op path does strictly less work, so a large gap the wrong way
    # would mean the default path regressed.
    assert disabled <= enabled * 1.25 + 0.05
    # Enabled instrumentation should stay cheap (well under 3x).
    assert enabled <= disabled * 3.0 + 0.05


def test_structural_zero_overhead():
    # The disabled bundle is one shared object handing out shared no-ops.
    assert resolve(None) is NULL_INSTRUMENTATION
    assert NULL_INSTRUMENTATION.metrics is NULL_REGISTRY
    assert NULL_INSTRUMENTATION.trace is NULL_SINK
    a = NULL_REGISTRY.counter("x", tags={"k": "1"})
    b = NULL_REGISTRY.counter("y")
    assert a is b
    # A default config allocates no registry and schedules no heartbeat.
    config = _config()
    assert config.instrumentation is None
    assert not NULL_INSTRUMENTATION.wants_heartbeat
