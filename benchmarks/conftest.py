"""Shared fixtures for the benchmark suite.

The canonical sessions are simulated once per benchmark run (session
scope) and reused by every figure bench, mirroring how the paper's four
featured traces feed fourteen figures.  Environment knobs:

* ``REPRO_BENCH_SCALE``  — small | default | full   (default: default)
* ``REPRO_BENCH_SEED``   — integer master seed       (default: 7)
* ``REPRO_BENCH_DAYS``   — Figure 6 campaign length  (default: 28)

Each bench writes its rendered table/series to
``benchmarks/results/<id>.txt`` so the numbers behind EXPERIMENTS.md are
regenerable artifacts.  In addition, every ``test_bench_*`` test appends
one machine-readable row to ``benchmarks/results/trend.jsonl`` (node id,
outcome, wall-clock duration, scale/seed, git revision, UTC timestamp),
so the perf trajectory across commits can be charted without re-running
old revisions.  Rows carry ``"kind": "bench_test"`` — the same file also
holds the ``repro report`` command's ``"kind": "scorecard"`` records.
"""

import datetime
import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.experiments import Scale, WorkloadBank

RESULTS_DIR = Path(__file__).parent / "results"
TREND_FILE = RESULTS_DIR / "trend.jsonl"


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    return Scale(name)


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


def bench_days() -> int:
    return int(os.environ.get("REPRO_BENCH_DAYS", "28"))


def _git_rev() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=Path(__file__).parent)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def pytest_runtest_logreport(report):
    """Append one trend row per finished ``test_bench_*`` call."""
    if report.when != "call":
        return
    name = report.nodeid.rsplit("::", 1)[-1]
    if not name.startswith("test_bench_"):
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    row = {
        "kind": "bench_test",
        "nodeid": report.nodeid,
        "outcome": report.outcome,
        "duration_seconds": round(report.duration, 4),
        "scale": bench_scale().value,
        "seed": bench_seed(),
        "git_rev": _git_rev(),
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    }
    with TREND_FILE.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def bank():
    return WorkloadBank()


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def seed():
    return bench_seed()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _save
