"""Shared fixtures for the benchmark suite.

The canonical sessions are simulated once per benchmark run (session
scope) and reused by every figure bench, mirroring how the paper's four
featured traces feed fourteen figures.  Environment knobs:

* ``REPRO_BENCH_SCALE``  — small | default | full   (default: default)
* ``REPRO_BENCH_SEED``   — integer master seed       (default: 7)
* ``REPRO_BENCH_DAYS``   — Figure 6 campaign length  (default: 28)

Each bench writes its rendered table/series to
``benchmarks/results/<id>.txt`` so the numbers behind EXPERIMENTS.md are
regenerable artifacts.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import Scale, WorkloadBank

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    return Scale(name)


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


def bench_days() -> int:
    return int(os.environ.get("REPRO_BENCH_DAYS", "28"))


@pytest.fixture(scope="session")
def bank():
    return WorkloadBank()


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def seed():
    return bench_seed()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _save
