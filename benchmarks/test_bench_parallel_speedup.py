"""Benchmark: serial vs parallel wall-clock for an 8-day campaign.

Runs the same campaign with ``jobs`` in {1, 2, 4} and records the
wall-clock of each, plus the speedup over serial and a proof line that
all three produced byte-identical results.  On a single-core host the
parallel runs are expected to cost slightly *more* than serial (pool
overhead with nothing to overlap) — the numbers are recorded either
way, with the host's CPU count, so they are interpretable.

Knobs: ``REPRO_BENCH_PARALLEL_DAYS`` (default 8) and
``REPRO_BENCH_SEED`` (default 7).
"""

import hashlib
import os
import time

import pytest

from repro.analysis.report import format_table
from repro.experiments.fig06 import Figure6
from repro.workload.campaign import CampaignConfig, run_campaign

from conftest import bench_seed


def _parallel_days() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_DAYS", "8"))


def _config() -> CampaignConfig:
    return CampaignConfig(
        seed=bench_seed(),
        days=_parallel_days(),
        popular_population=12,
        unpopular_population=7,
        session_duration=150.0,
        warmup=90.0,
    )


def test_bench_parallel_speedup(benchmark, save_result):
    timings = {}
    digests = {}

    def run_all():
        for jobs in (1, 2, 4):
            started = time.perf_counter()
            result = run_campaign(_config(), jobs=jobs)
            timings[jobs] = time.perf_counter() - started
            rendered = Figure6(result=result).render()
            digests[jobs] = hashlib.sha256(rendered.encode()).hexdigest()
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial = timings[1]
    rows = [[f"jobs={jobs}", f"{elapsed:.1f}s",
             f"{serial / elapsed:.2f}x",
             "identical" if digests[jobs] == digests[1] else "DRIFTED"]
            for jobs, elapsed in sorted(timings.items())]
    text = "\n".join([
        f"=== parallel campaign speedup "
        f"({_parallel_days()} days, seed {bench_seed()}, "
        f"{os.cpu_count()} cpu) ===",
        format_table(["configuration", "wall-clock", "speedup vs serial",
                      "figure 6 output"], rows),
    ])
    save_result("parallel_speedup", text)

    # Correctness is non-negotiable even in a perf bench.
    assert digests[2] == digests[1]
    assert digests[4] == digests[1]
