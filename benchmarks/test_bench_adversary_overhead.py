"""Benchmark: protocol hardening must be free when nobody misbehaves.

The adversary work adds seams to the peer's hot path — an adversary
hook test per served request, a per-neighbor rate-cap check, chunk
integrity verification, strike bookkeeping on the candidate pool.  All
of them are branch-and-move-on when no adversary is attached, so the
claim checked here is the ISSUE's acceptance gate: a clean (zero
adversary) session under the ``hardened()`` profile stays within 2% of
the same seed run under the default profile, in events/sec.  The
structural half asserts the defense counters never fire on a clean run
— the seams exist, but no defense work happens.
"""

import time

from repro.protocol.config import ProtocolConfig
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)

ROUNDS = 5

#: The no-adversary hot path must cost under this fraction of
#: events/sec (the ISSUE 9 acceptance gate).
MAX_OVERHEAD = 0.02

_DEFENSE_COUNTERS = ("poisoned_replies", "chunks_refetched",
                     "neighbors_banned", "requests_rate_limited")


def _config(protocol) -> ScenarioConfig:
    return ScenarioConfig(
        seed=5,
        population=20,
        mix=popular_channel_mix(),
        popularity=Popularity.POPULAR,
        probes=(TELE_PROBE,),
        warmup=60.0,
        duration=180.0,
        protocol=protocol,
    )


def _one_run(protocol):
    started = time.perf_counter()
    result = SessionScenario(_config(protocol)).run()
    wall = time.perf_counter() - started
    return wall, result


def test_bench_adversary_clean_path_overhead(save_result):
    # One discarded warmup run, then interleaved rounds (min-wall), so a
    # cold first arm cannot masquerade as hardening overhead.
    _one_run(ProtocolConfig())
    base_wall = hard_wall = float("inf")
    base_events = hard_events = 0
    hard_result = None
    for _ in range(ROUNDS):
        wall, result = _one_run(ProtocolConfig())
        base_wall = min(base_wall, wall)
        base_events = result.deployment.sim.events_executed
        wall, hard_result = _one_run(ProtocolConfig().hardened())
        hard_wall = min(hard_wall, wall)
        hard_events = hard_result.deployment.sim.events_executed
    overhead = (base_events / base_wall) / (hard_events / hard_wall) - 1.0

    save_result(
        "adversary_overhead",
        f"hardened-profile overhead on a clean session (zero "
        f"adversaries,\ninterleaved best of {ROUNDS}):\n"
        f"  default profile:  {base_events / base_wall:,.0f} events/sec"
        f" ({base_events} events)\n"
        f"  hardened profile: {hard_events / hard_wall:,.0f} events/sec"
        f" ({hard_events} events)\n"
        f"  overhead = {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})")

    # Structural half: on a clean run the defense machinery never fires
    # — no bans, no refetches, no rate-cap denials, no adversaries.
    viewers = list(hard_result.population.active) \
        + [probe.peer for probe in hard_result.probes.values()]
    for counter in _DEFENSE_COUNTERS:
        assert sum(getattr(v, counter, 0) for v in viewers) == 0, counter
    assert all(v.adversary is None for v in viewers)

    # Timing half, with the harness's usual absolute noise pad: a ~1.5 s
    # session swings ±5% run to run, so a relative-only gate would flap;
    # a real regression (per-request verification doing work on clean
    # chunks, an eager limiter per neighbor) lands far above this line.
    assert hard_wall <= base_wall * (1.0 + MAX_OVERHEAD) + 0.25, (
        f"hardened run took {hard_wall:.3f}s vs {base_wall:.3f}s default "
        f"(budget {MAX_OVERHEAD:.0%} + 0.25s noise)")
