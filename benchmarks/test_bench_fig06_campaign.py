"""Benchmark regenerating Figure 6: the four-week locality campaign.

Shape targets:

* Chinese probes (TELE/CNC) see high, stable locality for the popular
  program,
* the Mason curve swings far more from day to day than the Chinese
  curves ("the popular program in China is not necessarily popular
  outside China"),
* unpopular-program locality is lower on average than popular-program
  locality for the Chinese probes.

The campaign day count comes from ``REPRO_BENCH_DAYS`` (default 28,
matching the paper); per-day sessions are scaled down for tractability —
locality percentages stabilise within minutes of simulated viewing.
"""

import pytest

from repro.experiments.fig06 import figure6
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig

from conftest import bench_days, bench_seed


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(
        seed=bench_seed(),
        days=bench_days(),
        popular_population=50,
        unpopular_population=20,
        session_duration=360.0,
        warmup=150.0,
    )
    return figure6(config)


def test_bench_fig06_campaign(benchmark, campaign, save_result):
    figure = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    save_result("fig06", figure.render())

    tele_popular = figure.average_locality(Popularity.POPULAR, "TELE")
    cnc_popular = figure.average_locality(Popularity.POPULAR, "CNC")
    assert tele_popular is not None and tele_popular > 30.0
    assert cnc_popular is not None and cnc_popular > 15.0


def test_bench_fig06_mason_varies_more(benchmark, campaign):
    mason_swing, tele_swing = benchmark.pedantic(
        lambda: (campaign.variability(Popularity.POPULAR, "Mason"),
                 campaign.variability(Popularity.POPULAR, "TELE")),
        rounds=1, iterations=1)
    # The Mason curve whips around *relative to its level*; the TELE
    # curve is comparatively stable (paper: "results measured from Mason
    # vary significantly").
    mason_mean = campaign.average_locality(Popularity.POPULAR, "Mason")
    tele_mean = campaign.average_locality(Popularity.POPULAR, "TELE")
    assert mason_mean is not None and tele_mean is not None
    mason_relative = mason_swing / max(mason_mean, 1.0)
    tele_relative = tele_swing / max(tele_mean, 1.0)
    assert mason_relative > tele_relative


def test_bench_fig06_popular_beats_unpopular_for_tele(benchmark,
                                                      campaign):
    popular, unpopular = benchmark.pedantic(
        lambda: (campaign.average_locality(Popularity.POPULAR, "TELE"),
                 campaign.average_locality(Popularity.UNPOPULAR, "TELE")),
        rounds=1, iterations=1)
    if popular is not None and unpopular is not None:
        assert popular > unpopular - 10.0
