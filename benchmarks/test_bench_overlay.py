"""Benchmark: overlay structure behind the locality (triangle construction).

Not a paper figure, but the paper's *explanation*: "PPLive peers are
self-organized into highly connected clusters ... highly localized at
the ISP level".  This bench quantifies it on the default-scale popular
session: the overlay keeps more edges inside ISPs than a
degree-preserving null model predicts, and shows real triangle density.
"""

import pytest

from repro.analysis.overlay import analyze_session_overlay


@pytest.fixture(scope="module")
def overlay(bank, scale, seed):
    session = bank.tele_popular(scale=scale, seed=seed)
    return analyze_session_overlay(session)


def test_bench_overlay_clustering(benchmark, bank, scale, seed, overlay,
                                  save_result):
    analysis = benchmark.pedantic(
        lambda: analyze_session_overlay(
            bank.tele_popular(scale=scale, seed=seed)),
        rounds=1, iterations=1)
    save_result("overlay", analysis.render())
    assert analysis.nodes >= 20
    assert analysis.locality_lift is not None
    # More intra-ISP edges than random wiring of the same degrees.
    assert analysis.locality_lift > 1.0
    # Referral produces triangles: clustering above the edge density of
    # a comparable random graph.  At ~100-node scale with 20-neighbor
    # tables the overlay is already dense (density ~0.2), which makes
    # the random baseline nearly unbeatable — only assert it when the
    # graph is sparse enough for the comparison to mean something.
    if analysis.clustering_coefficient is not None and analysis.nodes > 1:
        density = (2.0 * analysis.edges
                   / (analysis.nodes * (analysis.nodes - 1)))
        if density < 0.10:
            assert analysis.clustering_coefficient > density
        else:
            assert analysis.clustering_coefficient > 0.0


def test_bench_overlay_assortative(benchmark, overlay):
    value = benchmark.pedantic(lambda: overlay.assortativity,
                               rounds=1, iterations=1)
    if value is not None:
        assert value > 0.0


def test_bench_fairness(benchmark, bank, scale, seed, save_result):
    """Population-wide upload inequality on the popular session."""
    from repro.analysis.fairness import session_fairness

    report = benchmark.pedantic(
        lambda: session_fairness(bank.tele_popular(scale=scale,
                                                   seed=seed)),
        rounds=1, iterations=1)
    save_result("fairness", report.render())
    assert 0.0 < report.upload_gini < 1.0
    assert report.top10_upload_share > 0.10
