"""Benchmarks regenerating Figures 11-14: connections and contributions.

Shape targets:

* the connected peers are a small subset of the listed peers,
* the per-neighbor request rank distribution fits a stretched
  exponential better than a Zipf law (the paper's key statistical
  finding),
* the top 10 % of connected peers provide most of the traffic
  (paper: 67-82 % across the four workloads).
"""

import pytest

from repro.experiments import run_experiment
from repro.network.isp import ISPCategory

FIG_IDS = ("fig11", "fig12", "fig13", "fig14")


@pytest.fixture(scope="module")
def figures(bank, scale, seed):
    return {
        fig_id: run_experiment(fig_id, bank=bank, scale=scale, seed=seed)
        for fig_id in FIG_IDS
    }


@pytest.mark.parametrize("fig_id", FIG_IDS)
def test_bench_contribution_figures(benchmark, figures, bank, scale, seed,
                                    save_result, fig_id):
    figure = benchmark.pedantic(
        lambda: run_experiment(fig_id, bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result(fig_id, figure.render())
    analysis = figure.analysis

    # Panel (a): connected peers are a subset of listed peers.
    assert 0 < analysis.connected_unique <= figure.unique_listed

    # Panel (b): SE fits at least as well as Zipf (paper: Zipf visibly
    # fails, SE R^2 = 0.95-0.999).  The absolute-quality bar only makes
    # sense with enough connected peers (the paper fits 89-326 of them).
    if analysis.se_fit is not None and analysis.zipf_fit is not None:
        assert analysis.se_fit.r_squared >= analysis.zipf_fit.r_squared
        if analysis.connected_unique >= 50:
            assert analysis.se_fit.r_squared > 0.90

    # Panel (c): strong concentration on the top 10% — only assessable
    # with a reasonable number of connected peers (a 16-peer session
    # cannot concentrate 70% on its top two peers by construction).
    if (analysis.top10_byte_share is not None
            and analysis.connected_unique >= 25):
        assert analysis.top10_byte_share > 0.30


def test_bench_fig11_tele_peers_lead(benchmark, figures):
    """Fig 11(a): for the TELE probe's popular session, TELE is the
    largest group of connected peers (paper: 74%)."""
    analysis = benchmark.pedantic(lambda: figures["fig11"].analysis,
                                  rounds=1, iterations=1)
    counts = analysis.connected_by_isp
    assert counts.most_common(1)[0][0] is ISPCategory.TELE


def test_bench_fig13_foreign_cluster_visible(benchmark, figures):
    """Fig 13(a): the Mason probe connects a disproportionate number of
    Foreign peers relative to their audience share."""
    analysis = benchmark.pedantic(lambda: figures["fig13"].analysis,
                                  rounds=1, iterations=1)
    counts = analysis.connected_by_isp
    total = sum(counts.values())
    if total >= 10:
        # Foreign viewers are ~8% of the popular audience; the probe's
        # connected set should over-represent them.
        assert counts[ISPCategory.FOREIGN] / total > 0.08
