"""Benchmarks for the DESIGN.md ablations (A1-A4).

These test the paper's *attribution*: locality should degrade when the
neighbor-referral/latency machinery is removed, and the oracle baselines
(which use infrastructure PPLive does not need) should reach at least
comparable locality.
"""

import os

import pytest

from repro.experiments.ablations import (isp_aware_tracker,
                                         latency_pressure,
                                         policy_comparison,
                                         popularity_sweep,
                                         top_peer_caching)

from conftest import bench_seed

#: Ablations are medium-cost; keep them smaller than the figure benches.
POPULATION = int(os.environ.get("REPRO_BENCH_ABLATION_POP", "60"))
DURATION = float(os.environ.get("REPRO_BENCH_ABLATION_DURATION", "700"))


@pytest.fixture(scope="module")
def comparison():
    return policy_comparison(seed=bench_seed(), population=POPULATION,
                             duration=DURATION)


def test_bench_ablation_a1_a3_policies(benchmark, comparison, save_result):
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    save_result("ablation_a1_a3", result.render())
    pplive = result.locality_of("pplive-referral")
    tracker_only = result.locality_of("tracker-only-random")
    assert pplive is not None and tracker_only is not None
    # A1: the infrastructure-free referral strategy reaches locality at
    # least comparable to blind tracker-random selection.  (Single-seed
    # sessions are noisy; the tolerance absorbs that — see
    # examples/multi_seed_confidence.py for the averaged statement.)
    assert pplive > tracker_only - 0.12
    # A3: the explicit-topology baselines achieve high locality too.
    p4p = result.locality_of("p4p")
    if p4p is not None:
        assert p4p > tracker_only - 0.10


def test_bench_ablation_a2_latency_pressure(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: latency_pressure(seed=bench_seed(), population=POPULATION,
                                 duration=DURATION),
        rounds=1, iterations=1)
    save_result("ablation_a2", result.render())
    with_pressure = result.locality_of("latency replacement on")
    without = result.locality_of("latency replacement off")
    assert with_pressure is not None and without is not None
    # Removing the latency-driven replacement should not help locality.
    assert with_pressure > without - 0.10


def test_bench_ablation_a4_popularity_sweep(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: popularity_sweep(seed=bench_seed(),
                                 populations=(20, 45, 90),
                                 duration=DURATION),
        rounds=1, iterations=1)
    save_result("ablation_a4", result.render())
    localities = [p.locality for p in result.points]
    assert len(localities) == 3
    # More concurrent same-ISP viewers -> more achievable locality: the
    # largest audience should not be the least local.
    assert localities[-1] >= min(localities)


def test_bench_ablation_a5_top_peer_caching(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: top_peer_caching(seed=bench_seed(), population=POPULATION,
                                 duration=DURATION),
        rounds=1, iterations=1)
    save_result("ablation_a5", result.render())
    # The paper only *speculates* that caching the top 10% helps; this
    # bench reports the comparison (single-seed, so noisy) and asserts
    # sanity, not an ordering.
    for point in result.points:
        assert 0.0 <= point.locality <= 1.0
        assert point.data_transactions > 0


def test_bench_ablation_a6_isp_aware_tracker(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: isp_aware_tracker(seed=bench_seed(), population=POPULATION,
                                  duration=DURATION),
        rounds=1, iterations=1)
    save_result("ablation_a6", result.render())
    plain = result.locality_of("random tracker (PPLive)")
    aware = result.locality_of("isp-aware tracker [28]")
    # Reported for comparison; single-seed orderings between these two
    # high-locality configurations are noise-dominated, so only sanity
    # is asserted (see examples/multi_seed_confidence.py for the
    # averaged methodology).
    assert plain is not None and aware is not None
    assert 0.0 <= plain <= 1.0 and 0.0 <= aware <= 1.0
