"""Benchmarks regenerating Figures 7-10 and Table 1: response times.

Shape targets:

* Figs 7-8 (TELE probe): TELE peer-list replies are on average faster
  than CNC replies (the paper's headline latency asymmetry),
* Figs 9-10 (Mason probe): replies take longer for the unpopular program
  than the popular one (fewer neighbor choices),
* Table 1: for the unpopular programs, the probe's own group answers
  data requests fastest; popularity inflates the own-group latency.
"""

import pytest

from repro.experiments import run_experiment
from repro.network.isp import ResponseGroup


@pytest.fixture(scope="module")
def figures(bank, scale, seed):
    return {
        fig_id: run_experiment(fig_id, bank=bank, scale=scale, seed=seed)
        for fig_id in ("fig07", "fig08", "fig09", "fig10")
    }


def _avg(figure, group):
    return figure.average(group)


def test_bench_fig07_tele_popular_responses(benchmark, figures, bank,
                                            scale, seed, save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig07", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig07", figure.render())
    tele = _avg(figure, ResponseGroup.TELE)
    cnc = _avg(figure, ResponseGroup.CNC)
    assert tele is not None and tele > 0
    if cnc is not None:
        # Same-ISP peer-list replies beat the congested TELE<->CNC path.
        assert tele < cnc * 1.25


def test_bench_fig08_tele_unpopular_responses(benchmark, figures, bank,
                                              scale, seed, save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig08", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig08", figure.render())
    tele = _avg(figure, ResponseGroup.TELE)
    cnc = _avg(figure, ResponseGroup.CNC)
    if tele is not None and cnc is not None:
        assert tele < cnc * 1.4


def test_bench_fig09_fig10_mason_popularity_effect(benchmark, figures,
                                                   bank, scale, seed,
                                                   save_result):
    fig09 = figures["fig09"]
    fig10 = benchmark.pedantic(
        lambda: run_experiment("fig10", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig09", fig09.render())
    save_result("fig10", fig10.render())
    # "we can observe a larger average response time from different
    # groups when compared with those in Figure 9" — fewer viewers means
    # fewer choices.  Compare the groups that answered in both runs.
    slower = 0
    comparable = 0
    for group in ResponseGroup:
        a = _avg(fig09, group)
        b = _avg(fig10, group)
        if a is not None and b is not None:
            comparable += 1
            if b >= a * 0.8:
                slower += 1
    if comparable:
        assert slower >= comparable - 1


def test_bench_table1_data_responses(benchmark, bank, scale, seed,
                                     save_result):
    table = benchmark.pedantic(
        lambda: run_experiment("table1", bank=bank, scale=scale,
                               seed=seed),
        rounds=1, iterations=1)
    save_result("table1", table.render())
    # TELE-Unpopular row: TELE peers respond fastest (paper row 3).
    row = table.rows["TELE-Unpopular"]
    tele = row[ResponseGroup.TELE]
    cnc = row[ResponseGroup.CNC]
    if tele is not None and cnc is not None:
        assert tele < cnc * 1.3
    # All averages are sane magnitudes (sub-10-second).
    for label, averages in table.rows.items():
        for group, value in averages.items():
            if value is not None:
                assert 0.0 < value < 10.0, (label, group, value)
