"""Benchmark: span-layer overhead on the simulation hot path.

The span instrumentation rides the same zero-overhead contract as the
rest of ``repro.obs``: every call site guards on ``sink.enabled``, so

* **Null spans are free.**  A run whose bundle carries the default
  :data:`NULL_SPAN_SINK` must cost the same as a fully uninstrumented
  run — the guard is one attribute load and a boolean check, and no
  span objects, attribute dicts or IDs are ever allocated.
* **Recording is cheap.**  An in-memory span sink (tens of thousands
  of spans on this workload) must stay within a small multiple of the
  uninstrumented run.

Timings use min-of-N; the structural properties (shared null sink,
shared inert span, nothing recorded) are asserted exactly.
"""

import time

from repro.obs import (NULL_SPAN, NULL_SPAN_SINK, Instrumentation,
                       MemorySpanSink, resolve)
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)

ROUNDS = 3


def _config(obs=None) -> ScenarioConfig:
    return ScenarioConfig(
        seed=5,
        population=20,
        mix=popular_channel_mix(),
        popularity=Popularity.POPULAR,
        probes=(TELE_PROBE,),
        warmup=60.0,
        duration=180.0,
        instrumentation=obs,
    )


def _min_wall(make_obs) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        SessionScenario(_config(make_obs())).run()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_null_span_path_is_free(benchmark, save_result):
    baseline = benchmark.pedantic(lambda: _min_wall(lambda: None),
                                  rounds=1, iterations=1)
    # Enabled bundle, but spans left at the null default: the span
    # guards are live at every call site yet must do no span work.
    null_spans = _min_wall(lambda: Instrumentation())
    recorded = []
    def with_memory_sink():
        obs = Instrumentation(spans=MemorySpanSink())
        recorded.append(obs.spans)
        return obs
    recording = _min_wall(with_memory_sink)

    spans_per_run = recorded[-1].spans_recorded
    save_result(
        "span_overhead",
        f"span overhead (small session, min of {ROUNDS}):\n"
        f"  uninstrumented:     {baseline * 1000:.1f} ms\n"
        f"  null-span bundle:   {null_spans * 1000:.1f} ms "
        f"({null_spans / baseline - 1:+.1%})\n"
        f"  memory span sink:   {recording * 1000:.1f} ms "
        f"({recording / baseline - 1:+.1%}, "
        f"{spans_per_run} spans/run)")

    # Null spans must not add measurable cost (the bundle also carries
    # a live metrics registry, so allow the obs-overhead margin).
    assert null_spans <= baseline * 3.0 + 0.05
    # Recording tens of thousands of spans stays cheap too.
    assert recording <= baseline * 3.5 + 0.05
    assert spans_per_run > 1000


def test_structural_zero_overhead():
    # The default bundle hands out the one shared disabled sink.
    assert resolve(None).spans is NULL_SPAN_SINK
    assert Instrumentation().spans is NULL_SPAN_SINK
    assert not NULL_SPAN_SINK.enabled
    # Every start on the null sink returns the same inert span and
    # records nothing, so stray finishes cannot allocate or leak.
    before = NULL_SPAN_SINK.spans_recorded
    span = NULL_SPAN_SINK.start_span("s", "c", 0.0, junk="x")
    assert span is NULL_SPAN
    assert span.finish(1.0, "timeout") is NULL_SPAN
    assert NULL_SPAN_SINK.instant("i", "c", 2.0) is NULL_SPAN
    assert NULL_SPAN_SINK.spans_recorded == before
    # A disabled run records no spans end-to-end.
    obs_free = _config()
    assert obs_free.instrumentation is None
