"""Benchmarks regenerating Figures 15-18: data requests vs RTT.

Shape target: the correlation between log(#requests) and log(RTT) is
negative in all four workloads (paper: -0.65, -0.40, -0.68, -0.45), and
the popular-channel correlations are at least as strong as the
unpopular ones for the same probe.
"""

import pytest

from repro.experiments import run_experiment

FIG_IDS = ("fig15", "fig16", "fig17", "fig18")


@pytest.fixture(scope="module")
def figures(bank, scale, seed):
    return {
        fig_id: run_experiment(fig_id, bank=bank, scale=scale, seed=seed)
        for fig_id in FIG_IDS
    }


@pytest.mark.parametrize("fig_id", FIG_IDS)
def test_bench_rtt_figures(benchmark, figures, bank, scale, seed,
                           save_result, fig_id):
    figure = benchmark.pedantic(
        lambda: run_experiment(fig_id, bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result(fig_id, figure.render())
    analysis = figure.analysis
    assert analysis.peers, "no connected peers analysed"
    if analysis.correlation is not None and len(analysis.peers) >= 25:
        # Top connected peers have smaller RTT: negative correlation.
        assert analysis.correlation < 0.0


def test_bench_fig15_correlation_clearly_negative(benchmark, figures):
    analysis = benchmark.pedantic(lambda: figures["fig15"].analysis,
                                  rounds=1, iterations=1)
    if analysis.correlation is not None and len(analysis.peers) >= 20:
        assert analysis.correlation < -0.15


def test_bench_rtt_trend_grows_with_rank(benchmark, figures):
    """The least-squares fit of log(RTT) vs rank slopes upward (the
    most-requested peers sit at the low-RTT end)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    positive = 0
    counted = 0
    for fig_id in FIG_IDS:
        trend = figures[fig_id].analysis.rtt_trend
        if trend is not None and len(figures[fig_id].analysis.peers) >= 25:
            counted += 1
            if trend.slope > 0:
                positive += 1
    if counted:
        assert positive >= counted - 1
