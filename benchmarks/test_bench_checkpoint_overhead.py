"""Benchmark: checkpointing overhead on the fig06 campaign loop.

Checkpointing exists so month-scale campaigns can be killed and resumed
byte-identically — but it rides the same serial loop every run uses, so
its cost must be negligible.  Each campaign unit's snapshot is a small
JSON artifact (one locality table and a couple of counters), written
atomically after the unit completes; the write is O(result size), not
O(events), so the events/sec cost should vanish against the simulation
itself.  This bench pins that claim: the most aggressive policy
(``--checkpoint-every 1``, an fsync'd artifact after every unit) must
cost under 3% of throughput versus no checkpointing at all.

Timings use min-of-N wall clock (min is the low-noise estimator for
repeated identical work); throughput is true simulated events per
second, summed from the per-day event counters the campaign records.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.checkpoint import CheckpointPolicy
from repro.workload.campaign import CampaignConfig, run_campaign

from conftest import bench_seed

ROUNDS = 2


def _config() -> CampaignConfig:
    return CampaignConfig(seed=bench_seed(), days=3,
                          popular_population=10, unpopular_population=6,
                          session_duration=120.0, warmup=60.0)


def _campaign_events(result) -> int:
    return sum(d.events_executed for d in result.popular + result.unpopular)


def _min_wall(policy_factory):
    best, events = float("inf"), 0
    for _ in range(ROUNDS):
        workdir = Path(tempfile.mkdtemp(prefix="ckpt-bench-"))
        try:
            started = time.perf_counter()
            result = run_campaign(_config(),
                                  checkpoint=policy_factory(workdir))
            best = min(best, time.perf_counter() - started)
            events = _campaign_events(result)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return best, events


def test_bench_checkpoint_every_unit_is_cheap(benchmark, save_result):
    plain, events = benchmark.pedantic(
        lambda: _min_wall(lambda workdir: None), rounds=1, iterations=1)
    checkpointed, ckpt_events = _min_wall(
        lambda workdir: CheckpointPolicy(path=str(workdir / "ckpt"),
                                         every=1))
    assert ckpt_events == events  # checkpointing must not change results

    overhead = checkpointed / plain - 1.0
    save_result(
        "checkpoint_overhead",
        f"checkpoint overhead (3-day campaign, min of {ROUNDS}):\n"
        f"  plain:        {plain:.2f} s  "
        f"({events / plain:,.0f} events/s)\n"
        f"  every-unit:   {checkpointed:.2f} s  "
        f"({events / checkpointed:,.0f} events/s)\n"
        f"  checkpointed/plain - 1 = {overhead:+.2%}")

    # The contract documented in docs/CHECKPOINT.md: worst-case policy
    # costs < 3% throughput (plus a small absolute floor for timing
    # noise on short benches).
    assert checkpointed <= plain * 1.03 + 0.10
