"""Benchmark: the streaming progress bus must be nearly free.

The ``--progress-jsonl`` heartbeat path adds, per heartbeat interval
(default 30 simulated seconds): one sample-dict build, one JSON
serialisation, one buffered write + flush, and one ``getrusage`` call.
Against a 240-simulated-second session that is ~8 heartbeats total, so
the whole path — sampler timer events included — must be noise.  The
claim checked here: events/sec with ``--progress-jsonl`` attached stays
within 2% of the same seed run with no heartbeat path at all.  (The
cost of the rest of the instrumentation bundle is benchmarked
separately in ``test_bench_obs_overhead.py``.)
"""

import time

from repro.obs import Instrumentation, ProgressBus
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)

ROUNDS = 5

#: The bus adds serialisation + a flushed write per heartbeat; on a
#: ~30 s interval that must cost under this fraction of events/sec.
MAX_OVERHEAD = 0.02


class _NullFile:
    """A file-shaped sink that discards writes (isolates bus CPU cost)."""

    def write(self, data):
        return len(data)

    def flush(self):
        pass

    def close(self):
        pass


def _config(obs) -> ScenarioConfig:
    return ScenarioConfig(
        seed=5,
        population=20,
        mix=popular_channel_mix(),
        popularity=Popularity.POPULAR,
        probes=(TELE_PROBE,),
        warmup=60.0,
        duration=180.0,
        instrumentation=obs,
    )


def _one_run(obs):
    """(wall seconds, events executed) for one session with ``obs``."""
    started = time.perf_counter()
    result = SessionScenario(_config(obs)).run()
    wall = time.perf_counter() - started
    obs.close()
    return wall, result.deployment.sim.events_executed


def test_bench_progress_bus_overhead(tmp_path, save_result):
    def without_bus():
        return Instrumentation()

    def with_bus():
        return Instrumentation(
            progress_bus=ProgressBus(str(tmp_path / "progress.jsonl")))

    # One discarded warmup run, then interleaved rounds (min-wall), so a
    # cold first arm cannot masquerade as bus overhead (or speedup).
    _one_run(without_bus())
    base_wall = bus_wall = float("inf")
    base_events = bus_events = 0
    for _ in range(ROUNDS):
        wall, base_events = _one_run(without_bus())
        base_wall = min(base_wall, wall)
        wall, bus_events = _one_run(with_bus())
        bus_wall = min(bus_wall, wall)
    overhead = (base_events / base_wall) / (bus_events / bus_wall) - 1.0

    save_result(
        "progress_overhead",
        f"progress bus overhead (small session, interleaved best of "
        f"{ROUNDS}):\n"
        f"  without bus: {base_events / base_wall:,.0f} events/sec"
        f" ({base_events} events)\n"
        f"  with bus:    {bus_events / bus_wall:,.0f} events/sec"
        f" ({bus_events} events)\n"
        f"  overhead = {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})")

    # Structural half of the <2% claim, asserted exactly: the heartbeat
    # path adds only interval-paced sampler events — here 8 of ~62k,
    # 0.013% of the event stream — never a per-event hook.
    span = _config(None).warmup + _config(None).duration
    max_extra = int(span / 30.0) + 2  # default 30 s heartbeat interval
    assert base_events < bus_events <= base_events + max_extra

    # Timing half, with the noise pad this harness uses elsewhere: a
    # ~1.4 s session swings ±5% run to run, so the wall gate is padded
    # in absolute seconds; a real regression (per-event hook, per-beat
    # cost growing with swarm size) lands far above this line.
    assert bus_wall <= base_wall * (1.0 + MAX_OVERHEAD) + 0.25, (
        f"progress bus run took {bus_wall:.3f}s vs {base_wall:.3f}s bare "
        f"(budget {MAX_OVERHEAD:.0%} + 0.25s noise)")


def test_bench_progress_bus_constant_memory():
    # Structural half of the claim: emission never buffers records —
    # memory use cannot grow with run length.
    bus = ProgressBus(_NullFile())
    for beat in range(10_000):
        bus.heartbeat(t=float(beat), events_executed=beat * 100)
    assert bus.records_written == 10_000
    # No list/deque of records anywhere on the bus.
    held = [value for value in vars(bus).values()
            if isinstance(value, (list, dict, tuple)) and len(value) > 2]
    assert not held
    bus.close()
