"""Benchmark: flow accounting must cost <2% when on, nothing when off.

The ``--flows`` ledger is the one observability facet that hooks every
*delivered datagram* (the transport's flow-sink seam), so unlike the
heartbeat-paced progress bus its cost scales with traffic volume.  The
claims checked here:

* **off** — a session without a flow spec installs no sink and no tap,
  so the transport's delivery fast path is untouched (structural
  asserts, not a timing gate);
* **on** — the per-delivered-datagram work (one pending-accumulator
  bump plus a window-boundary check; classification and sketch feeding
  are deferred to window rolls) costs under 2% of the run's events/sec;
* the ledger never changes the event stream: events executed are
  EXACTLY equal with and without it (sinks observe, they never
  schedule).

The 2% gate is measured by *replaying the run's own delivery stream*
through a fresh ledger via the same dispatch shape ``_deliver`` uses
(None-check + sink call, wire size precomputed): the replay wall is
precisely the work the enabled sink adds, free of the ±10%+
scheduler-wide noise that swamps an end-to-end wall diff at this
session size.  The replayed ledger must finish in exactly the state the
in-run ledger reached — proving the replay measures the real work and
re-checking stream determinism in the same breath.  An end-to-end wall
gate stays on as a coarse backstop against regressions outside the sink
(e.g. on the send path, which the ledger does not touch at all).
"""

import gc
import time

from repro.obs import FlowLedger, FlowSpec
from repro.streaming import Popularity
from repro.workload.popularity import popular_channel_mix
from repro.workload.scenario import (TELE_PROBE, ScenarioConfig,
                                     SessionScenario)

ROUNDS = 5

#: Per-delivered-datagram accounting must cost under this fraction of
#: the bare run's wall time (equivalently, of its events/sec).
MAX_OVERHEAD = 0.02


def _config(flows, run_hook=None) -> ScenarioConfig:
    return ScenarioConfig(
        seed=5,
        population=20,
        mix=popular_channel_mix(),
        popularity=Popularity.POPULAR,
        probes=(TELE_PROBE,),
        warmup=60.0,
        duration=180.0,
        flows=flows,
        run_hook=run_hook,
    )


def _one_run(flows):
    """(wall seconds, session result) for one session."""
    started = time.perf_counter()
    result = SessionScenario(_config(flows)).run()
    wall = time.perf_counter() - started
    return wall, result


def _record_delivery_stream():
    """Run the bare-config session once, capturing (datagram, time,
    wire bytes) per delivered datagram — the stream the flow sink sees,
    with the wire size ``_deliver`` hands over precomputed."""
    deliveries = []

    def attach(sim, deployment, manager, probe_peers):
        deployment.internet.udp.set_flow_sink(
            lambda datagram, now, wire: deliveries.append(
                (datagram, now, wire)))

    SessionScenario(_config(None, run_hook=attach)).run()
    return deliveries


def test_bench_flow_ledger_overhead(save_result):
    spec = FlowSpec(window=60.0, top_k=32)

    # One discarded warmup run, then interleaved rounds (min-wall), so a
    # cold first arm cannot masquerade as ledger overhead (or speedup).
    _one_run(None)
    base_wall = flow_wall = float("inf")
    base_result = flow_result = None
    for _ in range(ROUNDS):
        wall, base_result = _one_run(None)
        base_wall = min(base_wall, wall)
        wall, flow_result = _one_run(spec)
        flow_wall = min(flow_wall, wall)

    base_events = base_result.deployment.sim.events_executed
    flow_events = flow_result.deployment.sim.events_executed
    datagrams = flow_result.flows.totals["datagrams"]

    # Structural halves, asserted exactly: the sink observes deliveries
    # that already happen — the event stream is identical — and the run
    # without a spec never installed a sink or a tap (delivery fast
    # path intact).
    assert flow_events == base_events
    assert base_result.flows is None
    assert base_result.deployment.internet.udp._taps == []
    assert base_result.deployment.internet.udp._flow_sink is None
    assert flow_result.deployment.internet.udp._flow_sink is None
    assert flow_result.flows.totals["bytes"] == \
        flow_result.deployment.internet.udp.bytes_delivered

    # The precise cost: replay the run's own delivery stream through a
    # fresh ledger, dispatched exactly like UdpNetwork._deliver does
    # (None-check, then the sink call with the precomputed wire size).
    # GC is off while timing (as timeit does) and the replay loop's own
    # iteration cost — tuple unpacking that in-run code never pays — is
    # calibrated out with a sink-less pass over the same stream.
    deliveries = _record_delivery_stream()
    assert len(deliveries) == datagrams
    replay_raw = iter_wall = float("inf")
    replay_ledger = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for datagram, now, wire in deliveries:
                pass
            iter_wall = min(iter_wall, time.perf_counter() - started)
            replay_ledger = FlowLedger(
                flow_result.directory,
                flow_result.deployment.internet.catalog, spec)
            sink = replay_ledger.sink
            started = time.perf_counter()
            for datagram, now, wire in deliveries:
                if sink is not None:
                    sink(datagram, now, wire)
            replay_raw = min(replay_raw, time.perf_counter() - started)
            replay_ledger.finish(deliveries[-1][1])
    finally:
        if gc_was_enabled:
            gc.enable()
    replay_wall = max(replay_raw - iter_wall, 0.0)

    # The replayed ledger lands in exactly the in-run ledger's state:
    # the replay timed the real work, and the stream is deterministic.
    assert replay_ledger.snapshot_state() == \
        flow_result.flows.snapshot_state()

    overhead = replay_wall / base_wall
    per_datagram_ns = 1e9 * replay_wall / datagrams

    save_result(
        "flows_overhead",
        f"flow ledger overhead (small session, interleaved best of "
        f"{ROUNDS}):\n"
        f"  without ledger: {base_events / base_wall:,.0f} events/sec"
        f" ({base_events} events, {base_wall:.3f}s)\n"
        f"  with ledger:    {flow_events / flow_wall:,.0f} events/sec"
        f" end-to-end ({datagrams:,} datagrams accounted)\n"
        f"  accounting cost (replayed delivery stream, best of "
        f"{ROUNDS}): {per_datagram_ns:,.0f} ns/datagram\n"
        f"  events/sec cost when enabled = {overhead:+.2%} "
        f"(budget {MAX_OVERHEAD:.0%})")

    # The committed gate: what the sink adds per delivered datagram,
    # as a fraction of the bare run's wall time.
    assert overhead < MAX_OVERHEAD, (
        f"flow accounting costs {per_datagram_ns:,.0f} ns/datagram = "
        f"{overhead:+.2%} of the bare run (budget {MAX_OVERHEAD:.0%})")

    # Coarse end-to-end backstop with the absolute noise pad this
    # harness uses elsewhere: a ~1.2 s session swings ±10%+ run to run.
    # A regression outside the sink itself (send-path work, an extra
    # event per datagram) lands far above this line.
    assert flow_wall <= base_wall * (1.0 + MAX_OVERHEAD) + 0.25, (
        f"flow-ledger run took {flow_wall:.3f}s vs {base_wall:.3f}s bare "
        f"(budget {MAX_OVERHEAD:.0%} + 0.25s noise)")


def test_bench_flow_ledger_constant_memory():
    # Structural half of the constant-memory claim: matrix cells are
    # bounded by |ISPs|^2 x kinds, windows by the non-empty window
    # count, the sketch by top_k — never by datagram count.
    _, result = _one_run(FlowSpec(window=60.0, top_k=8))
    ledger = result.flows
    assert len(ledger._sketch) <= 8
    state = ledger.snapshot_state()
    span = _config(None).warmup + _config(None).duration
    assert len(state["windows"]) <= int(span / 60.0) + 2
    catalog_size = len(result.deployment.internet.catalog)
    kinds = {row[2] for row in state["matrix"]}
    assert len(state["matrix"]) <= catalog_size ** 2 * len(kinds)
    # Thousands of datagrams were accounted into that bounded state.
    assert ledger.totals["datagrams"] > 1000
