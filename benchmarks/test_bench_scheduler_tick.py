"""Benchmark: per-tick scheduler planning cost, fast vs reference path.

Isolates ``DataScheduler.tick()`` from the rest of the stack so future
scheduler changes are gated independently of the end-to-end bench: a
synthetic steady-state session (a dozen neighbors, rolling availability
reports, the live edge advancing every tick, every issued request
settled by an immediate reply) drives thousands of ticks against a
scripted request sink — no transport, no real network.

Two claims are checked:

* **Equivalence** — the fast path (incremental availability view +
  saturated-chunk memo) and the ``REPRO_REFERENCE_PATH=1`` full-rebuild
  path issue the *identical* request sequence, asserted tuple for
  tuple at the unit level (the end-to-end goldens check the same thing
  through the whole stack).
* **Speed** — the fast path must never fall behind the reference path
  it replaces; on an idle machine it is expected to be well ahead.
"""

import os
import time

from repro.fastpath import REFERENCE_ENV
from repro.protocol.config import ProtocolConfig
from repro.protocol.neighbors import NeighborTable
from repro.protocol.scheduler import DataScheduler
from repro.sim import Simulator
from repro.streaming import ChunkBuffer, ChunkGeometry, SUBPIECE_LARGE

TICKS = 3000
NEIGHBORS = 12
ROUNDS = 3

#: Noise gate: the fast path may not be slower than the reference path
#: beyond timer jitter.  The expected ratio is far below 1.0; anything
#: near this line means the incremental state stopped paying for itself.
MAX_RATIO = 1.10
NOISE_PAD_SECONDS = 0.15


class _Harness:
    """Scheduler + scripted sink, shaped like one steady viewing session."""

    def __init__(self):
        # 4 sub-pieces per chunk, same shape the protocol unit tests pin.
        geometry = ChunkGeometry(bitrate_bps=SUBPIECE_LARGE * 8,
                                 chunk_seconds=4.0)
        config = ProtocolConfig()
        self.sim = Simulator(seed=4)
        self.buffer = ChunkBuffer(geometry, first_chunk=0)
        self.neighbors = NeighborTable(capacity=NEIGHBORS)
        self.issued = []
        self.scheduler = DataScheduler(
            self.sim, config, geometry, self.buffer, self.neighbors,
            send_request=lambda addr, chunk, first, last, seq:
                self.issued.append((addr, chunk, first, last, seq)))
        self.states = []
        for index in range(NEIGHBORS):
            state = self.neighbors.add(f"10.0.0.{index + 1}",
                                       now=self.sim.now)
            state.record_availability(4 + index % 5, self.sim.now, 0)
            state.record_response(0.05 + 0.01 * index, alpha=1.0)
            self.states.append(state)

    def run(self, ticks):
        """Drive ``ticks`` steady-state rounds; returns the tick seconds.

        Each round advances the clock and the live edge, lands a few
        availability reports (invalidating the cached view the way real
        buffer-map traffic does), plans one tick, then settles the
        *previous* round's requests with full replies — so every tick
        plans over a window partially covered by in-flight requests,
        the steady state the saturated-chunk memo exists for, while the
        window keeps sliding instead of exhausting the budget.
        """
        sim = self.sim
        scheduler = self.scheduler
        issued = self.issued
        states = self.states
        tick_seconds = 0.0
        settled = 0
        for round_index in range(ticks):
            sim.clock._now += 0.4
            now = sim.clock._now
            live = 8 + round_index
            # Reports lag the live edge by a few chunks, as real
            # buffer-map traffic does: the top of the prefetch window
            # sits above every neighbor's estimate, which is exactly
            # the region the fast path's max-estimate ceiling skips
            # without scanning.
            for offset in range(4):
                state = states[(round_index * 4 + offset) % NEIGHBORS]
                state.record_availability(live - 2 - offset * 2, now, 0)
            in_flight_floor = len(issued)
            started = time.perf_counter()
            scheduler.tick(live_chunk=live,
                           playout_chunk=max(-1, live - 6))
            tick_seconds += time.perf_counter() - started
            for address, chunk, first, last, seq in \
                    issued[settled:in_flight_floor]:
                scheduler.on_reply(seq, chunk, first, last,
                                   have_until=live)
            settled = in_flight_floor
        return tick_seconds


def _one_arm(reference):
    """Best-of-``ROUNDS`` tick seconds for one path selection."""
    previous = os.environ.get(REFERENCE_ENV)
    os.environ[REFERENCE_ENV] = "1" if reference else "0"
    try:
        best = float("inf")
        trace = None
        for _ in range(ROUNDS):
            harness = _Harness()
            best = min(best, harness.run(TICKS))
            if trace is None:
                trace = harness.issued
            else:
                assert harness.issued == trace  # arm is self-deterministic
        return best, trace
    finally:
        if previous is None:
            del os.environ[REFERENCE_ENV]
        else:
            os.environ[REFERENCE_ENV] = previous


def test_bench_scheduler_tick(save_result):
    # Discarded warmup arm so cold-start cost lands on neither side.
    _one_arm(reference=False)
    fast_wall, fast_trace = _one_arm(reference=False)
    reference_wall, reference_trace = _one_arm(reference=True)

    # Equivalence first: both paths must plan the identical requests.
    assert fast_trace == reference_trace
    assert len(fast_trace) > TICKS  # the session actually planned work

    ratio = fast_wall / reference_wall
    save_result(
        "scheduler_tick",
        f"scheduler tick microbench ({TICKS} steady-state ticks, "
        f"{NEIGHBORS} neighbors, best of {ROUNDS}):\n"
        f"  reference path: {reference_wall:.3f}s "
        f"({reference_wall / TICKS * 1e6:.1f} us/tick)\n"
        f"  fast path:      {fast_wall:.3f}s "
        f"({fast_wall / TICKS * 1e6:.1f} us/tick)\n"
        f"  fast/reference ratio = {ratio:.2f} "
        f"({len(fast_trace)} identical requests planned)")

    assert fast_wall <= reference_wall * MAX_RATIO + NOISE_PAD_SECONDS, (
        f"fast tick path took {fast_wall:.3f}s vs reference "
        f"{reference_wall:.3f}s — the incremental state no longer pays "
        f"for itself")
