"""Benchmarks regenerating Figures 2-5: ISP-level locality panels.

Shape targets (paper vs simulation):

* Fig 2 (TELE probe, popular): most returned addresses and the majority
  of transmissions/bytes come from TELE,
* Fig 3 (TELE, unpopular): TELE and CNC returned counts comparable;
  TELE still the largest byte source,
* Fig 4 (Mason, popular): CNC/TELE peers return mostly own-ISP entries,
* Fig 5 (Mason, unpopular): the download mix is dominated by Chinese
  peers (too few Foreign viewers).
"""

import pytest

from repro.experiments import run_experiment
from repro.network.isp import ISPCategory


@pytest.fixture(scope="module")
def figures(bank, scale, seed):
    return {
        fig_id: run_experiment(fig_id, bank=bank, scale=scale, seed=seed)
        for fig_id in ("fig02", "fig03", "fig04", "fig05")
    }


def test_bench_fig02_tele_popular(benchmark, figures, bank, scale, seed,
                                  save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig02", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig02", figure.render())
    b = figure.breakdown
    # Panel (a): TELE is the top source of returned addresses.
    assert b.returned_counts.most_common(1)[0][0] is ISPCategory.TELE
    # Panel (c): TELE provides the plurality of transmissions and bytes.
    assert b.transmissions.most_common(1)[0][0] is ISPCategory.TELE
    assert b.bytes.most_common(1)[0][0] is ISPCategory.TELE
    assert b.locality > 0.4


def test_bench_fig03_tele_unpopular(benchmark, figures, bank, scale, seed,
                                    save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig03", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig03", figure.render())
    b = figure.breakdown
    counts = b.returned_counts
    # Panel (a): TELE and CNC comparable for the unpopular program.
    if counts[ISPCategory.TELE] and counts[ISPCategory.CNC]:
        ratio = counts[ISPCategory.CNC] / counts[ISPCategory.TELE]
        assert 0.3 < ratio < 3.0
    # Locality lower than the popular case but still present.
    assert b.locality > 0.2


def test_bench_fig04_mason_popular(benchmark, figures, bank, scale, seed,
                                   save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig04", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig04", figure.render())
    shares = figure.own_isp_reply_shares
    # Panel (b): Chinese peers return mostly own-ISP entries even when
    # observed from the USA.  (The paper reports >75% at PPLive scale;
    # the threshold here is conservative for ~100-peer swarms.)
    for bucket in ("TELE_p", "CNC_p"):
        if bucket in shares:
            assert shares[bucket] > 0.25, f"{bucket}: {shares[bucket]}"


def test_bench_fig05_mason_unpopular(benchmark, figures, bank, scale,
                                     seed, save_result):
    figure = benchmark.pedantic(
        lambda: run_experiment("fig05", bank=bank, scale=scale, seed=seed),
        rounds=1, iterations=1)
    save_result("fig05", figure.render())
    b = figure.breakdown
    chinese = sum(b.bytes.get(c, 0)
                  for c in (ISPCategory.TELE, ISPCategory.CNC,
                            ISPCategory.CER, ISPCategory.OTHER_CN))
    # The Mason host watching an unpopular Chinese program is fed mainly
    # by Chinese peers ("too few Foreign peers watching").
    if b.bytes_total:
        assert chinese / b.bytes_total > 0.5


def test_bench_fig02_vs_fig03_popularity_gap(benchmark, figures):
    """The popular program shows at least as much locality (paper: 85%
    vs 55%); allow noise but require a clear gap at default scale."""
    popular, unpopular = benchmark.pedantic(
        lambda: (figures["fig02"].breakdown.locality,
                 figures["fig03"].breakdown.locality),
        rounds=1, iterations=1)
    assert popular >= unpopular - 0.10
