"""Chunk/sub-piece request scheduling.

The scheduler turns "which sub-pieces am I missing before the live edge"
into concrete :class:`DataRequest` messages addressed to neighbors.  Its
neighbor choice is the second half of the paper's locality mechanism:

* eligibility is availability-based (the neighbor's *extrapolated*
  advertised progress must cover the chunk),
* among eligible neighbors the pick is weighted by observed
  responsiveness, ``weight = ewma_response ** -beta``, with an
  epsilon-greedy exploration floor so newcomers get sampled,
* misses and timeouts feed back into the neighbor's availability bias and
  EWMA, so stale or overloaded neighbors fade out naturally.

Because nearby (same-ISP) neighbors systematically answer faster, this
purely latency-driven feedback concentrates requests on them — producing
both the ISP-level byte locality (Figs 2-5) and the stretched-exponential
per-neighbor request distribution with its RTT anticorrelation
(Figs 11-18) without ever consulting topology information.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..obs import WARNING, Instrumentation
from ..obs import resolve as resolve_obs
from ..sim.engine import Simulator
from ..sim.random import weighted_choice
from ..streaming.buffer import ChunkBuffer
from ..streaming.chunks import ChunkGeometry
from .config import ProtocolConfig
from .neighbors import NeighborState, NeighborTable

#: Callback the owning peer supplies to actually transmit a request:
#: (neighbor_address, chunk, first, last, seq) -> None
SendRequestFn = Callable[[str, int, int, int, int], None]


class RequestRateLimiter:
    """Per-requester token bucket for the serve side of the data plane.

    One bucket per requesting address, refilled continuously at ``rate``
    tokens/second up to ``burst``.  ``allow`` spends one token and
    returns False when the bucket is dry — the caller drops (and may
    strike) the request.  Pure arithmetic on the simulation clock: no
    RNG, no timers, so an idle limiter costs nothing and a busy one
    stays deterministic.
    """

    __slots__ = ("rate", "burst", "_buckets")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        #: address -> (tokens, last_refill_time)
        self._buckets: Dict[str, tuple] = {}

    def allow(self, address: str, now: float) -> bool:
        entry = self._buckets.get(address)
        if entry is None:
            tokens = self.burst
        else:
            tokens, last = entry
            tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[address] = (tokens, now)
            return False
        self._buckets[address] = (tokens - 1.0, now)
        return True

    def forget(self, address: str) -> None:
        self._buckets.pop(address, None)

    def snapshot_state(self) -> dict:
        return {"buckets": {address: list(entry) for address, entry
                            in self._buckets.items()}}

    def restore_state(self, state: dict) -> None:
        self._buckets = {address: tuple(entry) for address, entry
                         in state["buckets"].items()}


@dataclass
class PendingRequest:
    """One in-flight data request."""

    seq: int
    neighbor: str
    chunk: int
    first: int
    last: int
    sent_at: float
    timeout_event: object = None
    to_source: bool = False
    span: object = None


class DataScheduler:
    """Plans and tracks data requests for one viewing session."""

    def __init__(self, sim: Simulator, config: ProtocolConfig,
                 geometry: ChunkGeometry, buffer: ChunkBuffer,
                 neighbors: NeighborTable, send_request: SendRequestFn,
                 source_address: Optional[str] = None,
                 rng: Optional[random.Random] = None,
                 obs: Optional[Instrumentation] = None,
                 obs_tags: Optional[dict] = None,
                 actor: Optional[str] = None,
                 span_parent: object = None) -> None:
        self.sim = sim
        self.config = config
        self.geometry = geometry
        self.buffer = buffer
        self.neighbors = neighbors
        self.send_request = send_request
        self.source_address = source_address
        self._rng = rng if rng is not None else sim.random.stream("scheduler")
        self._pending: Dict[int, PendingRequest] = {}
        #: chunk -> bitmask of sub-pieces currently covered by in-flight
        #: requests (bit i == sub-piece i), mirroring the buffer's
        #: internal representation so planning is pure integer math.
        self._requested: Dict[int, int] = {}
        self._next_seq = 1
        self._source_inflight = 0
        self._source_cooldown_until = 0.0
        # Accounting
        self.requests_issued = 0
        self.requests_to_source = 0
        self.replies_handled = 0
        self.misses_handled = 0
        self.timeouts = 0
        self.duplicate_replies = 0
        self.poisoned_rejected = 0
        # Observability: series shared per tag set (usually per ISP).
        obs = resolve_obs(obs)
        self._trace = obs.trace
        self._spans = obs.spans
        self._actor = actor
        self._span_parent = span_parent
        metrics = obs.metrics
        self._m_requests = metrics.counter("proto.data_requests_issued",
                                           obs_tags)
        self._m_to_source = metrics.counter("proto.data_requests_to_source",
                                            obs_tags)
        self._m_timeouts = metrics.counter("proto.data_request_timeouts",
                                           obs_tags)
        self._m_misses = metrics.counter("proto.data_request_misses",
                                         obs_tags)
        self._m_cooldowns = metrics.counter("proto.neighbor_cooldowns",
                                            obs_tags)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._pending)

    def tick(self, live_chunk: int, playout_chunk: int,
             urgent_until: Optional[int] = None) -> None:
        """Issue requests for missing data inside the prefetch window.

        The window spans from the buffer frontier up to
        ``playout + prefetch_chunks``, clipped at the live edge — the
        client fills a bounded look-ahead buffer rather than racing to
        the newest chunk, which is what creates the lag gradient the
        swarm redistributes along.
        """
        self._drop_stale_bookkeeping()
        if live_chunk < self.buffer.first_chunk:
            return
        window_top = min(live_chunk,
                         playout_chunk + self.config.prefetch_chunks)
        if urgent_until is None:
            urgent_chunks = max(
                1, math.ceil(self.config.urgent_deadline
                             / self.geometry.chunk_seconds))
            urgent_until = playout_chunk + urgent_chunks
        chunk = self.buffer.have_until + 1
        budget = self.config.total_inflight - self.inflight
        if budget <= 0 or chunk > window_top:
            return
        # Availability and cooldown are stable within one tick: evaluate
        # each neighbor once here instead of per candidate chunk.
        availability = self._availability_snapshot()
        while chunk <= window_top and budget > 0:
            run = self._next_missing_run(chunk)
            if run is None:
                chunk += 1
                continue
            first, last = run
            is_urgent = chunk <= urgent_until
            target = self._pick_neighbor(chunk, is_urgent, availability)
            if target is None:
                chunk += 1
                continue
            self._issue(target, chunk, first, last)
            budget -= 1
            # Allow several batches of the same chunk in one tick, going
            # to (possibly) different neighbors.

    def _availability_snapshot(self) -> List[tuple]:
        """(estimated_have, have_from, state) per usable neighbor."""
        now = self.sim.now
        cfg = self.config
        chunk_seconds = self.geometry.chunk_seconds
        slope = cfg.availability_slope
        margin = cfg.availability_margin
        max_extrapolation = cfg.max_extrapolation_chunks
        source = self.source_address
        snapshot = []
        append = snapshot.append
        for state in self.neighbors:
            if state.address == source or state.cooldown_until > now:
                continue
            est = state.estimated_have(now, chunk_seconds, slope, margin,
                                       max_extrapolation)
            if est >= 0:
                append((est, state.reported_from, state))
        return snapshot

    def _next_missing_run(self, chunk: int) -> Optional[tuple]:
        """Longest contiguous run of unrequested missing sub-pieces.

        Pure bitmask arithmetic: lowest missing-and-unrequested bit,
        then the run of consecutive set bits above it, capped at
        ``subpieces_per_request`` — identical to walking the ascending
        missing list, without materialising it.
        """
        missing = self.buffer.missing_mask(chunk)
        if not missing:
            return None
        covered = self._requested.get(chunk)
        if covered:
            missing &= ~covered
            if not missing:
                return None
        first = (missing & -missing).bit_length() - 1
        run = missing >> first
        # Number of trailing set bits of `run` (bit 0 is set).
        trailing = (~run & (run + 1)).bit_length() - 1
        limit = self.config.subpieces_per_request
        if trailing > limit:
            trailing = limit
        return first, first + trailing - 1

    def _pick_neighbor(self, chunk: int, is_urgent: bool,
                       availability: Optional[List[tuple]] = None
                       ) -> Optional[NeighborState]:
        if availability is None:
            availability = self._availability_snapshot()
        limit = self.config.per_neighbor_inflight
        eligible = [state for est, have_from, state in availability
                    if est >= chunk >= have_from
                    and state.inflight < limit]
        if not eligible:
            if (is_urgent and self.source_address is not None
                    and self._source_inflight
                    < self.config.per_neighbor_inflight
                    and self.sim.now >= self._source_cooldown_until):
                return self._source_state()
            return None
        if self._rng.random() < self.config.exploration_epsilon:
            return self._rng.choice(eligible)
        weights = [self._weight(s) for s in eligible]
        return weighted_choice(self._rng, eligible, weights)

    def _weight(self, state: NeighborState) -> float:
        # Before any data flows the handshake round-trip is the latency
        # prior, so nearby neighbors attract requests from the very first
        # schedule.  The floor bounds how much one very fast neighbor can
        # monopolise.
        response = max(state.effective_response(),
                       self.config.weight_response_floor)
        return response ** -self.config.responsiveness_beta

    def _source_state(self) -> NeighborState:
        # A synthetic state for the channel source; never stored in the
        # neighbor table and never counted against its capacity.
        state = NeighborState(address=self.source_address,
                              connected_at=0.0, last_heard=self.sim.now)
        state.reported_have = 1 << 60
        return state

    # ------------------------------------------------------------------
    # Issue / resolve
    # ------------------------------------------------------------------
    def _issue(self, target: NeighborState, chunk: int,
               first: int, last: int) -> None:
        seq = self._next_seq
        self._next_seq += 1
        to_source = target.address == self.source_address
        pending = PendingRequest(seq=seq, neighbor=target.address,
                                 chunk=chunk, first=first, last=last,
                                 sent_at=self.sim.now, to_source=to_source)
        if self._spans.enabled:
            pending.span = self._spans.start_span(
                "data_request", "data", self.sim.now,
                parent=self._span_parent, actor=self._actor, seq=seq,
                neighbor=target.address, chunk=chunk, first=first,
                last=last, to_source=to_source)
        pending.timeout_event = self.sim.call_after(
            self.config.data_timeout, lambda: self._on_timeout(seq),
            label="data-timeout")
        self._pending[seq] = pending
        span = ((1 << (last - first + 1)) - 1) << first
        self._requested[chunk] = self._requested.get(chunk, 0) | span
        if to_source:
            self._source_inflight += 1
            self.requests_to_source += 1
            self._m_to_source.inc()
        else:
            target.inflight += 1
            target.data_requests_sent += 1
        self.requests_issued += 1
        self._m_requests.inc()
        self.send_request(target.address, chunk, first, last, seq)

    def on_reply(self, seq: int, chunk: int, first: int, last: int,
                 have_until: int, have_from: int = 0) -> int:
        """Handle a data reply; returns the number of new sub-pieces."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            self.duplicate_replies += 1
            return 0
        self._settle(pending)
        self.replies_handled += 1
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.record_response(self.sim.now - pending.sent_at,
                                     self.config.ewma_alpha)
            neighbor.record_availability(have_until, self.sim.now, have_from)
            neighbor.data_replies_received += 1
        added = self.buffer.add_range(chunk, first, last)
        if neighbor is not None:
            neighbor.bytes_received += self.geometry.range_bytes(first, last)
        if pending.span is not None:
            pending.span.finish(self.sim.now, subpieces=added)
            if added and self.buffer.has_chunk(chunk):
                # The reply that completed the chunk: the hand-off point
                # from the data chain to the playback chain.
                self._spans.instant("chunk_complete", "data", self.sim.now,
                                    parent=pending.span, chunk=chunk)
        return added

    def on_miss(self, seq: int, have_until: int,
                have_from: int = 0) -> None:
        """Handle a negative reply (replier lacked the range)."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self._settle(pending)
        self.misses_handled += 1
        self._m_misses.inc()
        if pending.span is not None:
            pending.span.finish(self.sim.now, "miss")
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.record_miss(self.sim.now)
            neighbor.cooldown_until = self.sim.now + self.config.miss_cooldown
            self._m_cooldowns.inc()
            if have_until >= 0:
                # A miss is the most authoritative availability signal:
                # overwrite (do not merely max) the reported range.
                neighbor.reported_have = have_until
                neighbor.reported_at = self.sim.now
                neighbor.reported_from = have_from

    def on_poisoned(self, seq: int) -> bool:
        """Handle a reply whose payload failed integrity verification.

        The pending entry is settled and its ``_requested`` bits are
        cleared *without* adding anything to the buffer, so the very
        next tick re-plans the range — the poisoned-chunk re-fetch.
        The polluter is cooled down like a timed-out neighbor (the
        caller additionally strikes it), and its EWMA is penalised with
        the full data timeout: a poisoned transfer wasted at least that
        much playout headroom.  Returns True when a live request was
        settled (the range will be re-fetched), False for a duplicate.
        """
        pending = self._pending.pop(seq, None)
        if pending is None:
            self.duplicate_replies += 1
            return False
        self._settle(pending)
        self.poisoned_rejected += 1
        if pending.span is not None:
            pending.span.finish(self.sim.now, "poisoned")
        if self._trace.enabled_for(WARNING):
            self._trace.emit(self.sim.now, WARNING, "poisoned_reply",
                             neighbor=pending.neighbor, seq=pending.seq,
                             chunk=pending.chunk)
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.cooldown_until = (self.sim.now
                                       + self.config.timeout_cooldown)
            self._m_cooldowns.inc()
            neighbor.record_response(self.config.data_timeout,
                                     self.config.ewma_alpha)
        return True

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self._settle(pending, cancel_timeout=False)
        self.timeouts += 1
        self._m_timeouts.inc()
        if pending.span is not None:
            pending.span.finish(self.sim.now, "timeout")
        if self._trace.enabled_for(WARNING):
            self._trace.emit(self.sim.now, WARNING, "data_request_timeout",
                             neighbor=pending.neighbor, seq=pending.seq,
                             chunk=pending.chunk,
                             to_source=pending.to_source)
        if pending.to_source:
            self._source_cooldown_until = (self.sim.now
                                           + self.config.timeout_cooldown)
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.data_timeouts += 1
            neighbor.cooldown_until = (self.sim.now
                                       + self.config.timeout_cooldown)
            self._m_cooldowns.inc()
            # Penalise the EWMA with the full timeout so unresponsive
            # neighbors stop attracting requests.
            neighbor.record_response(self.config.data_timeout,
                                     self.config.ewma_alpha)

    def _settle(self, pending: PendingRequest,
                cancel_timeout: bool = True) -> None:
        if cancel_timeout and pending.timeout_event is not None:
            self.sim.cancel(pending.timeout_event)
        covered = self._requested.get(pending.chunk)
        if covered is not None:
            span = ((1 << (pending.last - pending.first + 1)) - 1) \
                << pending.first
            covered &= ~span
            if covered:
                self._requested[pending.chunk] = covered
            else:
                del self._requested[pending.chunk]
        if pending.to_source:
            self._source_inflight = max(0, self._source_inflight - 1)
        else:
            neighbor = self.neighbors.get(pending.neighbor)
            if neighbor is not None:
                neighbor.inflight = max(0, neighbor.inflight - 1)

    def reset_for_buffer(self, buffer: ChunkBuffer) -> None:
        """Rebind to a fresh buffer after a live re-sync.

        All in-flight requests are settled (timeout events cancelled,
        per-neighbor inflight counters released) so the neighbor table
        stays consistent; late replies for old sequence numbers are then
        counted as duplicates and ignored.
        """
        for seq in list(self._pending):
            pending = self._pending.pop(seq)
            self._settle(pending)
            if pending.span is not None:
                pending.span.finish(self.sim.now, "reset")
        self._requested.clear()
        self.buffer = buffer

    def forget_neighbor(self, address: str) -> None:
        """Drop in-flight state for a departed neighbor."""
        stale = [seq for seq, p in self._pending.items()
                 if p.neighbor == address and not p.to_source]
        for seq in stale:
            pending = self._pending.pop(seq)
            self._settle(pending)
            if pending.span is not None:
                pending.span.finish(self.sim.now, "neighbor_lost")

    def _drop_stale_bookkeeping(self) -> None:
        frontier = self.buffer.have_until
        stale = [c for c in self._requested if c <= frontier]
        for chunk in stale:
            del self._requested[chunk]
