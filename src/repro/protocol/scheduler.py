"""Chunk/sub-piece request scheduling.

The scheduler turns "which sub-pieces am I missing before the live edge"
into concrete :class:`DataRequest` messages addressed to neighbors.  Its
neighbor choice is the second half of the paper's locality mechanism:

* eligibility is availability-based (the neighbor's *extrapolated*
  advertised progress must cover the chunk),
* among eligible neighbors the pick is weighted by observed
  responsiveness, ``weight = ewma_response ** -beta``, with an
  epsilon-greedy exploration floor so newcomers get sampled,
* misses and timeouts feed back into the neighbor's availability bias and
  EWMA, so stale or overloaded neighbors fade out naturally.

Because nearby (same-ISP) neighbors systematically answer faster, this
purely latency-driven feedback concentrates requests on them — producing
both the ISP-level byte locality (Figs 2-5) and the stretched-exponential
per-neighbor request distribution with its RTT anticorrelation
(Figs 11-18) without ever consulting topology information.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..fastpath import fastpath_verify_enabled, reference_path_enabled
from ..obs import WARNING, Instrumentation
from ..obs import resolve as resolve_obs
from ..sim.engine import Simulator
from ..sim.random import weighted_choice
from ..streaming.buffer import ChunkBuffer
from ..streaming.chunks import ChunkGeometry
from .config import ProtocolConfig
from .neighbors import NeighborState, NeighborTable

#: Callback the owning peer supplies to actually transmit a request:
#: (neighbor_address, chunk, first, last, seq) -> None
SendRequestFn = Callable[[str, int, int, int, int], None]

#: Optional batch counterpart: one call with the whole tick's issues,
#: each a (neighbor_address, chunk, first, last, seq) tuple, so the
#: owning peer can hand the cohort to the transport in one pass.
SendRequestsFn = Callable[[List[tuple]], None]


class RequestRateLimiter:
    """Per-requester token bucket for the serve side of the data plane.

    One bucket per requesting address, refilled continuously at ``rate``
    tokens/second up to ``burst``.  ``allow`` spends one token and
    returns False when the bucket is dry — the caller drops (and may
    strike) the request.  Pure arithmetic on the simulation clock: no
    RNG, no timers, so an idle limiter costs nothing and a busy one
    stays deterministic.
    """

    __slots__ = ("rate", "burst", "_buckets")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        #: address -> (tokens, last_refill_time)
        self._buckets: Dict[str, tuple] = {}

    def allow(self, address: str, now: float) -> bool:
        entry = self._buckets.get(address)
        if entry is None:
            tokens = self.burst
        else:
            tokens, last = entry
            tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[address] = (tokens, now)
            return False
        self._buckets[address] = (tokens - 1.0, now)
        return True

    def forget(self, address: str) -> None:
        self._buckets.pop(address, None)

    def snapshot_state(self) -> dict:
        return {"buckets": {address: list(entry) for address, entry
                            in self._buckets.items()}}

    def restore_state(self, state: dict) -> None:
        self._buckets = {address: tuple(entry) for address, entry
                         in state["buckets"].items()}


@dataclass
class PendingRequest:
    """One in-flight data request."""

    seq: int
    neighbor: str
    chunk: int
    first: int
    last: int
    sent_at: float
    timeout_event: object = None
    to_source: bool = False
    span: object = None


class DataScheduler:
    """Plans and tracks data requests for one viewing session."""

    def __init__(self, sim: Simulator, config: ProtocolConfig,
                 geometry: ChunkGeometry, buffer: ChunkBuffer,
                 neighbors: NeighborTable, send_request: SendRequestFn,
                 source_address: Optional[str] = None,
                 rng: Optional[random.Random] = None,
                 obs: Optional[Instrumentation] = None,
                 obs_tags: Optional[dict] = None,
                 actor: Optional[str] = None,
                 span_parent: object = None,
                 send_requests: Optional[SendRequestsFn] = None) -> None:
        self.sim = sim
        self.config = config
        self.geometry = geometry
        self.buffer = buffer
        self.neighbors = neighbors
        self.send_request = send_request
        self.send_requests = send_requests
        self.source_address = source_address
        self._rng = rng if rng is not None else sim.random.stream("scheduler")
        self._pending: Dict[int, PendingRequest] = {}
        #: chunk -> bitmask of sub-pieces currently covered by in-flight
        #: requests (bit i == sub-piece i), mirroring the buffer's
        #: internal representation so planning is pure integer math.
        self._requested: Dict[int, int] = {}
        self._next_seq = 1
        self._source_inflight = 0
        self._source_cooldown_until = 0.0
        # Fast-path state (see repro.fastpath).  Instead of rebuilding
        # the availability snapshot and re-scanning every window chunk
        # from scratch each tick, the fast tick keeps two incremental
        # structures: an epoch-keyed cache of per-neighbor availability
        # estimates (recomputed only when the neighbor's report moved or
        # its extrapolation quantum expired) and the set of window
        # chunks known to have no plannable sub-piece run (invalidated
        # when an in-flight request over the chunk settles).  The
        # from-scratch rebuild stays alive as the reference path, and
        # REPRO_FASTPATH_VERIFY=1 asserts the two agree on every tick.
        self._reference_path = reference_path_enabled()
        self._verify = fastpath_verify_enabled()
        self._avail_cache: Dict[str, tuple] = {}
        self._saturated: set = set()
        #: Whole-view cache layered on top of ``_avail_cache``:
        #: ``(table_version, horizon, view, max_est)``.  Valid while the
        #: neighbor table's change counter is unchanged and ``now`` is
        #: before the horizon (the earliest cooldown expiry or
        #: extrapolation-quantum boundary that could alter the view).
        self._view_cache: Optional[tuple] = None
        # Accounting
        self.requests_issued = 0
        self.requests_to_source = 0
        self.replies_handled = 0
        self.misses_handled = 0
        self.timeouts = 0
        self.duplicate_replies = 0
        self.poisoned_rejected = 0
        # Observability: series shared per tag set (usually per ISP).
        obs = resolve_obs(obs)
        self._trace = obs.trace
        self._spans = obs.spans
        self._actor = actor
        self._span_parent = span_parent
        metrics = obs.metrics
        self._m_requests = metrics.counter("proto.data_requests_issued",
                                           obs_tags)
        self._m_to_source = metrics.counter("proto.data_requests_to_source",
                                            obs_tags)
        self._m_timeouts = metrics.counter("proto.data_request_timeouts",
                                           obs_tags)
        self._m_misses = metrics.counter("proto.data_request_misses",
                                         obs_tags)
        self._m_cooldowns = metrics.counter("proto.neighbor_cooldowns",
                                            obs_tags)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._pending)

    def tick(self, live_chunk: int, playout_chunk: int,
             urgent_until: Optional[int] = None) -> None:
        """Issue requests for missing data inside the prefetch window.

        The window spans from the buffer frontier up to
        ``playout + prefetch_chunks``, clipped at the live edge — the
        client fills a bounded look-ahead buffer rather than racing to
        the newest chunk, which is what creates the lag gradient the
        swarm redistributes along.
        """
        self._drop_stale_bookkeeping()
        if live_chunk < self.buffer.first_chunk:
            return
        window_top = min(live_chunk,
                         playout_chunk + self.config.prefetch_chunks)
        if urgent_until is None:
            urgent_chunks = max(
                1, math.ceil(self.config.urgent_deadline
                             / self.geometry.chunk_seconds))
            urgent_until = playout_chunk + urgent_chunks
        chunk = self.buffer.have_until + 1
        budget = self.config.total_inflight - self.inflight
        if budget <= 0 or chunk > window_top:
            return
        # Availability and cooldown are stable within one tick: evaluate
        # each neighbor once here instead of per candidate chunk.  The
        # fast path reuses cached estimates and skips chunks proven
        # unplannable; the reference path rebuilds everything.
        fast = not self._reference_path
        if fast:
            availability, max_est = self._availability_view()
            saturated = self._saturated
        else:
            availability = self._availability_snapshot()
        issues = None
        while chunk <= window_top and budget > 0:
            if fast:
                if chunk in saturated:
                    if self._verify:
                        assert self._next_missing_run(chunk) is None, chunk
                    chunk += 1
                    continue
                if chunk > max_est:
                    # Chunks beyond every neighbor's extrapolated
                    # availability can only go to the source: resolve
                    # the (draw-free) fallback before paying for the
                    # sub-piece scan, since it usually declines.
                    if self._verify:
                        limit = self.config.per_neighbor_inflight
                        assert not [s for est, have_from, s in availability
                                    if est >= chunk >= have_from
                                    and s.inflight < limit], chunk
                    target = self._source_fallback(chunk <= urgent_until)
                    if target is None:
                        chunk += 1
                        continue
                    run = self._next_missing_run(chunk)
                    if run is None:
                        saturated.add(chunk)
                        chunk += 1
                        continue
                    first, last = run
                    issue = self._issue(target, chunk, first, last)
                    if issues is None:
                        issues = [issue]
                    else:
                        issues.append(issue)
                    budget -= 1
                    continue
            run = self._next_missing_run(chunk)
            if run is None:
                if fast:
                    saturated.add(chunk)
                chunk += 1
                continue
            first, last = run
            is_urgent = chunk <= urgent_until
            target = self._pick_neighbor(chunk, is_urgent, availability)
            if target is None:
                chunk += 1
                continue
            issue = self._issue(target, chunk, first, last)
            if issues is None:
                issues = [issue]
            else:
                issues.append(issue)
            budget -= 1
            # Allow several batches of the same chunk in one tick, going
            # to (possibly) different neighbors.
        if issues is None:
            return
        # Transmit after planning completes: the tick's requests form
        # one send cohort.  Loss/jitter/scheduler RNG streams are
        # independent, so deferring the sends draws the same values.
        send_requests = self.send_requests
        if send_requests is not None and len(issues) > 1:
            send_requests(issues)
        else:
            send_request = self.send_request
            for address, issued_chunk, first, last, seq in issues:
                send_request(address, issued_chunk, first, last, seq)

    def _availability_snapshot(self) -> List[tuple]:
        """(estimated_have, have_from, state) per usable neighbor."""
        now = self.sim.now
        cfg = self.config
        chunk_seconds = self.geometry.chunk_seconds
        slope = cfg.availability_slope
        margin = cfg.availability_margin
        max_extrapolation = cfg.max_extrapolation_chunks
        source = self.source_address
        snapshot = []
        append = snapshot.append
        for state in self.neighbors:
            if state.address == source or state.cooldown_until > now:
                continue
            est = state.estimated_have(now, chunk_seconds, slope, margin,
                                       max_extrapolation)
            if est >= 0:
                append((est, state.reported_from, state))
        return snapshot

    def _availability_view(self) -> tuple:
        """Incrementally cached ``(snapshot, max_est)`` (fast path).

        Same content and order as :meth:`_availability_snapshot`, plus
        the largest estimate in it (the planning ceiling).  Two cache
        layers keep the per-tick cost near zero in steady state:

        * The whole view is reused as long as the neighbor table's
          change ``version`` is untouched (no report, membership or
          cooldown change) and ``now`` is before the view's *horizon* —
          the earliest instant a cooldown expiry or extrapolation
          quantum could alter it.
        * On a rebuild, each neighbor's extrapolated estimate is
          recomputed only when its report epoch moved or its cached
          extrapolation quantum expired; otherwise the cached value is
          exactly what a fresh computation would produce.
        """
        now = self.sim.now
        table = self.neighbors
        version = table.version
        cached = self._view_cache
        if (cached is not None and cached[0] == version
                and now < cached[1] and not self._verify):
            return cached[2], cached[3]
        source = self.source_address
        snapshot = []
        append = snapshot.append
        max_est = -1
        horizon = math.inf
        if self.config.max_extrapolation_chunks <= 0:
            # Default config: no extrapolation, so the estimate is a
            # pure (and cheap) function of per-neighbor state — inline
            # it rather than paying for the quantum cache.
            margin = self.config.availability_margin
            for state in table:
                if state.address == source:
                    continue
                cooldown_until = state.cooldown_until
                if cooldown_until > now:
                    # The neighbor re-enters the view when its cooldown
                    # lapses, with no table mutation to signal it: cap
                    # the view's validity at that instant.
                    if cooldown_until < horizon:
                        horizon = cooldown_until
                    continue
                reported = state.reported_have
                if reported < 0:
                    continue
                est = reported - margin - int(state.availability_bias)
                if est >= 0:
                    append((est, state.reported_from, state))
                    if est > max_est:
                        max_est = est
        else:
            cache = self._avail_cache
            for state in table:
                if state.address == source:
                    continue
                cooldown_until = state.cooldown_until
                if cooldown_until > now:
                    if cooldown_until < horizon:
                        horizon = cooldown_until
                    continue
                epoch = state.avail_epoch
                entry = cache.get(state.address)
                if entry is not None and entry[0] == epoch and now < entry[2]:
                    est = entry[1]
                    valid_until = entry[2]
                else:
                    est, valid_until = self._estimate(state, now)
                    cache[state.address] = (epoch, est, valid_until)
                if valid_until < horizon:
                    horizon = valid_until
                if est >= 0:
                    append((est, state.reported_from, state))
                    if est > max_est:
                        max_est = est
        self._view_cache = (version, horizon, snapshot, max_est)
        if self._verify:
            reference = self._availability_snapshot()
            assert snapshot == reference, (snapshot, reference)
        return snapshot, max_est

    def _estimate(self, state: NeighborState, now: float) -> tuple:
        """``(estimated_have, valid_until)`` for one neighbor.

        Mirrors :meth:`NeighborState.estimated_have` exactly, and adds
        the first future instant at which the quantised extrapolation
        could change.  ``valid_until`` shrinks the predicted expiry by a
        1e-9 relative margin so float rounding in the inverse
        computation can only expire a cache entry early (a harmless
        recompute), never late.
        """
        if state.reported_have < 0:
            return -1, math.inf
        cfg = self.config
        max_progress = cfg.max_extrapolation_chunks
        if max_progress > 0:
            slope = cfg.availability_slope
            chunk_seconds = self.geometry.chunk_seconds
            elapsed = now - state.reported_at
            if elapsed < 0.0:
                elapsed = 0.0
            progress = int(slope * elapsed / chunk_seconds)
            if progress >= max_progress:
                progress = max_progress
                valid_until = math.inf
            elif slope > 0.0:
                step = chunk_seconds * (progress + 1) / slope
                valid_until = state.reported_at + step * (1.0 - 1e-9)
            else:
                # Non-positive slope: quantised progress is not monotone
                # in time, so never trust a cached value across ticks.
                valid_until = now
        else:
            progress = 0
            valid_until = math.inf
        est = (state.reported_have + progress - cfg.availability_margin
               - int(state.availability_bias))
        return est, valid_until

    def invalidate_caches(self) -> None:
        """Drop all incrementally maintained fast-path state.

        Called after an external restore rewrites neighbor or buffer
        state underneath the scheduler; the caches rebuild lazily (and
        exactly) on the next tick.
        """
        self._avail_cache.clear()
        self._saturated.clear()
        self._view_cache = None

    def _next_missing_run(self, chunk: int) -> Optional[tuple]:
        """Longest contiguous run of unrequested missing sub-pieces.

        Pure bitmask arithmetic: lowest missing-and-unrequested bit,
        then the run of consecutive set bits above it, capped at
        ``subpieces_per_request`` — identical to walking the ascending
        missing list, without materialising it.
        """
        missing = self.buffer.missing_mask(chunk)
        if not missing:
            return None
        covered = self._requested.get(chunk)
        if covered:
            missing &= ~covered
            if not missing:
                return None
        first = (missing & -missing).bit_length() - 1
        run = missing >> first
        # Number of trailing set bits of `run` (bit 0 is set).
        trailing = (~run & (run + 1)).bit_length() - 1
        limit = self.config.subpieces_per_request
        if trailing > limit:
            trailing = limit
        return first, first + trailing - 1

    def _pick_neighbor(self, chunk: int, is_urgent: bool,
                       availability: Optional[List[tuple]] = None
                       ) -> Optional[NeighborState]:
        if availability is None:
            availability = self._availability_snapshot()
        limit = self.config.per_neighbor_inflight
        eligible = [state for est, have_from, state in availability
                    if est >= chunk >= have_from
                    and state.inflight < limit]
        if not eligible:
            return self._source_fallback(is_urgent)
        if self._rng.random() < self.config.exploration_epsilon:
            return self._rng.choice(eligible)
        weights = [self._weight(s) for s in eligible]
        return weighted_choice(self._rng, eligible, weights)

    def _weight(self, state: NeighborState) -> float:
        # Before any data flows the handshake round-trip is the latency
        # prior, so nearby neighbors attract requests from the very first
        # schedule.  The floor bounds how much one very fast neighbor can
        # monopolise.
        response = max(state.effective_response(),
                       self.config.weight_response_floor)
        return response ** -self.config.responsiveness_beta

    def _source_fallback(self, is_urgent: bool) -> Optional[NeighborState]:
        """Empty-eligibility fallback: the channel source, or nothing.

        Draw-free, which is what lets the fast path take it directly
        for chunks above the availability ceiling without perturbing
        the scheduler RNG stream.
        """
        if (is_urgent and self.source_address is not None
                and self._source_inflight
                < self.config.per_neighbor_inflight
                and self.sim.now >= self._source_cooldown_until):
            return self._source_state()
        return None

    def _source_state(self) -> NeighborState:
        # A synthetic state for the channel source; never stored in the
        # neighbor table and never counted against its capacity.
        state = NeighborState(address=self.source_address,
                              connected_at=0.0, last_heard=self.sim.now)
        state.reported_have = 1 << 60
        return state

    # ------------------------------------------------------------------
    # Issue / resolve
    # ------------------------------------------------------------------
    def _issue(self, target: NeighborState, chunk: int,
               first: int, last: int) -> tuple:
        seq = self._next_seq
        self._next_seq += 1
        to_source = target.address == self.source_address
        pending = PendingRequest(seq=seq, neighbor=target.address,
                                 chunk=chunk, first=first, last=last,
                                 sent_at=self.sim.now, to_source=to_source)
        if self._spans.enabled:
            pending.span = self._spans.start_span(
                "data_request", "data", self.sim.now,
                parent=self._span_parent, actor=self._actor, seq=seq,
                neighbor=target.address, chunk=chunk, first=first,
                last=last, to_source=to_source)
        pending.timeout_event = self.sim.call_after(
            self.config.data_timeout, lambda: self._on_timeout(seq),
            label="data-timeout")
        self._pending[seq] = pending
        span = ((1 << (last - first + 1)) - 1) << first
        self._requested[chunk] = self._requested.get(chunk, 0) | span
        if to_source:
            self._source_inflight += 1
            self.requests_to_source += 1
            self._m_to_source.inc()
        else:
            target.inflight += 1
            target.data_requests_sent += 1
        self.requests_issued += 1
        self._m_requests.inc()
        # The caller (tick) transmits: issues from one tick are sent as
        # one cohort after planning completes.
        return (target.address, chunk, first, last, seq)

    def on_reply(self, seq: int, chunk: int, first: int, last: int,
                 have_until: int, have_from: int = 0) -> int:
        """Handle a data reply; returns the number of new sub-pieces."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            self.duplicate_replies += 1
            return 0
        self._settle(pending)
        self.replies_handled += 1
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.record_response(self.sim.now - pending.sent_at,
                                     self.config.ewma_alpha)
            neighbor.record_availability(have_until, self.sim.now, have_from)
            neighbor.data_replies_received += 1
        added = self.buffer.add_range(chunk, first, last)
        if neighbor is not None:
            neighbor.bytes_received += self.geometry.range_bytes(first, last)
        if pending.span is not None:
            pending.span.finish(self.sim.now, subpieces=added)
            if added and self.buffer.has_chunk(chunk):
                # The reply that completed the chunk: the hand-off point
                # from the data chain to the playback chain.
                self._spans.instant("chunk_complete", "data", self.sim.now,
                                    parent=pending.span, chunk=chunk)
        return added

    def on_miss(self, seq: int, have_until: int,
                have_from: int = 0) -> None:
        """Handle a negative reply (replier lacked the range)."""
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self._settle(pending)
        self.misses_handled += 1
        self._m_misses.inc()
        if pending.span is not None:
            pending.span.finish(self.sim.now, "miss")
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.record_miss(self.sim.now)
            neighbor.set_cooldown(self.sim.now + self.config.miss_cooldown)
            self._m_cooldowns.inc()
            if have_until >= 0:
                # A miss is the most authoritative availability signal:
                # overwrite (do not merely max) the reported range.
                neighbor.reported_have = have_until
                neighbor.reported_at = self.sim.now
                neighbor.reported_from = have_from
                neighbor.bump_avail_epoch()

    def on_poisoned(self, seq: int) -> bool:
        """Handle a reply whose payload failed integrity verification.

        The pending entry is settled and its ``_requested`` bits are
        cleared *without* adding anything to the buffer, so the very
        next tick re-plans the range — the poisoned-chunk re-fetch.
        The polluter is cooled down like a timed-out neighbor (the
        caller additionally strikes it), and its EWMA is penalised with
        the full data timeout: a poisoned transfer wasted at least that
        much playout headroom.  Returns True when a live request was
        settled (the range will be re-fetched), False for a duplicate.
        """
        pending = self._pending.pop(seq, None)
        if pending is None:
            self.duplicate_replies += 1
            return False
        self._settle(pending)
        self.poisoned_rejected += 1
        if pending.span is not None:
            pending.span.finish(self.sim.now, "poisoned")
        if self._trace.enabled_for(WARNING):
            self._trace.emit(self.sim.now, WARNING, "poisoned_reply",
                             neighbor=pending.neighbor, seq=pending.seq,
                             chunk=pending.chunk)
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.set_cooldown(self.sim.now
                                  + self.config.timeout_cooldown)
            self._m_cooldowns.inc()
            neighbor.record_response(self.config.data_timeout,
                                     self.config.ewma_alpha)
        return True

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is None:
            return
        self._settle(pending, cancel_timeout=False)
        self.timeouts += 1
        self._m_timeouts.inc()
        if pending.span is not None:
            pending.span.finish(self.sim.now, "timeout")
        if self._trace.enabled_for(WARNING):
            self._trace.emit(self.sim.now, WARNING, "data_request_timeout",
                             neighbor=pending.neighbor, seq=pending.seq,
                             chunk=pending.chunk,
                             to_source=pending.to_source)
        if pending.to_source:
            self._source_cooldown_until = (self.sim.now
                                           + self.config.timeout_cooldown)
        neighbor = self.neighbors.get(pending.neighbor)
        if neighbor is not None:
            neighbor.data_timeouts += 1
            neighbor.set_cooldown(self.sim.now
                                  + self.config.timeout_cooldown)
            self._m_cooldowns.inc()
            # Penalise the EWMA with the full timeout so unresponsive
            # neighbors stop attracting requests.
            neighbor.record_response(self.config.data_timeout,
                                     self.config.ewma_alpha)

    def _settle(self, pending: PendingRequest,
                cancel_timeout: bool = True) -> None:
        if cancel_timeout and pending.timeout_event is not None:
            self.sim.cancel(pending.timeout_event)
        # The chunk's plannable set may have grown (covered bits are
        # about to clear): it can no longer be skipped as saturated.
        self._saturated.discard(pending.chunk)
        covered = self._requested.get(pending.chunk)
        if covered is not None:
            span = ((1 << (pending.last - pending.first + 1)) - 1) \
                << pending.first
            covered &= ~span
            if covered:
                self._requested[pending.chunk] = covered
            else:
                del self._requested[pending.chunk]
        if pending.to_source:
            self._source_inflight = max(0, self._source_inflight - 1)
        else:
            neighbor = self.neighbors.get(pending.neighbor)
            if neighbor is not None:
                neighbor.inflight = max(0, neighbor.inflight - 1)

    def reset_for_buffer(self, buffer: ChunkBuffer) -> None:
        """Rebind to a fresh buffer after a live re-sync.

        All in-flight requests are settled (timeout events cancelled,
        per-neighbor inflight counters released) so the neighbor table
        stays consistent; late replies for old sequence numbers are then
        counted as duplicates and ignored.
        """
        for seq in list(self._pending):
            pending = self._pending.pop(seq)
            self._settle(pending)
            if pending.span is not None:
                pending.span.finish(self.sim.now, "reset")
        self._requested.clear()
        self._saturated.clear()
        self.buffer = buffer

    def forget_neighbor(self, address: str) -> None:
        """Drop in-flight state for a departed neighbor."""
        self._avail_cache.pop(address, None)
        self._view_cache = None
        stale = [seq for seq, p in self._pending.items()
                 if p.neighbor == address and not p.to_source]
        for seq in stale:
            pending = self._pending.pop(seq)
            self._settle(pending)
            if pending.span is not None:
                pending.span.finish(self.sim.now, "neighbor_lost")

    def _drop_stale_bookkeeping(self) -> None:
        frontier = self.buffer.have_until
        stale = [c for c in self._requested if c <= frontier]
        for chunk in stale:
            del self._requested[chunk]
        saturated = self._saturated
        if saturated:
            for chunk in [c for c in saturated if c <= frontier]:
                saturated.discard(chunk)
