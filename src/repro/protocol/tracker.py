"""Tracker servers.

"The tracker server stores the active peers for each channel" and "mainly
works as an entry node for a peer to join the network" — it is a database,
not a locality service.  A :class:`TrackerServer` therefore:

* learns about peers from their queries (a query doubles as an announce),
* answers with a uniform random sample of up to 60 active peers — *no*
  topology awareness whatsoever,
* expires peers it has not heard from within a TTL.

PPLive deploys five tracker groups, all inside Chinese carriers; the
deployment helper in :mod:`repro.experiments.session` mirrors that.
"""

from __future__ import annotations

from typing import Dict, List

from ..network.bandwidth import SERVER, AccessProfile
from ..network.datagram import Datagram
from ..network.isp import ISP
from ..network.transport import Host, UdpNetwork
from ..sim.engine import Simulator
from ..sim.random import sample_without_replacement
from . import messages as m
from .config import ProtocolConfig
from .wire import wire_size


class TrackerServer(Host):
    """One tracker instance (a member of one of the five groups)."""

    def __init__(self, sim: Simulator, network: UdpNetwork, address: str,
                 isp: ISP, config: ProtocolConfig,
                 profile: AccessProfile = SERVER,
                 group_id: int = 0) -> None:
        super().__init__(sim, network, address, isp, profile)
        self.config = config
        self.group_id = group_id
        #: channel_id -> {address: last_announce_time}
        self._registry: Dict[int, Dict[str, float]] = {}
        self._rng = sim.random.fork(f"tracker:{address}").stream("sample")
        self.queries_served = 0
        self.peers_expired = 0
        self.rejected_messages = 0

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def seed_peer(self, channel_id: int, address: str) -> None:
        """Pre-register a peer (used to plant channel source servers)."""
        self._registry.setdefault(channel_id, {})[address] = float("inf")

    def active_peers(self, channel_id: int) -> List[str]:
        self._expire(channel_id)
        return list(self._registry.get(channel_id, {}))

    def forget_peer(self, channel_id: int, address: str) -> None:
        self._registry.get(channel_id, {}).pop(address, None)

    def _expire(self, channel_id: int) -> None:
        table = self._registry.get(channel_id)
        if not table:
            return
        cutoff = self.sim.now - self.config.tracker_peer_ttl
        stale = [a for a, t in table.items() if t < cutoff]
        for address in stale:
            del table[address]
        self.peers_expired += len(stale)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the tracker's mutable protocol state:
        the per-channel registry, the sampling RNG's exact state and
        the service counters.  Restoring it reproduces the same future
        peer-list samples and expiries."""
        return {
            "registry": {channel_id: dict(table) for channel_id, table
                         in self._registry.items()},
            "rng": self._rng.getstate(),
            "queries_served": self.queries_served,
            "peers_expired": self.peers_expired,
            "rejected_messages": self.rejected_messages,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the tracker's mutable state in place from
        :meth:`snapshot_state`."""
        self._registry = {channel_id: dict(table) for channel_id, table
                          in state["registry"].items()}
        self._rng.setstate(state["rng"])
        self.queries_served = state["queries_served"]
        self.peers_expired = state["peers_expired"]
        self.rejected_messages = state.get("rejected_messages", 0)

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def handle_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        try:
            if isinstance(payload, m.TrackerQuery):
                self._serve_query(datagram.src, payload.channel_id)
            elif isinstance(payload, m.Goodbye):
                for channel_id in list(self._registry):
                    self.forget_peer(channel_id, datagram.src)
            else:
                # Unknown payloads are counted and dropped; a public
                # server cannot afford to crash on garbage.
                self.rejected_messages += 1
        except (AttributeError, TypeError, ValueError, KeyError,
                IndexError):
            self.rejected_messages += 1

    def _serve_query(self, requester: str, channel_id: int) -> None:
        self.queries_served += 1
        self._expire(channel_id)
        table = self._registry.setdefault(channel_id, {})
        # Sample *before* adding the requester so a newcomer is not
        # handed its own address.
        others = [a for a in table if a != requester]
        sample = sample_without_replacement(
            self._rng, others, self.config.tracker_reply_max)
        table[requester] = self.sim.now
        reply = m.TrackerReply(channel_id=channel_id, peers=tuple(sample))
        self.send(requester, reply, wire_size(reply))
