"""Per-neighbor connection state and the neighbor table.

For every connected neighbor a client tracks:

* liveness (last time anything was heard),
* advertised availability and when it was reported (so the scheduler can
  extrapolate how far the neighbor has progressed since),
* an EWMA of data-response time — the client's *only* signal about how
  good a server this neighbor is.  Nothing here ever looks at ISP or
  topology information: responsiveness is learned purely from observed
  latencies, which is exactly the paper's point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class NeighborState:
    """Everything a client knows about one connected neighbor."""

    address: str
    connected_at: float
    last_heard: float
    #: Last availability the neighbor reported, and when.
    reported_have: int = -1
    reported_at: float = 0.0
    #: Oldest chunk the neighbor can serve (its buffer start).
    reported_from: int = 0
    #: Learned estimate of availability staleness correction (chunks),
    #: decreased when an extrapolated request comes back as a miss.
    availability_bias: float = 0.0
    #: Bumped whenever any input of :meth:`estimated_have` changes
    #: (``reported_have``/``reported_at``/``reported_from``/
    #: ``availability_bias``).  The scheduler's incremental availability
    #: cache keys on it: an unchanged epoch means the cached estimate is
    #: still exact, so the per-tick extrapolation is only recomputed for
    #: neighbors whose buffer-map reports actually moved.
    avail_epoch: int = 0
    #: Application-level round-trip observed on the connection handshake
    #: (Hello -> HelloAck); the client's first latency signal about the
    #: neighbor, available before any data flows.
    hello_rtt: Optional[float] = None
    #: EWMA of observed data-response times (seconds); None until the
    #: first response arrives.
    ewma_response: Optional[float] = None
    #: Smallest application-level response time seen (RTT floor estimate).
    min_response: Optional[float] = None
    #: Outstanding data requests (seq numbers currently in flight).
    inflight: int = 0
    #: Until this time the neighbor is skipped for data requests
    #: (set after timeouts and misses to break retry storms).
    cooldown_until: float = 0.0
    # Accounting
    data_requests_sent: int = 0
    data_replies_received: int = 0
    data_misses: int = 0
    data_timeouts: int = 0
    bytes_received: int = 0
    peer_lists_received: int = 0

    #: Owning :class:`NeighborTable`, set by :meth:`NeighborTable.add`.
    #: Deliberately a plain class attribute, not a dataclass field: it
    #: stays out of ``asdict`` snapshots and equality, and exists only
    #: so mutations can bump the table's change ``version`` (which the
    #: scheduler's cached availability view keys on).
    _owner = None

    def record_availability(self, have_until: int, now: float,
                            have_from: int = None) -> None:
        """Update the advertised availability from a piggybacked report."""
        if have_until >= self.reported_have:
            self.reported_have = have_until
            self.reported_at = now
            self.availability_bias = max(self.availability_bias - 0.5, 0.0)
            self.avail_epoch += 1
            if self._owner is not None:
                self._owner.version += 1
        if have_from is not None:
            if have_from != self.reported_from:
                self.avail_epoch += 1
                if self._owner is not None:
                    self._owner.version += 1
            self.reported_from = have_from
        self.last_heard = now

    def can_serve(self, chunk: int, now: float, chunk_seconds: float,
                  slope: float, margin: int, max_progress: int) -> bool:
        """Whether this neighbor is believed to hold ``chunk``."""
        if chunk < self.reported_from:
            return False
        return self.estimated_have(now, chunk_seconds, slope, margin,
                                   max_progress) >= chunk

    def estimated_have(self, now: float, chunk_seconds: float,
                       slope: float, margin: int,
                       max_progress: int = 10) -> int:
        """Extrapolated availability, assuming steady live progress.

        Extrapolated progress is capped at ``max_progress`` chunks so a
        neighbor that stopped reporting (stalled or overloaded) stops
        looking better over time.
        """
        if self.reported_have < 0:
            return -1
        if max_progress > 0:
            elapsed = now - self.reported_at
            if elapsed < 0.0:
                elapsed = 0.0
            progress = min(int(slope * elapsed / chunk_seconds),
                           max_progress)
        else:
            progress = 0
        return (self.reported_have + progress - margin
                - int(self.availability_bias))

    def record_response(self, response_time: float, alpha: float) -> None:
        """Fold one observed data-response time into the EWMA and floor."""
        if response_time < 0:
            raise ValueError(f"negative response time {response_time}")
        if self.ewma_response is None:
            self.ewma_response = response_time
        else:
            self.ewma_response = (alpha * response_time
                                  + (1 - alpha) * self.ewma_response)
        if self.min_response is None or response_time < self.min_response:
            self.min_response = response_time

    def effective_response(self, handshake_scale: float = 3.0,
                           default: float = 0.4) -> float:
        """Best available latency estimate for scheduling/replacement.

        Data-response EWMA when present; otherwise the handshake RTT
        scaled up to data-response magnitude (a small control packet
        round-trip under-estimates a bulk response); otherwise a neutral
        default.
        """
        if self.ewma_response is not None:
            return self.ewma_response
        if self.hello_rtt is not None:
            return self.hello_rtt * handshake_scale
        return default

    def record_miss(self, now: float) -> None:
        """An extrapolated request missed: grow the staleness correction."""
        self.data_misses += 1
        self.availability_bias = min(self.availability_bias + 1.0, 16.0)
        self.bump_avail_epoch()
        self.last_heard = now

    def bump_avail_epoch(self) -> None:
        """Mark the availability inputs changed (and notify the table)."""
        self.avail_epoch += 1
        if self._owner is not None:
            self._owner.version += 1

    def set_cooldown(self, until: float) -> None:
        """Set the data-request cooldown (and notify the table).

        Cooldown filtering happens inside the scheduler's availability
        view, so flipping it must invalidate the cached view just like
        an availability change does.
        """
        self.cooldown_until = until
        if self._owner is not None:
            self._owner.version += 1


class NeighborTable:
    """The set of currently connected neighbors, with a hard capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._neighbors: Dict[str, NeighborState] = {}
        self.total_ever_connected = 0
        #: Monotone change counter covering everything the scheduler's
        #: availability view reads: membership (and hence iteration
        #: order), each neighbor's availability inputs, and cooldowns.
        #: An unchanged version means a cached view is still exact.
        self.version = 0

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, address: str) -> bool:
        return address in self._neighbors

    def __iter__(self):
        return iter(self._neighbors.values())

    @property
    def is_full(self) -> bool:
        return len(self._neighbors) >= self.capacity

    def get(self, address: str) -> Optional[NeighborState]:
        return self._neighbors.get(address)

    def addresses(self) -> List[str]:
        return list(self._neighbors)

    def add(self, address: str, now: float) -> NeighborState:
        """Admit a new neighbor (caller must have checked capacity)."""
        if address in self._neighbors:
            return self._neighbors[address]
        if self.is_full:
            raise OverflowError("neighbor table full")
        state = NeighborState(address=address, connected_at=now,
                              last_heard=now)
        state._owner = self
        self._neighbors[address] = state
        self.total_ever_connected += 1
        self.version += 1
        return state

    def remove(self, address: str) -> Optional[NeighborState]:
        state = self._neighbors.pop(address, None)
        if state is not None:
            state._owner = None
            self.version += 1
        return state

    def silent_since(self, cutoff: float) -> List[str]:
        """Neighbors not heard from since ``cutoff`` (candidates to drop)."""
        return [a for a, s in self._neighbors.items()
                if s.last_heard < cutoff]

    def with_data_capacity(self, per_neighbor_limit: int) -> List[NeighborState]:
        """Neighbors that can accept another in-flight data request."""
        return [s for s in self._neighbors.values()
                if s.inflight < per_neighbor_limit]

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the table.

        Insertion order is preserved (scheduler tie-breaks iterate the
        dict), and every :class:`NeighborState` field is captured — a
        restored table makes identical serve/cooldown decisions.
        """
        return {
            "capacity": self.capacity,
            "total_ever_connected": self.total_ever_connected,
            "neighbors": [dataclasses.asdict(state)
                          for state in self._neighbors.values()],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the table in place from :meth:`snapshot_state`."""
        self.capacity = state["capacity"]
        self.total_ever_connected = state["total_ever_connected"]
        self._neighbors = {}
        for fields in state["neighbors"]:
            neighbor = NeighborState(**fields)
            neighbor._owner = self
            self._neighbors[neighbor.address] = neighbor
        self.version += 1
