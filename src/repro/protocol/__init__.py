"""The PPLive-style live-streaming protocol (core contribution substrate S5).

Public surface: the client (:class:`PPLivePeer`), infrastructure servers
(:class:`BootstrapServer`, :class:`TrackerServer`, :class:`SourceServer`),
the protocol configuration, wire messages and codec, and the
peer-selection policy interface with the native PPLive policy.
"""

from . import messages
from .bootstrap import BootstrapServer
from .config import ProtocolConfig
from .neighbors import NeighborState, NeighborTable
from .peer import PeerPhase, PPLivePeer
from .peerlist import Candidate, CandidatePool, ListSource
from .policy import PeerSelectionPolicy, PPLiveReferralPolicy
from .scheduler import DataScheduler, PendingRequest
from .source import SOURCE_PROFILE, SourceServer
from .tracker import TrackerServer
from .wire import WireError, decode, encode, wire_size

__all__ = [
    "messages",
    "ProtocolConfig",
    "PPLivePeer",
    "PeerPhase",
    "BootstrapServer",
    "TrackerServer",
    "SourceServer",
    "SOURCE_PROFILE",
    "NeighborTable",
    "NeighborState",
    "CandidatePool",
    "Candidate",
    "ListSource",
    "PeerSelectionPolicy",
    "PPLiveReferralPolicy",
    "DataScheduler",
    "PendingRequest",
    "encode",
    "decode",
    "wire_size",
    "WireError",
]
