"""Peer-selection policy interface and the native PPLive policy.

The paper's central finding is that PPLive's *default* behaviour — "once
the client receives a peer list, it randomly selects a number of peers
from the list and connects to them immediately" — yields ISP-level
locality with no topology input.  To test that claim against
alternatives (Section "baselines"), the client delegates exactly three
decisions to a policy object:

1. whether neighbor referral (gossip) is used at all,
2. which freshly learned candidates to attempt connections to,
3. how often to fall back to the trackers.

Everything else (the latency race for connection slots, the
responsiveness-weighted data scheduling) is shared, so experiments that
swap policies measure the selection strategy and nothing else.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Sequence

from .config import ProtocolConfig
from .peerlist import ListSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .peer import PPLivePeer


class PeerSelectionPolicy:
    """Strategy hooks consulted by :class:`~repro.protocol.peer.PPLivePeer`."""

    #: Human-readable policy name (used in experiment reports).
    name = "abstract"
    #: Whether the client gossips peer lists with neighbors at all.
    uses_neighbor_referral = True

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        """Choose which of ``addresses`` to attempt connections to, now.

        Called immediately when a peer list arrives, because PPLive
        "always tries to connect to the listed peers as soon as the list
        is received".  Returns a (possibly empty) list of addresses.
        """
        raise NotImplementedError

    def tracker_interval(self, peer: "PPLivePeer",
                         config: ProtocolConfig) -> float:
        """Seconds until the next tracker query round."""
        if peer.playback_satisfactory():
            return config.tracker_interval_backoff
        return config.tracker_interval_initial

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def connection_deficit(peer: "PPLivePeer") -> int:
        """How many more neighbors the client wants right now."""
        config = peer.config
        engaged = len(peer.neighbors) + peer.pending_hello_count
        return max(0, config.target_neighbors - engaged)

    @staticmethod
    def fresh_connectable(peer: "PPLivePeer",
                          addresses: Sequence[str]) -> List[str]:
        """Filter ``addresses`` down to genuinely attemptable ones."""
        seen = set()
        out = []
        for address in addresses:
            if address in seen:
                continue
            seen.add(address)
            if peer.can_attempt(address):
                out.append(address)
        return out


class PPLiveReferralPolicy(PeerSelectionPolicy):
    """The native strategy: random picks, immediate connection attempts.

    Deliberately topology-blind.  Locality emerges only because (a) the
    lists themselves are referred by neighbors whose own tables are
    already latency-sorted, and (b) among the contacted candidates the
    nearer ones complete the handshake race first.
    """

    name = "pplive-referral"
    uses_neighbor_referral = True

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        deficit = self.connection_deficit(peer)
        if deficit <= 0:
            return []
        pool = self.fresh_connectable(peer, addresses)
        if not pool:
            return []
        # Over-subscribe the deficit: contact a full batch and let the
        # fastest responders win the remaining table slots.
        batch = min(len(pool), max(peer.config.connect_batch, deficit))
        return rng.sample(pool, batch)
