"""Wire messages of the PPLive-style protocol.

Each message is a frozen dataclass with a class-level ``TYPE`` tag.  The
binary layout (and therefore the on-the-wire size used for bandwidth and
queueing) is defined by :mod:`repro.protocol.wire`; protocol code never
builds raw bytes itself.

The message set mirrors the behaviour reverse-engineered in the paper's
Section 2:

* bootstrap:  ``ChannelListRequest/Reply`` (steps 1-2),
  ``PlaylinkRequest/Reply`` (steps 3-4, returns tracker addresses),
* tracker:    ``TrackerQuery/TrackerReply`` (steps 5-6; the query also
  announces the requester to the tracker),
* gossip:     ``PeerListRequest`` ("with peer list enclosed") and
  ``PeerListReply`` (steps 7-8),
* membership: ``Hello/HelloAck/HelloReject/Goodbye``,
* data:       ``DataRequest/DataReply/DataMiss`` at sub-piece-range
  granularity, with the sender's availability piggybacked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Message:
    """Base class; every concrete message carries a ``TYPE`` byte."""

    TYPE = 0x00


# ----------------------------------------------------------------------
# Bootstrap / channel server (steps 1-4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChannelListRequest(Message):
    TYPE = 0x01


@dataclass(frozen=True)
class ChannelListReply(Message):
    TYPE = 0x02
    #: (channel_id, name) pairs of currently broadcast channels.
    channels: Tuple[Tuple[int, str], ...] = ()


@dataclass(frozen=True)
class PlaylinkRequest(Message):
    TYPE = 0x03
    channel_id: int = 0


@dataclass(frozen=True)
class PlaylinkReply(Message):
    TYPE = 0x04
    channel_id: int = 0
    #: Opaque playlink token for the media player.
    playlink: str = ""
    #: One tracker address per tracker group.
    trackers: Tuple[str, ...] = ()


# ----------------------------------------------------------------------
# Tracker (steps 5-6)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrackerQuery(Message):
    """Ask a tracker for active peers; implicitly announces the sender."""

    TYPE = 0x05
    channel_id: int = 0


@dataclass(frozen=True)
class TrackerReply(Message):
    TYPE = 0x06
    channel_id: int = 0
    peers: Tuple[str, ...] = ()


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello(Message):
    """Connection attempt; carries the joiner's availability."""

    TYPE = 0x07
    channel_id: int = 0
    have_until: int = -1
    #: Oldest chunk the sender can serve (its buffer start).
    have_from: int = 0


@dataclass(frozen=True)
class HelloAck(Message):
    TYPE = 0x08
    channel_id: int = 0
    have_until: int = -1
    have_from: int = 0


@dataclass(frozen=True)
class HelloReject(Message):
    """Connection refused (neighbor table full)."""

    TYPE = 0x09
    channel_id: int = 0


@dataclass(frozen=True)
class Goodbye(Message):
    TYPE = 0x0A
    channel_id: int = 0


# ----------------------------------------------------------------------
# Peer-list gossip (steps 7-8)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PeerListRequest(Message):
    """Peer-list query "by sending the peer list maintained by itself"."""

    TYPE = 0x0B
    channel_id: int = 0
    #: The requester's own peer list, enclosed with the request.
    enclosed: Tuple[str, ...] = ()
    #: Requester availability, piggybacked.
    have_until: int = -1
    have_from: int = 0
    #: Requester-chosen id to match the reply to this request.
    request_id: int = 0


@dataclass(frozen=True)
class PeerListReply(Message):
    TYPE = 0x0C
    channel_id: int = 0
    peers: Tuple[str, ...] = ()
    have_until: int = -1
    have_from: int = 0
    request_id: int = 0


# ----------------------------------------------------------------------
# Data plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DataRequest(Message):
    """Request sub-pieces ``first..last`` (inclusive) of ``chunk``."""

    TYPE = 0x0D
    channel_id: int = 0
    chunk: int = 0
    first: int = 0
    last: int = 0
    #: Requester-chosen sequence number; echoed by the reply.  The
    #: capture pipeline matches request/reply pairs on (address, seq),
    #: as the paper did with sub-piece sequence numbers.
    seq: int = 0


@dataclass(frozen=True)
class DataReply(Message):
    """Carries the payload of sub-pieces ``first..last`` of ``chunk``."""

    TYPE = 0x0E
    channel_id: int = 0
    chunk: int = 0
    first: int = 0
    last: int = 0
    seq: int = 0
    #: Replier availability, piggybacked.
    have_until: int = -1
    have_from: int = 0
    #: Video payload bytes carried (sum of sub-piece sizes).
    payload_bytes: int = 0


@dataclass(frozen=True)
class DataMiss(Message):
    """Negative reply: the replier does not have the requested range."""

    TYPE = 0x0F
    channel_id: int = 0
    chunk: int = 0
    seq: int = 0
    have_until: int = -1
    have_from: int = 0


@dataclass(frozen=True)
class BufferMapAnnounce(Message):
    """Periodic availability advertisement to neighbors.

    Mesh-pull streaming systems keep neighbor buffer knowledge fresh with
    frequent, tiny availability messages; ours summarises the buffer as
    the highest contiguous chunk.
    """

    TYPE = 0x10
    channel_id: int = 0
    have_until: int = -1
    have_from: int = 0


@dataclass(frozen=True)
class PoisonedDataReply(Message):
    """A data reply whose payload fails integrity verification.

    Only chunk-polluting adversaries emit this; it is byte-laid-out
    exactly like :class:`DataReply` (same fields, same body size) so a
    polluted transfer costs the network the same bandwidth as a clean
    one — the receiver detects the corruption only after paying for the
    download, discards the payload and re-fetches the range.
    """

    TYPE = 0x11
    channel_id: int = 0
    chunk: int = 0
    first: int = 0
    last: int = 0
    seq: int = 0
    have_until: int = -1
    have_from: int = 0
    payload_bytes: int = 0


ALL_MESSAGE_TYPES = (
    ChannelListRequest, ChannelListReply, PlaylinkRequest, PlaylinkReply,
    TrackerQuery, TrackerReply, Hello, HelloAck, HelloReject, Goodbye,
    PeerListRequest, PeerListReply, DataRequest, DataReply, DataMiss,
    BufferMapAnnounce, PoisonedDataReply,
)
