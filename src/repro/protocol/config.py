"""Protocol parameters.

Values follow the paper's reverse-engineered observations where it gives
them (gossip every 20 s, tracker re-query decaying to once per 5 minutes,
peer lists capped at 60 entries, 1380-byte sub-pieces, five tracker
groups); the rest are calibrated to make a 2008-era PPLive client's
externally visible behaviour plausible while staying simulation-friendly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace


@dataclass
class ProtocolConfig:
    """All tunables of the PPLive-style client and infrastructure."""

    # ------------------------------------------------------------------
    # Peer-list exchange (paper, Section 2)
    # ------------------------------------------------------------------
    #: "a peer periodically queries its neighbors for more active peers
    #: once every 20 seconds"
    gossip_interval: float = 20.0
    #: Random de-synchronisation added to each gossip round (+- seconds).
    gossip_jitter: float = 2.0
    #: How many neighbors are asked for their peer list per round.
    gossip_fanout: int = 3
    #: "A peer list usually contains no more than 60 IP addresses."
    peer_list_max: int = 60

    # ------------------------------------------------------------------
    # Tracker interaction
    # ------------------------------------------------------------------
    #: Tracker query interval while playback is not yet satisfactory.
    tracker_interval_initial: float = 30.0
    #: "a peer significantly reduces the frequency of querying tracker
    #: servers to once every five minutes" once playback is satisfactory.
    tracker_interval_backoff: float = 300.0
    #: Continuity-index threshold that triggers the backoff.
    satisfactory_continuity: float = 0.9
    #: Number of tracker groups (paper: five, at different locations).
    tracker_groups: int = 5
    #: Entries a tracker returns per query.
    tracker_reply_max: int = 60
    #: Tracker forgets a peer not heard from for this long.
    tracker_peer_ttl: float = 180.0
    #: A tracker query still unanswered after this long counts as one
    #: failure against that tracker (checked lazily, at the next query).
    tracker_failure_timeout: float = 10.0
    #: Consecutive unanswered queries before a tracker is considered
    #: dead and skipped by the steady-state round-robin.  Any reply
    #: resets the count, so transient packet loss never condemns one.
    tracker_dead_after: int = 2
    #: When *every* known tracker looks dead, the client re-requests the
    #: playlink from the bootstrap server (fresh tracker addresses) at
    #: most once per this many seconds — automatic recovery from a
    #: tracker outage, no manual intervention.
    rebootstrap_interval: float = 30.0

    # ------------------------------------------------------------------
    # Neighbor management
    # ------------------------------------------------------------------
    #: Hard cap on concurrently connected neighbors.
    max_neighbors: int = 24
    #: Below this the peer actively recruits new neighbors.
    target_neighbors: int = 16
    #: Candidates contacted (Hello sent) per received peer list.
    connect_batch: int = 8
    #: Handshake timeout before a Hello is written off.
    hello_timeout: float = 4.0
    #: Bootstrap/playlink request retry period (UDP replies can be lost;
    #: without retries a lost reply would strand the client forever).
    bootstrap_retry_interval: float = 5.0
    #: A neighbor silent for this long is considered departed.  Gossip
    #: fanout means a given neighbor is only pinged every couple of
    #: minutes, so this must comfortably exceed that.
    neighbor_silence_timeout: float = 120.0
    #: When the table is at/above target, each maintenance round replaces
    #: the slowest-responding neighbor with this probability — continuous
    #: latency-driven selection pressure on the neighbor set.
    neighbor_replace_probability: float = 0.12
    #: A neighbor is protected from replacement for its first seconds.
    neighbor_min_tenure: float = 60.0
    #: Fraction of neighbors (the best responders) pinned against
    #: replacement and silence-drop — the paper's Section 3.4 suggestion
    #: that "it might be worth caching these top 10% of neighbors for
    #: frequent data transmissions".  0 disables the optimisation.
    pin_top_responders: float = 0.0

    # ------------------------------------------------------------------
    # Data scheduling
    # ------------------------------------------------------------------
    #: Scheduler wake-up period (seconds).
    scheduler_interval: float = 0.4
    #: Sub-pieces fetched by one data request (batching keeps the
    #: simulated packet count tractable; the request/reply *pairing*
    #: matches the paper's transmission accounting).
    subpieces_per_request: int = 10
    #: Concurrent in-flight data requests per neighbor.
    per_neighbor_inflight: int = 3
    #: Total concurrent in-flight data requests.
    total_inflight: int = 24
    #: Data-request timeout before re-issuing elsewhere.
    data_timeout: float = 3.0
    #: EWMA smoothing factor for per-neighbor response time.
    ewma_alpha: float = 0.25
    #: Responsiveness weighting exponent: weight = rt ** -beta.
    responsiveness_beta: float = 2.0
    #: Response-time floor used in the weighting, so one very fast
    #: neighbor cannot monopolise the schedule.
    weight_response_floor: float = 0.15
    #: Buffer-map announcement period (seconds) and per-round fanout.
    buffermap_interval: float = 2.0
    buffermap_fanout: int = 16
    #: Probability a request explores a uniformly random eligible neighbor.
    exploration_epsilon: float = 0.10
    #: How far behind the live edge playout starts: each client draws its
    #: lag uniformly from [startup_lag_min, startup_lag_max] chunks.  Lag
    #: heterogeneity is what lets older-playpoint peers fetch from
    #: newer-playpoint peers instead of stampeding the source.
    startup_lag_min: int = 4
    startup_lag_max: int = 14
    #: Chunks buffered before playback starts.
    startup_chunks: int = 3
    #: How far ahead of the playout point the scheduler prefetches
    #: (chunks).  Real PPLive clients buffer a window, not the live edge.
    prefetch_chunks: int = 8
    #: A chunk this close to its deadline may be fetched from the source.
    urgent_deadline: float = 8.0
    #: A viewer fallen this many chunks behind the live edge abandons its
    #: position and re-syncs near the edge, as real live players do.
    resync_lag_chunks: int = 30

    # ------------------------------------------------------------------
    # Availability estimation
    # ------------------------------------------------------------------
    #: Assumed neighbor progress rate: chunks per chunk-duration.
    availability_slope: float = 1.0
    #: Safety margin subtracted from the estimated availability (chunks).
    availability_margin: int = 0
    #: Extrapolation horizon: beyond this many chunks of assumed progress
    #: a stale report stops growing (a stalled neighbor must re-report).
    max_extrapolation_chunks: int = 0
    #: How long a neighbor is ineligible for data after a timeout.
    timeout_cooldown: float = 3.0
    #: How long a neighbor is ineligible after answering with a miss.
    miss_cooldown: float = 0.5

    # ------------------------------------------------------------------
    # Adversary hardening (see docs/ROBUSTNESS.md).  The defaults are
    # clean-path-neutral: with no adversaries in the swarm these knobs
    # reproduce the pre-hardening behaviour bit for bit (flat 60 s
    # candidate backoff, no rate cap, no advertise strikes), so golden
    # digests are unchanged.  ``hardened()`` returns the profile the
    # resilience experiment sweeps under.
    # ------------------------------------------------------------------
    #: Strikes before a neighbor is demoted and banned from the
    #: candidate pool.  Poisoned chunks always strike; the other strike
    #: weights below decide what else counts.
    strike_limit: int = 3
    #: How long a banned address stays ineligible (candidate pool).
    ban_seconds: float = 240.0
    #: Strikes charged per integrity-failed (poisoned) data reply.
    strike_poisoned: int = 1
    #: Strikes charged when a neighbor misses a request it advertised
    #: coverage for.  0 keeps the clean path honest: legitimate misses
    #: on extrapolated availability do happen, so this only turns on in
    #: hardened profiles.
    strike_false_advertise: int = 0
    #: Strikes charged when a neighbor trips the serve-side rate cap.
    strike_flood: int = 1
    #: Serve-side per-neighbor data-request rate cap (requests/second,
    #: token bucket).  0 disables the cap entirely (no limiter state is
    #: even allocated).
    request_rate_cap: float = 0.0
    #: Token-bucket burst allowance when the rate cap is active.
    request_rate_burst: float = 8.0
    #: Consolidated retry policy for failed connection attempts: the
    #: n-th consecutive failure backs a candidate off for
    #: ``base * multiplier**(n-1)`` seconds, capped at ``max``, plus a
    #: deterministic per-(address, attempt) jitter in [0, jitter).
    #: Defaults reproduce the historical flat 60 s backoff exactly.
    retry_backoff_base: float = 60.0
    retry_backoff_multiplier: float = 1.0
    retry_backoff_max: float = 60.0
    retry_jitter: float = 0.0

    def hardened(self) -> "ProtocolConfig":
        """A copy with the adversary defenses fully engaged.

        Used by the resilience experiment (clean baseline cell
        included, so the sweep compares adversary damage, not config
        drift): advertise-miss strikes on, serve-side rate caps on,
        exponential connect retry with deterministic jitter.
        """
        return replace(
            self, strike_false_advertise=1, request_rate_cap=6.0,
            request_rate_burst=12.0, retry_backoff_multiplier=2.0,
            retry_backoff_max=300.0, retry_jitter=5.0)

    def retry_backoff(self, failures: int, key: str = "") -> float:
        """Backoff seconds after the ``failures``-th consecutive failure.

        Exponential with a deterministic jitter derived by hashing
        ``(key, failures)`` — no RNG stream is consumed, so enabling the
        policy never perturbs draw counts elsewhere.
        """
        exponent = max(0, failures - 1)
        backoff = min(self.retry_backoff_base
                      * self.retry_backoff_multiplier ** exponent,
                      self.retry_backoff_max)
        if self.retry_jitter > 0.0:
            digest = zlib.crc32(f"{key}:{failures}".encode("utf-8"))
            backoff += self.retry_jitter * (digest % 4096) / 4096.0
        return backoff

    def __post_init__(self) -> None:
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 <= self.exploration_epsilon <= 1:
            raise ValueError("exploration_epsilon must be in [0, 1]")
        if self.target_neighbors > self.max_neighbors:
            raise ValueError("target_neighbors cannot exceed max_neighbors")
        if self.tracker_groups < 1:
            raise ValueError("need at least one tracker group")
        if self.tracker_dead_after < 1:
            raise ValueError("tracker_dead_after must be >= 1")
        if self.tracker_failure_timeout <= 0:
            raise ValueError("tracker_failure_timeout must be positive")
        if self.rebootstrap_interval <= 0:
            raise ValueError("rebootstrap_interval must be positive")
        if self.startup_lag_min > self.startup_lag_max:
            raise ValueError("startup_lag_min cannot exceed startup_lag_max")
        if self.startup_lag_min < 1:
            raise ValueError("startup_lag_min must be >= 1")
        if self.prefetch_chunks < self.startup_chunks:
            raise ValueError(
                "prefetch_chunks must cover the startup buffer")
        if self.strike_limit < 1:
            raise ValueError("strike_limit must be >= 1")
        if self.ban_seconds <= 0:
            raise ValueError("ban_seconds must be positive")
        if min(self.strike_poisoned, self.strike_false_advertise,
               self.strike_flood) < 0:
            raise ValueError("strike weights cannot be negative")
        if self.request_rate_cap < 0:
            raise ValueError("request_rate_cap cannot be negative")
        if self.request_rate_cap > 0 and self.request_rate_burst < 1:
            raise ValueError("request_rate_burst must be >= 1 when the "
                             "rate cap is active")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry_backoff_base must be positive")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1")
        if self.retry_backoff_max < self.retry_backoff_base:
            raise ValueError(
                "retry_backoff_max must cover retry_backoff_base")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter cannot be negative")
