"""Bootstrap / channel server.

Steps (1)-(4) of the paper's Figure 1: a freshly launched client asks the
bootstrap server for the active channel list, picks a channel, then asks
again for that channel's playlink and tracker-server addresses — one
tracker per group, chosen round-robin inside each group so load spreads
the way a DNS-rotated deployment would.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..network.bandwidth import SERVER, AccessProfile
from ..network.datagram import Datagram
from ..network.isp import ISP
from ..network.transport import Host, UdpNetwork
from ..sim.engine import Simulator
from ..streaming.video import LiveChannel
from . import messages as m
from .wire import wire_size


class BootstrapServer(Host):
    """The channel/bootstrap server (one per simulated deployment)."""

    def __init__(self, sim: Simulator, network: UdpNetwork, address: str,
                 isp: ISP, profile: AccessProfile = SERVER) -> None:
        super().__init__(sim, network, address, isp, profile)
        self._channels: Dict[int, LiveChannel] = {}
        #: channel_id -> list of tracker groups; each group is a list of
        #: tracker addresses.
        self._tracker_groups: Dict[int, List[List[str]]] = {}
        self._rotation: Dict[int, int] = {}
        self.channel_list_requests = 0
        self.playlink_requests = 0
        self.rejected_messages = 0

    # ------------------------------------------------------------------
    # Deployment-time configuration
    # ------------------------------------------------------------------
    def publish_channel(self, channel: LiveChannel,
                        tracker_groups: Sequence[Sequence[str]]) -> None:
        """Register a broadcast channel and its tracker deployment."""
        if not tracker_groups or any(not g for g in tracker_groups):
            raise ValueError("every tracker group needs at least one address")
        self._channels[channel.channel_id] = channel
        self._tracker_groups[channel.channel_id] = [
            list(group) for group in tracker_groups]
        self._rotation[channel.channel_id] = 0

    def channels(self) -> List[LiveChannel]:
        return list(self._channels.values())

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def handle_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        try:
            if isinstance(payload, m.ChannelListRequest):
                self._serve_channel_list(datagram.src)
            elif isinstance(payload, m.PlaylinkRequest):
                self._serve_playlink(datagram.src, payload.channel_id)
            else:
                # Anything else is noise; count it and move on — a real
                # server would ignore it too.
                self.rejected_messages += 1
        except (AttributeError, TypeError, ValueError, KeyError,
                IndexError):
            self.rejected_messages += 1

    def _serve_channel_list(self, requester: str) -> None:
        self.channel_list_requests += 1
        reply = m.ChannelListReply(channels=tuple(
            (c.channel_id, c.name) for c in self._channels.values()))
        self.send(requester, reply, wire_size(reply))

    def _serve_playlink(self, requester: str, channel_id: int) -> None:
        self.playlink_requests += 1
        channel = self._channels.get(channel_id)
        if channel is None:
            return  # unknown channel: silently ignored, like the original
        groups = self._tracker_groups[channel_id]
        rotation = self._rotation[channel_id]
        self._rotation[channel_id] = rotation + 1
        # "the client would receive one tracker server IP address for each
        # of the five groups, respectively"
        trackers = tuple(group[rotation % len(group)] for group in groups)
        reply = m.PlaylinkReply(
            channel_id=channel_id,
            playlink=f"pplive://live/{channel_id}",
            trackers=trackers)
        self.send(requester, reply, wire_size(reply))
