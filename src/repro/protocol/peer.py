"""The PPLive-style client.

One :class:`PPLivePeer` is one viewer.  Its externally visible behaviour
follows the paper's Section 2 step by step:

1. ask the bootstrap server for the channel list (steps 1-2),
2. ask for the chosen channel's playlink + tracker addresses (3-4),
3. query the trackers for initial peer lists (5-6),
4. connect to randomly chosen listed peers *immediately on list
   arrival*, racing handshakes for the limited neighbor-table slots,
5. every 20 seconds gossip peer lists with neighbors, enclosing its own
   list in the request (7-8),
6. back the tracker query rate off to once per five minutes as soon as
   playback is satisfactory,
7. request video sub-pieces from neighbors, weighted by observed
   responsiveness (see :mod:`repro.protocol.scheduler`).

The client never inspects ISP, AS or geographic information: any
locality in its traffic is emergent.
"""

from __future__ import annotations

import enum
import heapq
import math
from typing import Dict, List, Optional, Tuple

from ..adversary import AdversaryModel, build_adversary
from ..network.bandwidth import AccessProfile
from ..network.datagram import Datagram
from ..network.isp import ISP
from ..network.transport import Host, UdpNetwork
from ..obs import INFO, WARNING, Instrumentation
from ..obs import resolve as resolve_obs
from ..sim.engine import Simulator, Timer
from ..streaming.buffer import ChunkBuffer
from ..streaming.playback import PlaybackMonitor, PlayerState
from ..streaming.video import LiveChannel
from . import messages as m
from .config import ProtocolConfig
from .neighbors import NeighborTable
from .peerlist import CandidatePool, ListSource
from .policy import PeerSelectionPolicy, PPLiveReferralPolicy
from .scheduler import DataScheduler, RequestRateLimiter
from .wire import wire_size

#: Sequence numbers used by adversarial flood requests.  Far above
#: anything the honest scheduler's per-session counter can reach, so a
#: victim's reply to a junk request never collides with a live pending
#: entry (it lands in ``duplicate_replies`` instead).
_FLOOD_SEQ_BASE = 1 << 30


class PeerPhase(enum.Enum):
    CREATED = "created"
    BOOTSTRAPPING = "bootstrapping"
    JOINING = "joining"
    ACTIVE = "active"
    DEPARTED = "departed"

    def __str__(self) -> str:
        return self.value


class PPLivePeer(Host):
    """A live-streaming viewer node."""

    #: Maintenance cadence: playback ticks, silence sweeps.
    MAINTENANCE_INTERVAL = 2.0

    def __init__(self, sim: Simulator, network: UdpNetwork, address: str,
                 isp: ISP, profile: AccessProfile, config: ProtocolConfig,
                 channel: LiveChannel, bootstrap_address: str,
                 policy: Optional[PeerSelectionPolicy] = None,
                 source_address: Optional[str] = None,
                 obs: Optional[Instrumentation] = None) -> None:
        super().__init__(sim, network, address, isp, profile)
        self.config = config
        self.channel = channel
        self.bootstrap_address = bootstrap_address
        self.policy = policy if policy is not None else PPLiveReferralPolicy()
        self.source_address = source_address
        self.phase = PeerPhase.CREATED

        self.pool = CandidatePool(self_address=address)
        self.neighbors = NeighborTable(config.max_neighbors)
        self.buffer: Optional[ChunkBuffer] = None
        self.player: Optional[PlaybackMonitor] = None
        self.scheduler: Optional[DataScheduler] = None

        self.trackers: List[str] = []
        self._pending_hellos: Dict[str, object] = {}
        self._timers: List[Timer] = []
        self._bootstrap_timer: Optional[Timer] = None
        self._tracker_event = None
        self._tracker_rotation = 0
        # Tracker health: last unanswered query time and consecutive
        # unanswered-query counts, driving failover and re-bootstrap.
        self._tracker_pending: Dict[str, float] = {}
        self._tracker_failures: Dict[str, int] = {}
        self._last_rebootstrap: Optional[float] = None
        self._rebootstrap_pending = False
        self._peerlist_request_id = 0
        node_random = sim.random.fork(f"peer:{address}")
        self._rng = node_random.stream("protocol")
        self._scheduler_rng = node_random.stream("scheduler")

        # Accounting (trace-independent convenience counters)
        self.peer_lists_sent = 0
        self.peer_list_requests_received = 0
        self.data_requests_served = 0
        self.data_misses_sent = 0
        self.bytes_uploaded = 0
        self.hello_rejects = 0
        self.resyncs = 0
        self.rebootstraps = 0
        self.rejected_messages = 0
        self.requests_rate_limited = 0
        self.neighbors_banned = 0
        self.poisoned_replies = 0
        self.chunks_refetched = 0
        self.joined_at: Optional[float] = None
        self.departed_at: Optional[float] = None

        # Adversary seam: honest clients never set these.  The serve-side
        # rate limiter is lazily allocated only when the config enables it.
        self.adversary: Optional[AdversaryModel] = None
        self._rate_limiter: Optional[RequestRateLimiter] = None
        self._flood_seq = _FLOOD_SEQ_BASE

        # Observability: per-ISP-tagged instruments, bound once.  Peers
        # in the same ISP share series; the default bundle is no-op.
        obs = resolve_obs(obs)
        self._obs = obs
        self._trace = obs.trace
        self._spans = obs.spans
        # Open causal spans, keyed by what resolves them: the join span
        # roots this peer's trace; tracker spans by tracker address,
        # peer-list spans by request_id, connect spans by target address.
        self._join_span = None
        self._tracker_spans: Dict[str, object] = {}
        self._peerlist_spans: Dict[int, object] = {}
        self._hello_spans: Dict[str, object] = {}
        self._obs_tags = {"isp": isp.name}
        metrics = obs.metrics
        self._m_gossip_rounds = metrics.counter("proto.gossip_rounds",
                                                self._obs_tags)
        self._m_hellos_sent = metrics.counter("proto.hellos_sent",
                                              self._obs_tags)
        self._m_hello_timeouts = metrics.counter("proto.hello_timeouts",
                                                 self._obs_tags)
        self._m_races_won = metrics.counter("proto.handshake_races_won",
                                            self._obs_tags)
        self._m_races_lost = metrics.counter("proto.handshake_races_lost",
                                             self._obs_tags)
        self._m_hello_rejects = metrics.counter("proto.hello_rejects_sent",
                                                self._obs_tags)
        self._m_resyncs = metrics.counter("proto.resyncs", self._obs_tags)
        self._m_rebootstraps = metrics.counter("proto.rebootstraps",
                                               self._obs_tags)
        self._m_rejected = metrics.counter("proto.rejected_messages",
                                           self._obs_tags)
        self._m_rate_limited = metrics.counter(
            "proto.requests_rate_limited", self._obs_tags)
        self._m_banned = metrics.counter("proto.neighbors_banned",
                                         self._obs_tags)
        self._m_poisoned = metrics.counter("proto.poisoned_rejected",
                                           self._obs_tags)
        self._m_refetched = metrics.counter("proto.chunks_refetched",
                                            self._obs_tags)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Launch the client: go online and start the bootstrap dance."""
        if self.phase is not PeerPhase.CREATED:
            raise RuntimeError(f"cannot join from phase {self.phase}")
        self.go_online()
        self.joined_at = self.sim.now
        self.phase = PeerPhase.BOOTSTRAPPING
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "peer_join",
                             peer=self.address, isp=self.isp.name)
        if self._spans.enabled:
            self._join_span = self._spans.start_span(
                "channel_join", "bootstrap", self.sim.now,
                actor=self.address, peer=self.address, isp=self.isp.name)
        self._transmit(self.bootstrap_address, m.ChannelListRequest())
        self._bootstrap_timer = self.sim.every(
            self.config.bootstrap_retry_interval, self._bootstrap_retry,
            label="bootstrap-retry")
        self._timers.append(self._bootstrap_timer)

    def _bootstrap_retry(self) -> None:
        """Re-send the current bootstrap-phase request if a reply was
        lost; stops itself once the client is active."""
        if self.phase is PeerPhase.BOOTSTRAPPING:
            self._transmit(self.bootstrap_address, m.ChannelListRequest())
        elif self.phase is PeerPhase.JOINING:
            self._transmit(self.bootstrap_address, m.PlaylinkRequest(
                channel_id=self.channel.channel_id))
        else:
            # ACTIVE or DEPARTED: the retry timer has done its job.
            self._bootstrap_timer.stop()

    def leave(self) -> None:
        """Depart gracefully: goodbye to neighbors and trackers."""
        if self.phase is PeerPhase.DEPARTED:
            return
        goodbye = m.Goodbye(channel_id=self.channel.channel_id)
        size = wire_size(goodbye)
        self._transmit_many(
            [(neighbor, goodbye, size)
             for neighbor in self.neighbors.addresses()]
            + [(tracker, goodbye, size) for tracker in self.trackers])
        self._shutdown()

    def crash(self) -> None:
        """Depart silently (power loss / network drop): no goodbyes."""
        if self.phase is not PeerPhase.DEPARTED:
            self._shutdown()

    def _shutdown(self) -> None:
        self.phase = PeerPhase.DEPARTED
        self.departed_at = self.sim.now
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "peer_depart",
                             peer=self.address, isp=self.isp.name,
                             neighbors=len(self.neighbors))
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        if self._tracker_event is not None:
            self.sim.cancel(self._tracker_event)
            self._tracker_event = None
        for event, _sent_at in self._pending_hellos.values():
            self.sim.cancel(event)
        self._pending_hellos.clear()
        # Resolve every open span: departure answers them all.
        now = self.sim.now
        if self._join_span is not None and not self._join_span.finished:
            self._join_span.finish(now, "aborted")
        for span in self._tracker_spans.values():
            span.finish(now, "unanswered")
        self._tracker_spans.clear()
        for span in self._peerlist_spans.values():
            span.finish(now, "unanswered")
        self._peerlist_spans.clear()
        for span in self._hello_spans.values():
            span.finish(now, "aborted")
        self._hello_spans.clear()
        if self.player is not None:
            self.player.stop(self.sim.now)
        self.go_offline()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the peer's protocol state.

        Captures everything that decides the peer's *future protocol
        behaviour* — lifecycle phase, tracker bookkeeping, candidate
        pool, neighbor table, both private RNG streams — plus its
        accounting counters.  In-flight timers/handshakes are engine
        state and are captured by ``Simulator.snapshot_state`` (the
        events hold bound methods of this peer).  The
        snapshot→restore→snapshot round-trip is a fixed point
        (``tests/test_snapshot_properties.py``).
        """
        return {
            "phase": self.phase.value,
            "trackers": list(self.trackers),
            "tracker_rotation": self._tracker_rotation,
            "tracker_pending": dict(self._tracker_pending),
            "tracker_failures": dict(self._tracker_failures),
            "last_rebootstrap": self._last_rebootstrap,
            "rebootstrap_pending": self._rebootstrap_pending,
            "peerlist_request_id": self._peerlist_request_id,
            "rng": self._rng.getstate(),
            "scheduler_rng": self._scheduler_rng.getstate(),
            "pool": self.pool.snapshot_state(),
            "neighbors": self.neighbors.snapshot_state(),
            "flood_seq": self._flood_seq,
            "rate_limiter": (self._rate_limiter.snapshot_state()
                             if self._rate_limiter is not None else None),
            "adversary": (self.adversary.snapshot_state()
                          if self.adversary is not None else None),
            "counters": {
                "peer_lists_sent": self.peer_lists_sent,
                "peer_list_requests_received":
                    self.peer_list_requests_received,
                "data_requests_served": self.data_requests_served,
                "data_misses_sent": self.data_misses_sent,
                "bytes_uploaded": self.bytes_uploaded,
                "hello_rejects": self.hello_rejects,
                "resyncs": self.resyncs,
                "rebootstraps": self.rebootstraps,
                "rejected_messages": self.rejected_messages,
                "requests_rate_limited": self.requests_rate_limited,
                "neighbors_banned": self.neighbors_banned,
                "poisoned_replies": self.poisoned_replies,
                "chunks_refetched": self.chunks_refetched,
                "joined_at": self.joined_at,
                "departed_at": self.departed_at,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the peer's protocol state in place from
        :meth:`snapshot_state`."""
        self.phase = PeerPhase(state["phase"])
        self.trackers = list(state["trackers"])
        self._tracker_rotation = state["tracker_rotation"]
        self._tracker_pending = dict(state["tracker_pending"])
        self._tracker_failures = dict(state["tracker_failures"])
        self._last_rebootstrap = state["last_rebootstrap"]
        self._rebootstrap_pending = state["rebootstrap_pending"]
        self._peerlist_request_id = state["peerlist_request_id"]
        self._rng.setstate(state["rng"])
        self._scheduler_rng.setstate(state["scheduler_rng"])
        self.pool.restore_state(state["pool"])
        self.neighbors.restore_state(state["neighbors"])
        if self.scheduler is not None:
            # Neighbor state was rewritten underneath the scheduler:
            # its incremental fast-path caches must rebuild from the
            # restored epochs, not the pre-restore ones.
            self.scheduler.invalidate_caches()
        self._flood_seq = state.get("flood_seq", _FLOOD_SEQ_BASE)
        limiter_state = state.get("rate_limiter")
        if limiter_state is None:
            self._rate_limiter = None
        else:
            self._rate_limiter = RequestRateLimiter(
                self.config.request_rate_cap,
                self.config.request_rate_burst)
            self._rate_limiter.restore_state(limiter_state)
        adversary_state = state.get("adversary")
        if adversary_state is None:
            self.adversary = None
        else:
            self.adversary = build_adversary(adversary_state["behavior"],
                                             adversary_state["seed"])
            self.adversary.restore_state(adversary_state)
        counters = state["counters"]
        self.peer_lists_sent = counters["peer_lists_sent"]
        self.peer_list_requests_received = \
            counters["peer_list_requests_received"]
        self.data_requests_served = counters["data_requests_served"]
        self.data_misses_sent = counters["data_misses_sent"]
        self.bytes_uploaded = counters["bytes_uploaded"]
        self.hello_rejects = counters["hello_rejects"]
        self.resyncs = counters["resyncs"]
        self.rebootstraps = counters["rebootstraps"]
        self.rejected_messages = counters.get("rejected_messages", 0)
        self.requests_rate_limited = counters.get("requests_rate_limited",
                                                  0)
        self.neighbors_banned = counters.get("neighbors_banned", 0)
        self.poisoned_replies = counters.get("poisoned_replies", 0)
        self.chunks_refetched = counters.get("chunks_refetched", 0)
        self.joined_at = counters["joined_at"]
        self.departed_at = counters["departed_at"]

    # ------------------------------------------------------------------
    # Introspection used by policies and experiments
    # ------------------------------------------------------------------
    @property
    def pending_hello_count(self) -> int:
        return len(self._pending_hellos)

    def playback_satisfactory(self) -> bool:
        if self.player is None:
            return False
        return self.player.is_satisfactory(self.config.satisfactory_continuity)

    def can_attempt(self, address: str) -> bool:
        """Whether a connection attempt to ``address`` makes sense now."""
        if address == self.address or address == self.bootstrap_address:
            return False
        if address in self.trackers:
            return False
        if address in self.neighbors or address in self._pending_hellos:
            return False
        candidate = self.pool.get(address)
        if candidate is not None and (candidate.backoff_until > self.sim.now
                                      or candidate.banned_until
                                      > self.sim.now):
            return False
        return True

    @property
    def have_until(self) -> int:
        return self.buffer.have_until if self.buffer is not None else -1

    @property
    def have_from(self) -> int:
        """Oldest chunk this client can serve (its buffer start)."""
        return self.buffer.first_chunk if self.buffer is not None else 0

    @property
    def advertised_have(self) -> int:
        """The availability this client *claims* in outgoing messages.

        Honest unless an attached adversary overrides it (the
        buffer-map liar inflates it well past the real frontier).
        """
        have = self.have_until
        if self.adversary is not None:
            return self.adversary.advertised_have(have)
        return have

    # ------------------------------------------------------------------
    # Adversary seam
    # ------------------------------------------------------------------
    def attach_adversary(self, model: AdversaryModel) -> None:
        """Turn this viewer adversarial (see :mod:`repro.adversary`).

        The model only drives the override points — serve decisions,
        advertised availability, flood requests, peer-list forgery —
        and draws only from its own RNG, so the honest machinery (and
        every honest peer) keeps its exact draw sequence.
        """
        self.adversary = model

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------
    def handle_datagram(self, datagram: Datagram) -> None:
        if self.phase is PeerPhase.DEPARTED:
            return
        payload = datagram.payload
        handler = self._HANDLERS.get(type(payload))
        if handler is None:
            # Unknown payload type: drop and count, never raise.
            self._reject_message()
            return
        try:
            handler(self, datagram.src, payload)
        except (AttributeError, TypeError, ValueError, KeyError,
                IndexError):
            # A malformed-but-decodable payload (bad field types, absurd
            # values) must not crash the node: count it and move on.
            self._reject_message()

    def _reject_message(self) -> None:
        self.rejected_messages += 1
        self._m_rejected.inc()

    # -- bootstrap phase ------------------------------------------------
    def _on_channel_list(self, src: str, msg: m.ChannelListReply) -> None:
        if self.phase is not PeerPhase.BOOTSTRAPPING:
            return
        if all(cid != self.channel.channel_id for cid, _ in msg.channels):
            # Channel not broadcast right now; give up.
            self._shutdown()
            return
        self.phase = PeerPhase.JOINING
        self._transmit(src, m.PlaylinkRequest(
            channel_id=self.channel.channel_id))

    def _on_playlink(self, src: str, msg: m.PlaylinkReply) -> None:
        if msg.channel_id != self.channel.channel_id or not msg.trackers:
            return
        if self.phase is PeerPhase.JOINING:
            self.trackers = list(msg.trackers)
            self._become_active()
            return
        if self.phase is PeerPhase.ACTIVE and self._rebootstrap_pending:
            # The refresh we asked for after writing every tracker off:
            # swap in the fresh list and query all of it at once, so the
            # neighbor table refills without manual intervention.
            # Unsolicited playlink replies (duplicate bootstrap-retry
            # answers) are still ignored.
            self._rebootstrap_pending = False
            self.trackers = list(msg.trackers)
            self._tracker_pending.clear()
            self._tracker_failures.clear()
            for tracker in self.trackers:
                self._query_tracker(tracker)

    def _become_active(self) -> None:
        self.phase = PeerPhase.ACTIVE
        now = self.sim.now
        if self._trace.enabled_for(INFO):
            self._trace.emit(now, INFO, "peer_active", peer=self.address,
                             isp=self.isp.name,
                             startup_delay=now - (self.joined_at or now))
        if self._join_span is not None:
            self._join_span.finish(now, trackers=len(self.trackers))
        live = self.channel.live_chunk(now)
        lag = self._rng.randint(self.config.startup_lag_min,
                                self.config.startup_lag_max)
        first_chunk = max(0, live - lag + 1)
        geometry = self.channel.geometry
        self.buffer = ChunkBuffer(geometry, first_chunk)
        self.player = PlaybackMonitor(geometry, self.buffer, join_time=now,
                                      startup_chunks=self.config.startup_chunks,
                                      obs=self._obs, obs_tags=self._obs_tags,
                                      actor=self.address,
                                      span_parent=self._join_span)
        self.scheduler = DataScheduler(
            self.sim, self.config, geometry, self.buffer, self.neighbors,
            self._send_data_request, source_address=self.source_address,
            rng=self._scheduler_rng, obs=self._obs, obs_tags=self._obs_tags,
            actor=self.address, span_parent=self._join_span,
            send_requests=self._send_data_requests)
        # Initial burst: query every tracker group at once.
        for tracker in self.trackers:
            self._query_tracker(tracker)
        self._schedule_tracker_round()
        jitter = self.config.gossip_jitter
        self._timers.append(self.sim.every(
            self.config.gossip_interval, self._gossip_round,
            jitter_fn=lambda: self._rng.uniform(-jitter, jitter),
            label="gossip-round"))
        self._timers.append(self.sim.every(
            self.config.scheduler_interval, self._scheduler_tick,
            label="sched-tick"))
        self._timers.append(self.sim.every(
            self.config.buffermap_interval, self._buffermap_round,
            jitter_fn=lambda: self._rng.uniform(-0.3, 0.3),
            label="buffermap-round"))
        # Maintenance clocks playback (player.tick) plus the neighbor
        # silence sweep; attribution buckets it under "playback".
        self._timers.append(self.sim.every(
            self.MAINTENANCE_INTERVAL, self._maintenance,
            label="playback-maintenance"))

    # -- tracker interaction ---------------------------------------------
    def _open_tracker_span(self, tracker: str) -> None:
        """Open a peerlist-category span for one tracker query.  A new
        query to the same tracker supersedes the old span (the reply
        cannot be told apart), which is then closed as superseded."""
        if not self._spans.enabled:
            return
        stale = self._tracker_spans.pop(tracker, None)
        if stale is not None:
            stale.finish(self.sim.now, "superseded")
        self._tracker_spans[tracker] = self._spans.start_span(
            "tracker_query", "peerlist", self.sim.now,
            parent=self._join_span, actor=self.address, tracker=tracker)

    def _schedule_tracker_round(self) -> None:
        interval = self.policy.tracker_interval(self, self.config)
        self._tracker_event = self.sim.call_after(
            interval, self._tracker_round, label="tracker-round")

    def _query_tracker(self, tracker: str) -> None:
        """Send one tracker query, with unanswered-query bookkeeping.

        If the *previous* query to this tracker has sat unanswered for
        ``tracker_failure_timeout``, that counts as one strike; enough
        consecutive strikes (``tracker_dead_after``) and the tracker is
        treated as dead until it answers again.
        """
        now = self.sim.now
        sent = self._tracker_pending.get(tracker)
        if (sent is not None
                and now - sent >= self.config.tracker_failure_timeout):
            self._tracker_failures[tracker] = \
                self._tracker_failures.get(tracker, 0) + 1
        self._tracker_pending[tracker] = now
        self._open_tracker_span(tracker)
        self._transmit(tracker, m.TrackerQuery(
            channel_id=self.channel.channel_id))

    def _tracker_suspect(self, tracker: str) -> bool:
        return (self._tracker_failures.get(tracker, 0)
                >= self.config.tracker_dead_after)

    def _maybe_rebootstrap(self) -> None:
        """Every known tracker looks dead: ask the bootstrap server for
        a fresh playlink (rate-limited), the paper's only path back into
        the swarm's control plane."""
        now = self.sim.now
        if (self._last_rebootstrap is not None
                and now - self._last_rebootstrap
                < self.config.rebootstrap_interval):
            return
        self._last_rebootstrap = now
        self._rebootstrap_pending = True
        self.rebootstraps += 1
        self._m_rebootstraps.inc()
        if self._trace.enabled_for(WARNING):
            self._trace.emit(now, WARNING, "tracker_rebootstrap",
                             peer=self.address, isp=self.isp.name,
                             trackers=len(self.trackers))
        self._transmit(self.bootstrap_address, m.PlaylinkRequest(
            channel_id=self.channel.channel_id))

    def _tracker_round(self) -> None:
        if self.phase is not PeerPhase.ACTIVE or not self.trackers:
            return
        live = [t for t in self.trackers if not self._tracker_suspect(t)]
        if not live:
            # Complete tracker blackout: re-bootstrap for fresh
            # addresses, but keep probing the old ones so their
            # recovery is noticed even if the bootstrap is down too.
            self._maybe_rebootstrap()
            targets = self.trackers
        elif self.playback_satisfactory():
            # Steady state: poke a single live tracker, round-robin
            # (dead trackers are skipped — immediate failover).
            targets = []
            for _ in range(len(self.trackers)):
                candidate = self.trackers[self._tracker_rotation
                                          % len(self.trackers)]
                self._tracker_rotation += 1
                if not self._tracker_suspect(candidate):
                    targets = [candidate]
                    break
        else:
            targets = self.trackers
        for tracker in targets:
            self._query_tracker(tracker)
        self._schedule_tracker_round()

    def _on_tracker_reply(self, src: str, msg: m.TrackerReply) -> None:
        self._tracker_pending.pop(src, None)
        self._tracker_failures.pop(src, None)
        span = self._tracker_spans.pop(src, None)
        if span is not None:
            span.finish(self.sim.now, peers=len(msg.peers))
        if self.phase is not PeerPhase.ACTIVE:
            return
        self.pool.add_many(msg.peers, self.sim.now, ListSource.TRACKER)
        self._attempt_connections(msg.peers, ListSource.TRACKER,
                                  parent_span=span)

    # -- membership -------------------------------------------------------
    def _attempt_connections(self, addresses, source: ListSource,
                             parent_span=None) -> None:
        chosen = self.policy.select_candidates(
            self, list(addresses), source, self._rng)
        hello = m.Hello(channel_id=self.channel.channel_id,
                        have_until=self.advertised_have,
                        have_from=self.have_from)
        for address in chosen:
            if not self.can_attempt(address):
                continue
            timeout = self.sim.call_after(
                self.config.hello_timeout,
                lambda a=address: self._on_hello_timeout(a),
                label="hello-timeout")
            self._pending_hellos[address] = (timeout, self.sim.now)
            self._m_hellos_sent.inc()
            if self._spans.enabled:
                # Child of the list transaction that named the target:
                # the "reply -> connect attempt" causal edge.
                self._hello_spans[address] = self._spans.start_span(
                    "connect", "peerlist", self.sim.now,
                    parent=(parent_span if parent_span is not None
                            else self._join_span),
                    actor=self.address, target=address,
                    source=source.value)
            self._transmit(address, hello)

    def _note_connect_failure(self, address: str) -> None:
        """Back the candidate off per the consolidated retry policy.

        With default knobs ``retry_backoff`` is the historical flat
        60 s; hardened profiles get exponential growth plus
        deterministic per-(address, attempt) jitter.
        """
        failures = self.pool.failure_count(address) + 1
        self.pool.note_failure(
            address, self.sim.now,
            self.config.retry_backoff(failures, key=address))

    def _on_hello_timeout(self, address: str) -> None:
        if self._pending_hellos.pop(address, None) is not None:
            self._m_hello_timeouts.inc()
            self._note_connect_failure(address)
            span = self._hello_spans.pop(address, None)
            if span is not None:
                span.finish(self.sim.now, "timeout")

    def _on_hello(self, src: str, msg: m.Hello) -> None:
        if self.phase is not PeerPhase.ACTIVE:
            return
        if msg.channel_id != self.channel.channel_id:
            return
        if self.pool.is_banned(src, self.sim.now):
            # A banned peer does not get back in by knocking again.
            return
        if src in self.neighbors:
            self.neighbors.get(src).record_availability(
                msg.have_until, self.sim.now, msg.have_from)
            self._transmit(src, m.HelloAck(
                channel_id=self.channel.channel_id,
                have_until=self.advertised_have,
                have_from=self.have_from))
            return
        if self.neighbors.is_full:
            self.hello_rejects += 1
            self._m_hello_rejects.inc()
            self._transmit(src, m.HelloReject(
                channel_id=self.channel.channel_id))
            return
        state = self.neighbors.add(src, self.sim.now)
        state.record_availability(msg.have_until, self.sim.now,
                                  msg.have_from)
        self.pool.add(src, self.sim.now, ListSource.NEIGHBOR)
        self._transmit(src, m.HelloAck(channel_id=self.channel.channel_id,
                                       have_until=self.advertised_have,
                                       have_from=self.have_from))

    def _on_hello_ack(self, src: str, msg: m.HelloAck) -> None:
        pending = self._pending_hellos.pop(src, None)
        if pending is None:
            # Ack for a handshake we already timed out, or a keepalive.
            if src in self.neighbors:
                self.neighbors.get(src).record_availability(
                    msg.have_until, self.sim.now, msg.have_from)
            return
        event, sent_at = pending
        self.sim.cancel(event)
        span = self._hello_spans.pop(src, None)
        if self.phase is not PeerPhase.ACTIVE:
            if span is not None:
                span.finish(self.sim.now, "aborted")
            return
        if src in self.neighbors:
            if span is not None:
                span.finish(self.sim.now, "duplicate")
            return
        if self.neighbors.is_full:
            # Lost the race: the table filled while this ack was in flight.
            self._m_races_lost.inc()
            if span is not None:
                span.finish(self.sim.now, "race_lost")
            self._transmit(src, m.Goodbye(
                channel_id=self.channel.channel_id))
            return
        state = self.neighbors.add(src, self.sim.now)
        state.hello_rtt = self.sim.now - sent_at
        state.record_availability(msg.have_until, self.sim.now,
                                  msg.have_from)
        self.pool.note_success(src)
        self._m_races_won.inc()
        if span is not None:
            span.finish(self.sim.now, rtt=state.hello_rtt)

    def _on_hello_reject(self, src: str, msg: m.HelloReject) -> None:
        pending = self._pending_hellos.pop(src, None)
        if pending is not None:
            self.sim.cancel(pending[0])
            span = self._hello_spans.pop(src, None)
            if span is not None:
                span.finish(self.sim.now, "rejected")
        self._note_connect_failure(src)

    def _on_goodbye(self, src: str, msg: m.Goodbye) -> None:
        self._drop_neighbor(src)

    def _drop_neighbor(self, address: str) -> None:
        if self.neighbors.remove(address) is not None:
            if self.scheduler is not None:
                self.scheduler.forget_neighbor(address)
            if self._rate_limiter is not None:
                self._rate_limiter.forget(address)
            self._recruit_if_short()

    def _recruit_if_short(self) -> None:
        """React to a table deficit immediately instead of waiting for
        the next gossip round: ask a neighbor for its list, or fall back
        to a tracker when no neighbors are left."""
        if self.phase is not PeerPhase.ACTIVE:
            return
        engaged = len(self.neighbors) + self.pending_hello_count
        if engaged >= self.config.target_neighbors:
            return
        targets = self.neighbors.addresses()
        if targets and self.policy.uses_neighbor_referral:
            target = self._rng.choice(targets)
            self._peerlist_request_id += 1
            own_list = tuple(self.pool.build_peer_list(
                targets, self.config.peer_list_max, self.sim.now))
            self._open_peerlist_span(self._peerlist_request_id, target)
            self._transmit(target, m.PeerListRequest(
                channel_id=self.channel.channel_id, enclosed=own_list,
                have_until=self.advertised_have,
                have_from=self.have_from,
                request_id=self._peerlist_request_id))
        elif self.trackers:
            live = [t for t in self.trackers
                    if not self._tracker_suspect(t)] or self.trackers
            tracker = live[self._tracker_rotation % len(live)]
            self._tracker_rotation += 1
            self._query_tracker(tracker)
        # Also retry known-but-unconnected candidates right away.
        candidates = self.pool.connectable(
            self.sim.now, exclude=self.neighbors.addresses())
        if candidates:
            self._attempt_connections(candidates, ListSource.NEIGHBOR)

    # -- gossip -------------------------------------------------------------
    def _open_peerlist_span(self, request_id: int, target: str) -> None:
        if not self._spans.enabled:
            return
        self._peerlist_spans[request_id] = self._spans.start_span(
            "peerlist_request", "peerlist", self.sim.now,
            parent=self._join_span, actor=self.address, target=target,
            request_id=request_id)

    def _gossip_round(self) -> None:
        if self.phase is not PeerPhase.ACTIVE:
            return
        if not self.policy.uses_neighbor_referral:
            return
        targets = self.neighbors.addresses()
        if not targets:
            return
        self._m_gossip_rounds.inc()
        fanout = min(self.config.gossip_fanout, len(targets))
        chosen = self._rng.sample(targets, fanout)
        own_list = tuple(self.pool.build_peer_list(
            self.neighbors.addresses(), self.config.peer_list_max,
            self.sim.now))
        sends: List[Tuple[str, m.Message, int]] = []
        size = -1
        for target in chosen:
            self._peerlist_request_id += 1
            request = m.PeerListRequest(
                channel_id=self.channel.channel_id, enclosed=own_list,
                have_until=self.advertised_have,
                have_from=self.have_from,
                request_id=self._peerlist_request_id)
            self._open_peerlist_span(self._peerlist_request_id, target)
            if size < 0:
                # Every request this round encloses the same peer list, so
                # they all serialize to the same number of wire bytes.
                size = wire_size(request)
            sends.append((target, request, size))
        self._transmit_many(sends)

    def _on_peer_list_request(self, src: str, msg: m.PeerListRequest) -> None:
        if self.phase is not PeerPhase.ACTIVE:
            return
        self.peer_list_requests_received += 1
        now = self.sim.now
        self.pool.add_many(msg.enclosed, now, ListSource.ENCLOSED)
        neighbor = self.neighbors.get(src)
        if neighbor is not None:
            neighbor.record_availability(msg.have_until, now,
                                         msg.have_from)
        peers = None
        if self.adversary is not None:
            forged = self.adversary.peer_list(self.pool.candidates(),
                                              self.config.peer_list_max)
            if forged is not None:
                peers = tuple(forged)
        if peers is None:
            peers = tuple(self.pool.build_peer_list(
                self.neighbors.addresses(), self.config.peer_list_max,
                now))
        reply = m.PeerListReply(channel_id=self.channel.channel_id,
                                peers=peers,
                                have_until=self.advertised_have,
                                have_from=self.have_from,
                                request_id=msg.request_id)
        self.peer_lists_sent += 1
        self._transmit(src, reply)

    def _on_peer_list_reply(self, src: str, msg: m.PeerListReply) -> None:
        span = self._peerlist_spans.pop(msg.request_id, None)
        if span is not None:
            span.finish(self.sim.now, peers=len(msg.peers))
        if self.phase is not PeerPhase.ACTIVE:
            return
        now = self.sim.now
        neighbor = self.neighbors.get(src)
        if neighbor is not None:
            neighbor.record_availability(msg.have_until, now,
                                         msg.have_from)
            neighbor.peer_lists_received += 1
        self.pool.add_many(msg.peers, now, ListSource.NEIGHBOR)
        # "a client ... always tries to connect to the listed peers as
        # soon as the list is received"
        self._attempt_connections(msg.peers, ListSource.NEIGHBOR,
                                  parent_span=span)

    # -- availability ----------------------------------------------------
    def _buffermap_round(self) -> None:
        if self.phase is not PeerPhase.ACTIVE:
            return
        targets = self.neighbors.addresses()
        if not targets:
            return
        fanout = min(self.config.buffermap_fanout, len(targets))
        announce = m.BufferMapAnnounce(channel_id=self.channel.channel_id,
                                       have_until=self.advertised_have,
                                       have_from=self.have_from)
        size = wire_size(announce)
        self._transmit_many([(target, announce, size)
                             for target in self._rng.sample(targets, fanout)])

    def _on_buffermap(self, src: str, msg: m.BufferMapAnnounce) -> None:
        neighbor = self.neighbors.get(src)
        if neighbor is not None:
            neighbor.record_availability(msg.have_until, self.sim.now,
                                         msg.have_from)

    # -- data plane -----------------------------------------------------------
    def _send_data_request(self, address: str, chunk: int, first: int,
                           last: int, seq: int) -> None:
        request = m.DataRequest(channel_id=self.channel.channel_id,
                                chunk=chunk, first=first, last=last, seq=seq)
        self._transmit(address, request)

    def _send_data_requests(self, issues: List[tuple]) -> None:
        """Transmit one scheduler tick's worth of requests as a cohort."""
        channel_id = self.channel.channel_id
        size = -1
        sends: List[Tuple[str, m.Message, int]] = []
        for address, chunk, first, last, seq in issues:
            request = m.DataRequest(channel_id=channel_id, chunk=chunk,
                                    first=first, last=last, seq=seq)
            if size < 0:
                # DataRequest has a fixed-width body: every request in the
                # batch occupies the same number of wire bytes.
                size = wire_size(request)
            sends.append((address, request, size))
        self._transmit_many(sends)

    def _on_data_request(self, src: str, msg: m.DataRequest) -> None:
        if self.phase is not PeerPhase.ACTIVE or self.buffer is None:
            return
        now = self.sim.now
        neighbor = self.neighbors.get(src)
        if neighbor is not None:
            neighbor.last_heard = now
        if self.config.request_rate_cap > 0:
            if self._rate_limiter is None:
                self._rate_limiter = RequestRateLimiter(
                    self.config.request_rate_cap,
                    self.config.request_rate_burst)
            if not self._rate_limiter.allow(src, now):
                # Over the per-neighbor cap: drop silently (an answer
                # would reward the flood) and strike the requester.
                self.requests_rate_limited += 1
                self._m_rate_limited.inc()
                self._strike(src, self.config.strike_flood)
                return
        total = self.channel.geometry.subpieces_per_chunk
        valid_range = (msg.chunk >= 0 and 0 <= msg.first <= msg.last
                       and msg.last < total)
        has_range = valid_range and self.buffer.has_range(
            msg.chunk, msg.first, msg.last)
        action = "serve"
        if has_range and self.adversary is not None:
            action = self.adversary.serve_action()
        if not has_range or action == "miss":
            self.data_misses_sent += 1
            self._transmit(src, m.DataMiss(
                channel_id=self.channel.channel_id, chunk=msg.chunk,
                seq=msg.seq, have_until=self.advertised_have,
                have_from=self.have_from))
            return
        payload_bytes = self.channel.geometry.range_bytes(msg.first, msg.last)
        reply_type = (m.PoisonedDataReply if action == "poison"
                      else m.DataReply)
        reply = reply_type(channel_id=self.channel.channel_id,
                           chunk=msg.chunk, first=msg.first, last=msg.last,
                           seq=msg.seq, have_until=self.advertised_have,
                           have_from=self.have_from,
                           payload_bytes=payload_bytes)
        self.data_requests_served += 1
        self.bytes_uploaded += payload_bytes
        self._transmit(src, reply)

    def _on_data_reply(self, src: str, msg: m.DataReply) -> None:
        if self.scheduler is None:
            return
        self.scheduler.on_reply(msg.seq, msg.chunk, msg.first, msg.last,
                                msg.have_until, msg.have_from)
        if self.player is not None:
            self.player.tick(self.sim.now)

    def _on_poisoned_reply(self, src: str, msg: m.PoisonedDataReply) -> None:
        """Chunk integrity verification failed.

        The bytes were already spent on the wire; the payload is
        discarded (never buffered), the range returns to the wanted set
        so the next tick re-fetches it elsewhere, and the sender is
        struck toward a ban.
        """
        if self.scheduler is None:
            return
        self.poisoned_replies += 1
        self._m_poisoned.inc()
        if self.scheduler.on_poisoned(msg.seq):
            self.chunks_refetched += 1
            self._m_refetched.inc()
        self._strike(src, self.config.strike_poisoned)

    def _on_data_miss(self, src: str, msg: m.DataMiss) -> None:
        if self.scheduler is None:
            return
        if (self.config.strike_false_advertise > 0
                and msg.have_from <= msg.chunk <= msg.have_until):
            # The neighbor claims (in this very message) to cover the
            # chunk it just refused to serve: a buffer-map lie.
            self._strike(src, self.config.strike_false_advertise)
        self.scheduler.on_miss(msg.seq, msg.have_until, msg.have_from)

    def _strike(self, address: str, count: int) -> None:
        """Charge misbehaviour strikes; demote and ban at the limit."""
        if count <= 0:
            return
        now = self.sim.now
        if self.pool.strike(address, now, count, self.config.strike_limit,
                            self.config.ban_seconds):
            self.neighbors_banned += 1
            self._m_banned.inc()
            if self._trace.enabled_for(WARNING):
                self._trace.emit(now, WARNING, "neighbor_banned",
                                 peer=self.address, isp=self.isp.name,
                                 banned=address)
            if address in self.neighbors:
                self._transmit(address, m.Goodbye(
                    channel_id=self.channel.channel_id))
                self._drop_neighbor(address)

    # -- periodic upkeep ---------------------------------------------------
    def _scheduler_tick(self) -> None:
        if (self.phase is not PeerPhase.ACTIVE or self.scheduler is None
                or self.player is None):
            return
        live = self.channel.live_chunk(self.sim.now)
        urgent_until = None
        if self.player.state is PlayerState.STARTUP:
            # Before playback starts the whole startup buffer is urgent:
            # a fresh client pulls it from the source if nobody else has
            # it yet (e.g. the very first viewers of a channel).
            urgent_until = (self.buffer.first_chunk
                            + self.config.startup_chunks)
        self.scheduler.tick(live, self.player.playout_chunk, urgent_until)
        if self.adversary is not None:
            self._flood_tick()

    def _flood_tick(self) -> None:
        """Adversary override point: junk data requests on top of the
        honest schedule, targets and count drawn from the model's own
        RNG.  Replies land outside the scheduler's pending window and
        are discarded as duplicates."""
        count = self.adversary.flood_requests()
        if count <= 0:
            return
        targets = self.neighbors.addresses()
        if not targets:
            return
        last = self.channel.geometry.subpieces_per_chunk - 1
        # Every tick's burst hammers one *persistent* victim (the
        # lowest neighbor address): spread thin, or rotated per tick,
        # the flood would stay under every per-neighbor rate cap and
        # cost nobody anything.  When the victim defends itself and
        # drops the link, the next-lowest neighbor inherits the flood.
        address = min(targets)
        neighbor = self.neighbors.get(address)
        # Ask for something the victim probably holds, so the flood
        # actually costs it upload bandwidth.
        if neighbor is not None and neighbor.reported_have >= 0:
            chunk = neighbor.reported_have
        else:
            chunk = max(0, self.have_until)
        for _ in range(count):
            self._flood_seq += 1
            self._send_data_request(address, chunk, 0, last,
                                    self._flood_seq)

    def _maintenance(self) -> None:
        if self.phase is not PeerPhase.ACTIVE:
            return
        now = self.sim.now
        if self.player is not None:
            self.player.tick(now)
        if self.buffer is not None:
            live = self.channel.live_chunk(now)
            if live - self.buffer.have_until > self.config.resync_lag_chunks:
                self._resync(live)
        pinned = self._pinned_addresses()
        cutoff = now - self.config.neighbor_silence_timeout
        for address in self.neighbors.silent_since(cutoff):
            if address not in pinned:
                self._drop_neighbor(address)
        self._maybe_replace_slowest(now, pinned)

    def _pinned_addresses(self) -> frozenset:
        """Top responders cached against eviction (paper Section 3.4).

        With ``pin_top_responders = f``, the best ``ceil(f * n)``
        neighbors by observed responsiveness are protected from both the
        silence sweep and latency replacement, keeping the hottest data
        connections alive.
        """
        fraction = self.config.pin_top_responders
        if fraction <= 0 or not len(self.neighbors):
            return frozenset()
        states = [s for s in self.neighbors if s.ewma_response is not None]
        if not states:
            return frozenset()
        keep = math.ceil(fraction * len(self.neighbors))
        # nsmallest == sorted(...)[:keep] (stable), without the full sort.
        best = heapq.nsmallest(keep, states, key=lambda s: s.ewma_response)
        return frozenset(s.address for s in best)

    def _maybe_replace_slowest(self, now: float,
                               pinned: frozenset = frozenset()) -> None:
        """Latency-driven neighbor-set refinement.

        When the table is full enough, occasionally drop the neighbor
        with the worst observed response time; the freed slot is then
        re-filled through the usual handshake race, which nearby peers
        tend to win.  Purely latency-based — no topology input.
        """
        if len(self.neighbors) < self.config.target_neighbors:
            return
        if self._rng.random() >= self.config.neighbor_replace_probability:
            return
        candidates = [
            s for s in self.neighbors
            if (s.inflight == 0
                and now - s.connected_at >= self.config.neighbor_min_tenure
                and s.address != self.source_address
                and s.address not in pinned)
        ]
        if len(candidates) < 2:
            return
        worst = max(candidates, key=lambda s: s.effective_response())
        self._transmit(worst.address, m.Goodbye(
            channel_id=self.channel.channel_id))
        self._drop_neighbor(worst.address)

    def _resync(self, live: int) -> None:
        """Jump back near the live edge after falling hopelessly behind.

        A live player cannot "catch up" on missed content; like the real
        client it abandons its position and rejoins close to the edge,
        keeping its neighbor relationships.
        """
        self.resyncs += 1
        self._m_resyncs.inc()
        now = self.sim.now
        if self._trace.enabled_for(WARNING):
            self._trace.emit(now, WARNING, "playback_resync",
                             peer=self.address, isp=self.isp.name,
                             live_chunk=live, behind=live - self.have_until)
        if self.player is not None:
            self.player.stop(now)
        lag = self._rng.randint(self.config.startup_lag_min,
                                self.config.startup_lag_max)
        first_chunk = max(0, live - lag + 1)
        geometry = self.channel.geometry
        self.buffer = ChunkBuffer(geometry, first_chunk)
        self.player = PlaybackMonitor(geometry, self.buffer, join_time=now,
                                      startup_chunks=self.config.startup_chunks,
                                      obs=self._obs, obs_tags=self._obs_tags,
                                      actor=self.address,
                                      span_parent=self._join_span)
        if self.scheduler is not None:
            self.scheduler.reset_for_buffer(self.buffer)

    # -- low-level send ------------------------------------------------------
    def _transmit(self, dst: str, msg: m.Message) -> bool:
        return self.send(dst, msg, wire_size(msg))

    def _transmit_many(self, sends: List[Tuple[str, m.Message, int]]) -> None:
        # One transport call for a whole fanout round: the network layer
        # batches the loss/jitter draws and merges same-timestamp deliveries.
        if len(sends) == 1:
            dst, msg, size = sends[0]
            self.send(dst, msg, size)
        elif sends:
            self.send_many(sends)

    _HANDLERS = {
        m.ChannelListReply: _on_channel_list,
        m.PlaylinkReply: _on_playlink,
        m.TrackerReply: _on_tracker_reply,
        m.Hello: _on_hello,
        m.HelloAck: _on_hello_ack,
        m.HelloReject: _on_hello_reject,
        m.Goodbye: _on_goodbye,
        m.PeerListRequest: _on_peer_list_request,
        m.PeerListReply: _on_peer_list_reply,
        m.DataRequest: _on_data_request,
        m.DataReply: _on_data_reply,
        m.PoisonedDataReply: _on_poisoned_reply,
        m.DataMiss: _on_data_miss,
        m.BufferMapAnnounce: _on_buffermap,
    }
