"""Channel source (origin) server.

The origin injects the live stream into the swarm.  It behaves like a
peer with three differences: it has *every* chunk up to the live edge, it
never requests anything, and its neighbor capacity / uplink are those of
a modest server — deliberately not large enough to feed the whole swarm,
so the population must redistribute chunks peer-to-peer, as the real
system does.

It answers Hello (until its table fills), peer-list gossip (returning the
peers that recently contacted it — which is how the earliest joiners
learn about each other) and data requests.
"""

from __future__ import annotations

from typing import Dict

from ..network.bandwidth import AccessProfile
from ..network.datagram import Datagram
from ..network.isp import ISP
from ..network.transport import Host, UdpNetwork
from ..sim.engine import Simulator
from ..streaming.video import LiveChannel
from . import messages as m
from .config import ProtocolConfig
from .wire import wire_size

#: Default origin uplink: enough for a few dozen direct children only.
SOURCE_PROFILE = AccessProfile("source", down_bps=20_000_000,
                               up_bps=20_000_000, max_backlog=4.0)


class SourceServer(Host):
    """Origin server for one live channel."""

    def __init__(self, sim: Simulator, network: UdpNetwork, address: str,
                 isp: ISP, channel: LiveChannel, config: ProtocolConfig,
                 profile: AccessProfile = SOURCE_PROFILE,
                 max_children: int = 48) -> None:
        super().__init__(sim, network, address, isp, profile)
        self.channel = channel
        self.config = config
        self.max_children = max_children
        #: address -> last contact time, bounded by max_children.
        self._children: Dict[str, float] = {}
        self.data_requests_served = 0
        self.bytes_uploaded = 0
        self.hello_rejects = 0
        self.rejected_messages = 0

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    @property
    def have_until(self) -> int:
        """The origin always has everything up to the live edge."""
        return self.channel.live_chunk(self.sim.now)

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def handle_datagram(self, datagram: Datagram) -> None:
        payload = datagram.payload
        try:
            if isinstance(payload, m.Hello):
                self._on_hello(datagram.src, payload)
            elif isinstance(payload, m.PeerListRequest):
                self._on_peer_list_request(datagram.src, payload)
            elif isinstance(payload, m.DataRequest):
                self._on_data_request(datagram.src, payload)
            elif isinstance(payload, m.Goodbye):
                self._children.pop(datagram.src, None)
            else:
                # Unknown payloads are counted and dropped, never raised:
                # the origin must outlive anything the swarm throws at it.
                self.rejected_messages += 1
        except (AttributeError, TypeError, ValueError, KeyError,
                IndexError):
            self.rejected_messages += 1

    def _note_child(self, src: str) -> bool:
        """Track a contact; returns False when the table is full."""
        if src in self._children:
            self._children[src] = self.sim.now
            return True
        self._expire_children()
        if len(self._children) >= self.max_children:
            return False
        self._children[src] = self.sim.now
        return True

    def _expire_children(self) -> None:
        cutoff = self.sim.now - self.config.neighbor_silence_timeout
        stale = [a for a, t in self._children.items() if t < cutoff]
        for address in stale:
            del self._children[address]

    def _on_hello(self, src: str, msg: m.Hello) -> None:
        if msg.channel_id != self.channel.channel_id:
            return
        if not self._note_child(src):
            self.hello_rejects += 1
            self._transmit(src, m.HelloReject(
                channel_id=self.channel.channel_id))
            return
        self._transmit(src, m.HelloAck(channel_id=self.channel.channel_id,
                                       have_until=self.have_until,
                                       have_from=0))

    def _on_peer_list_request(self, src: str, msg: m.PeerListRequest) -> None:
        if msg.channel_id != self.channel.channel_id:
            return
        self._note_child(src)
        peers = tuple(a for a in self._children
                      if a != src)[:self.config.peer_list_max]
        self._transmit(src, m.PeerListReply(
            channel_id=self.channel.channel_id, peers=peers,
            have_until=self.have_until, have_from=0,
            request_id=msg.request_id))

    def _on_data_request(self, src: str, msg: m.DataRequest) -> None:
        if msg.channel_id != self.channel.channel_id:
            return
        self._children[src] = self.sim.now
        total = self.channel.geometry.subpieces_per_chunk
        bad_range = not (0 <= msg.first <= msg.last < total)
        if bad_range or msg.chunk > self.have_until or msg.chunk < 0:
            self._transmit(src, m.DataMiss(
                channel_id=self.channel.channel_id, chunk=msg.chunk,
                seq=msg.seq, have_until=self.have_until, have_from=0))
            return
        payload_bytes = self.channel.geometry.range_bytes(msg.first, msg.last)
        self.data_requests_served += 1
        self.bytes_uploaded += payload_bytes
        self._transmit(src, m.DataReply(
            channel_id=self.channel.channel_id, chunk=msg.chunk,
            first=msg.first, last=msg.last, seq=msg.seq,
            have_until=self.have_until, have_from=0,
            payload_bytes=payload_bytes))

    def _transmit(self, dst: str, msg: m.Message) -> bool:
        return self.send(dst, msg, wire_size(msg))
