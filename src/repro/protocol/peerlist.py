"""Candidate pool and peer-list construction.

A client learns about other peers from tracker replies, gossip replies,
and lists enclosed in incoming gossip requests.  The :class:`CandidatePool`
remembers where and when each address was learned (the capture analysis
distinguishes tracker-sourced from peer-sourced entries the same way the
paper does), bounds its size with least-recently-refreshed eviction, and
produces the ≤60-entry peer lists this client sends to others.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


class ListSource(enum.Enum):
    """Where a candidate address was learned from."""

    TRACKER = "tracker"
    NEIGHBOR = "neighbor"
    ENCLOSED = "enclosed"

    def __str__(self) -> str:
        return self.value


@dataclass
class Candidate:
    """One known-but-not-necessarily-connected peer address."""

    address: str
    first_seen: float
    last_seen: float
    source: ListSource
    times_seen: int = 1
    #: Set when a connection attempt to this candidate failed recently.
    backoff_until: float = 0.0
    #: Consecutive connection failures since the last success (feeds the
    #: exponential retry policy in :class:`ProtocolConfig`).
    failures: int = 0
    #: Misbehaviour strikes accumulated against this address.
    strikes: int = 0
    #: Banned (ineligible for connection *and* referral) until this
    #: simulation time; 0 means never banned.
    banned_until: float = 0.0


class CandidatePool:
    """Bounded registry of known peer addresses."""

    def __init__(self, self_address: str, capacity: int = 500) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.self_address = self_address
        self.capacity = capacity
        self._candidates: Dict[str, Candidate] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, address: str) -> bool:
        return address in self._candidates

    def get(self, address: str) -> Optional[Candidate]:
        return self._candidates.get(address)

    def add(self, address: str, now: float, source: ListSource) -> bool:
        """Record a sighting of ``address``.  Returns True if it was new."""
        if address == self.self_address:
            return False
        candidate = self._candidates.get(address)
        if candidate is not None:
            candidate.last_seen = now
            candidate.times_seen += 1
            return False
        self._evict_if_full(now)
        self._candidates[address] = Candidate(
            address=address, first_seen=now, last_seen=now, source=source)
        return True

    def add_many(self, addresses: Iterable[str], now: float,
                 source: ListSource) -> int:
        """Record sightings of many addresses; returns #new candidates."""
        return sum(1 for a in addresses if self.add(a, now, source))

    def note_failure(self, address: str, now: float,
                     backoff: float = 60.0) -> None:
        """Back off a candidate after a failed connection attempt."""
        candidate = self._candidates.get(address)
        if candidate is not None:
            candidate.backoff_until = now + backoff
            candidate.failures += 1

    def note_success(self, address: str) -> None:
        """Clear the consecutive-failure count after a real connection."""
        candidate = self._candidates.get(address)
        if candidate is not None:
            candidate.failures = 0

    def failure_count(self, address: str) -> int:
        candidate = self._candidates.get(address)
        return candidate.failures if candidate is not None else 0

    def strike(self, address: str, now: float, count: int, limit: int,
               ban_seconds: float) -> bool:
        """Charge ``count`` strikes; returns True when the ban fires.

        Bans layer on top of the failure backoff: a banned address is
        invisible to :meth:`connectable` and to peer-list padding until
        ``ban_seconds`` elapse, and its strike count then restarts from
        zero (repeat offenders just get banned again).  Unknown
        addresses are registered first so a striker never loses the ban
        record to pool churn.
        """
        if count <= 0 or address == self.self_address:
            return False
        candidate = self._candidates.get(address)
        if candidate is None:
            self._evict_if_full(now)
            candidate = Candidate(address=address, first_seen=now,
                                  last_seen=now,
                                  source=ListSource.NEIGHBOR)
            self._candidates[address] = candidate
        candidate.strikes += count
        if candidate.strikes >= limit:
            candidate.strikes = 0
            candidate.banned_until = now + ban_seconds
            return True
        return False

    def is_banned(self, address: str, now: float) -> bool:
        candidate = self._candidates.get(address)
        return candidate is not None and candidate.banned_until > now

    def remove(self, address: str) -> None:
        self._candidates.pop(address, None)

    def connectable(self, now: float,
                    exclude: Sequence[str] = ()) -> List[str]:
        """Addresses eligible for a connection attempt right now."""
        excluded = set(exclude)
        excluded.add(self.self_address)
        return [c.address for c in self._candidates.values()
                if c.address not in excluded and c.backoff_until <= now
                and c.banned_until <= now]

    #: A client with fewer neighbors than this pads its returned list
    #: with recently seen candidates so newcomers still get referrals.
    MIN_LIST_ENTRIES = 12

    def build_peer_list(self, neighbors: Sequence[str], limit: int,
                        now: float) -> List[str]:
        """The ≤``limit`` peer list this client returns to a requester.

        "A normal peer returns its recently connected peers": the list is
        the connected-neighbor set.  Only a client with very few
        neighbors (a newcomer) pads with recently seen candidates — the
        referral bias of established peers' lists is what the paper's
        clustering lives on, so diluting them with random pool entries
        would erase the effect being studied.
        """
        out: List[str] = list(neighbors[:limit])
        target = min(limit, self.MIN_LIST_ENTRIES)
        if len(out) < target:
            seen = set(out)
            # nlargest == sorted(..., reverse=True)[:n] (stable): the
            # same candidates in the same order, without a full sort of
            # the pool.
            fresh = heapq.nlargest(
                target - len(out),
                (c for c in self._candidates.values()
                 if c.address not in seen and c.banned_until <= now),
                key=lambda c: c.last_seen)
            out.extend(candidate.address for candidate in fresh)
        return out

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the pool (capacity, every candidate).

        Insertion order is part of the snapshot — eviction scans the
        dict in that order, so a restored pool must evict identically.
        """
        return {
            "self_address": self.self_address,
            "capacity": self.capacity,
            "candidates": [
                {"address": c.address, "first_seen": c.first_seen,
                 "last_seen": c.last_seen, "source": c.source.value,
                 "times_seen": c.times_seen,
                 "backoff_until": c.backoff_until,
                 "failures": c.failures, "strikes": c.strikes,
                 "banned_until": c.banned_until}
                for c in self._candidates.values()],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the pool in place from :meth:`snapshot_state`."""
        self.self_address = state["self_address"]
        self.capacity = state["capacity"]
        self._candidates = {}
        for fields in state["candidates"]:
            candidate = Candidate(
                address=fields["address"],
                first_seen=fields["first_seen"],
                last_seen=fields["last_seen"],
                source=ListSource(fields["source"]),
                times_seen=fields["times_seen"],
                backoff_until=fields["backoff_until"],
                failures=fields.get("failures", 0),
                strikes=fields.get("strikes", 0),
                banned_until=fields.get("banned_until", 0.0))
            self._candidates[candidate.address] = candidate

    def addresses(self) -> List[str]:
        return list(self._candidates)

    def candidates(self) -> List[Candidate]:
        """Every held candidate, in insertion order."""
        return list(self._candidates.values())

    def _evict_if_full(self, now: float) -> None:
        if len(self._candidates) < self.capacity:
            return
        # Drop the least recently refreshed entry; ties broken by address
        # for determinism.
        victim = min(self._candidates.values(),
                     key=lambda c: (c.last_seen, c.address))
        del self._candidates[victim.address]
