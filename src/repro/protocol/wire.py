"""Binary codec for protocol messages.

The simulator passes message *objects* between hosts, but bandwidth,
queueing delay and capture all need faithful on-the-wire sizes.  This
module defines the byte layout, provides :func:`encode` / :func:`decode`
for it, and — because encoding in the hot path would be wasteful —
:func:`wire_size`, an arithmetic size computation guaranteed (and tested)
to equal ``len(encode(msg))``.

Layout: 4-byte header ``b"PP" | version | type``, then a type-specific
body.  Addresses are packed as IPv4 (4 bytes) + port (2 bytes, always 0
here); strings are length-prefixed UTF-8; integers are big-endian.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Tuple

from . import messages as m

MAGIC = b"PP"
VERSION = 1
HEADER = struct.Struct(">2sBB")
ADDRESS = struct.Struct(">IH")
U8 = struct.Struct(">B")
U16 = struct.Struct(">H")
U32 = struct.Struct(">I")
I64 = struct.Struct(">q")

ADDRESS_BYTES = ADDRESS.size  # 6


class WireError(ValueError):
    """Malformed bytes or an unencodable message."""


# ----------------------------------------------------------------------
# Primitive packers
# ----------------------------------------------------------------------
def _pack_address(address: str) -> bytes:
    try:
        return ADDRESS.pack(int(ipaddress.IPv4Address(address)), 0)
    except ipaddress.AddressValueError as exc:
        raise WireError(f"bad address {address!r}") from exc


def _unpack_address(data: bytes, offset: int) -> Tuple[str, int]:
    value, _port = ADDRESS.unpack_from(data, offset)
    return str(ipaddress.IPv4Address(value)), offset + ADDRESS.size


def _pack_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 255:
        raise WireError(f"string too long ({len(raw)} bytes)")
    return U8.pack(len(raw)) + raw


def _unpack_string(data: bytes, offset: int) -> Tuple[str, int]:
    (length,) = U8.unpack_from(data, offset)
    offset += 1
    raw = data[offset:offset + length]
    if len(raw) != length:
        raise WireError("truncated string")
    try:
        return raw.decode("utf-8"), offset + length
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid utf-8 string {raw!r}") from exc


def _pack_addresses(addresses) -> bytes:
    if len(addresses) > 65535:
        raise WireError("address list too long")
    parts = [U16.pack(len(addresses))]
    parts.extend(_pack_address(a) for a in addresses)
    return b"".join(parts)


def _unpack_addresses(data: bytes, offset: int) -> Tuple[Tuple[str, ...], int]:
    (count,) = U16.unpack_from(data, offset)
    offset += 2
    out = []
    for _ in range(count):
        address, offset = _unpack_address(data, offset)
        out.append(address)
    return tuple(out), offset


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode(msg: m.Message) -> bytes:
    """Serialise ``msg`` to bytes."""
    body = _encode_body(msg)
    return HEADER.pack(MAGIC, VERSION, msg.TYPE) + body


def _encode_body(msg: m.Message) -> bytes:
    if isinstance(msg, m.ChannelListRequest):
        return b""
    if isinstance(msg, m.ChannelListReply):
        parts = [U16.pack(len(msg.channels))]
        for channel_id, name in msg.channels:
            parts.append(U32.pack(channel_id))
            parts.append(_pack_string(name))
        return b"".join(parts)
    if isinstance(msg, m.PlaylinkRequest):
        return U32.pack(msg.channel_id)
    if isinstance(msg, m.PlaylinkReply):
        return (U32.pack(msg.channel_id) + _pack_string(msg.playlink)
                + _pack_addresses(msg.trackers))
    if isinstance(msg, m.TrackerQuery):
        return U32.pack(msg.channel_id)
    if isinstance(msg, m.TrackerReply):
        return U32.pack(msg.channel_id) + _pack_addresses(msg.peers)
    if isinstance(msg, m.Hello):
        return (U32.pack(msg.channel_id) + I64.pack(msg.have_until)
                + I64.pack(msg.have_from))
    if isinstance(msg, m.HelloAck):
        return (U32.pack(msg.channel_id) + I64.pack(msg.have_until)
                + I64.pack(msg.have_from))
    if isinstance(msg, m.HelloReject):
        return U32.pack(msg.channel_id)
    if isinstance(msg, m.Goodbye):
        return U32.pack(msg.channel_id)
    if isinstance(msg, m.PeerListRequest):
        return (U32.pack(msg.channel_id) + _pack_addresses(msg.enclosed)
                + I64.pack(msg.have_until) + I64.pack(msg.have_from)
                + U32.pack(msg.request_id))
    if isinstance(msg, m.PeerListReply):
        return (U32.pack(msg.channel_id) + _pack_addresses(msg.peers)
                + I64.pack(msg.have_until) + I64.pack(msg.have_from)
                + U32.pack(msg.request_id))
    if isinstance(msg, m.DataRequest):
        return (U32.pack(msg.channel_id) + I64.pack(msg.chunk)
                + U16.pack(msg.first) + U16.pack(msg.last)
                + U32.pack(msg.seq))
    if isinstance(msg, (m.DataReply, m.PoisonedDataReply)):
        return (U32.pack(msg.channel_id) + I64.pack(msg.chunk)
                + U16.pack(msg.first) + U16.pack(msg.last)
                + U32.pack(msg.seq) + I64.pack(msg.have_until)
                + I64.pack(msg.have_from)
                + U32.pack(msg.payload_bytes)
                + b"\x00" * msg.payload_bytes)
    if isinstance(msg, m.DataMiss):
        return (U32.pack(msg.channel_id) + I64.pack(msg.chunk)
                + U32.pack(msg.seq) + I64.pack(msg.have_until)
                + I64.pack(msg.have_from))
    if isinstance(msg, m.BufferMapAnnounce):
        return (U32.pack(msg.channel_id) + I64.pack(msg.have_until)
                + I64.pack(msg.have_from))
    raise WireError(f"cannot encode {type(msg).__name__}")


# ----------------------------------------------------------------------
# Size (no allocation of the payload)
# ----------------------------------------------------------------------
_HEADER_SIZE = HEADER.size

# One sizer per concrete type, dispatched on ``type(msg)``: the hottest
# messages (DataRequest, DataReply) sat at the bottom of the previous
# isinstance chain, paying ~10 failed checks per call on the transport
# hot path.  A poisoned reply is laid out (and therefore billed) exactly
# like the clean reply it impersonates.
_SIZERS = {
    m.ChannelListRequest: lambda msg: _HEADER_SIZE,
    m.ChannelListReply: lambda msg: _HEADER_SIZE + 2 + sum(
        4 + 1 + len(name.encode("utf-8")) for _cid, name in msg.channels),
    m.PlaylinkRequest: lambda msg: _HEADER_SIZE + 4,
    m.TrackerQuery: lambda msg: _HEADER_SIZE + 4,
    m.HelloReject: lambda msg: _HEADER_SIZE + 4,
    m.Goodbye: lambda msg: _HEADER_SIZE + 4,
    m.PlaylinkReply: lambda msg: (
        _HEADER_SIZE + 4 + 1 + len(msg.playlink.encode("utf-8"))
        + 2 + ADDRESS_BYTES * len(msg.trackers)),
    m.TrackerReply: lambda msg: (
        _HEADER_SIZE + 4 + 2 + ADDRESS_BYTES * len(msg.peers)),
    m.Hello: lambda msg: _HEADER_SIZE + 4 + 8 + 8,
    m.HelloAck: lambda msg: _HEADER_SIZE + 4 + 8 + 8,
    m.PeerListRequest: lambda msg: (
        _HEADER_SIZE + 4 + 2 + ADDRESS_BYTES * len(msg.enclosed)
        + 8 + 8 + 4),
    m.PeerListReply: lambda msg: (
        _HEADER_SIZE + 4 + 2 + ADDRESS_BYTES * len(msg.peers) + 8 + 8 + 4),
    m.DataRequest: lambda msg: _HEADER_SIZE + 4 + 8 + 2 + 2 + 4,
    m.DataReply: lambda msg: (
        _HEADER_SIZE + 4 + 8 + 2 + 2 + 4 + 8 + 8 + 4 + msg.payload_bytes),
    m.PoisonedDataReply: lambda msg: (
        _HEADER_SIZE + 4 + 8 + 2 + 2 + 4 + 8 + 8 + 4 + msg.payload_bytes),
    m.DataMiss: lambda msg: _HEADER_SIZE + 4 + 8 + 4 + 8 + 8,
    m.BufferMapAnnounce: lambda msg: _HEADER_SIZE + 4 + 8 + 8,
}


def wire_size(msg: m.Message) -> int:
    """Exact encoded size of ``msg`` in bytes (== ``len(encode(msg))``)."""
    sizer = _SIZERS.get(type(msg))
    if sizer is not None:
        return sizer(msg)
    # Subclasses of the wire messages size like their base layout.
    for klass in type(msg).__mro__[1:]:
        sizer = _SIZERS.get(klass)
        if sizer is not None:
            return sizer(msg)
    raise WireError(f"cannot size {type(msg).__name__}")


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def decode(data: bytes) -> m.Message:
    """Parse bytes back into a message object."""
    if len(data) < HEADER.size:
        raise WireError("short header")
    magic, version, type_byte = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported version {version}")
    offset = HEADER.size
    decoder = _DECODERS.get(type_byte)
    if decoder is None:
        raise WireError(f"unknown message type 0x{type_byte:02x}")
    try:
        return decoder(data, offset)
    except struct.error as exc:
        # A valid header on a truncated/garbled body: still a malformed
        # datagram, never an internal error leaking to the caller.
        raise WireError(f"truncated {type_byte:#04x} body: {exc}") from exc


def _decode_channel_list_request(data, offset):
    return m.ChannelListRequest()


def _decode_channel_list_reply(data, offset):
    (count,) = U16.unpack_from(data, offset)
    offset += 2
    channels = []
    for _ in range(count):
        (channel_id,) = U32.unpack_from(data, offset)
        offset += 4
        name, offset = _unpack_string(data, offset)
        channels.append((channel_id, name))
    return m.ChannelListReply(channels=tuple(channels))


def _decode_playlink_request(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    return m.PlaylinkRequest(channel_id=channel_id)


def _decode_playlink_reply(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    offset += 4
    playlink, offset = _unpack_string(data, offset)
    trackers, offset = _unpack_addresses(data, offset)
    return m.PlaylinkReply(channel_id=channel_id, playlink=playlink,
                           trackers=trackers)


def _decode_tracker_query(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    return m.TrackerQuery(channel_id=channel_id)


def _decode_tracker_reply(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    offset += 4
    peers, offset = _unpack_addresses(data, offset)
    return m.TrackerReply(channel_id=channel_id, peers=peers)


def _decode_hello(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (have_until,) = I64.unpack_from(data, offset + 4)
    (have_from,) = I64.unpack_from(data, offset + 12)
    return m.Hello(channel_id=channel_id, have_until=have_until,
                   have_from=have_from)


def _decode_hello_ack(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (have_until,) = I64.unpack_from(data, offset + 4)
    (have_from,) = I64.unpack_from(data, offset + 12)
    return m.HelloAck(channel_id=channel_id, have_until=have_until,
                      have_from=have_from)


def _decode_hello_reject(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    return m.HelloReject(channel_id=channel_id)


def _decode_goodbye(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    return m.Goodbye(channel_id=channel_id)


def _decode_peer_list_request(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    offset += 4
    enclosed, offset = _unpack_addresses(data, offset)
    (have_until,) = I64.unpack_from(data, offset)
    offset += 8
    (have_from,) = I64.unpack_from(data, offset)
    offset += 8
    (request_id,) = U32.unpack_from(data, offset)
    return m.PeerListRequest(channel_id=channel_id, enclosed=enclosed,
                             have_until=have_until, have_from=have_from,
                             request_id=request_id)


def _decode_peer_list_reply(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    offset += 4
    peers, offset = _unpack_addresses(data, offset)
    (have_until,) = I64.unpack_from(data, offset)
    offset += 8
    (have_from,) = I64.unpack_from(data, offset)
    offset += 8
    (request_id,) = U32.unpack_from(data, offset)
    return m.PeerListReply(channel_id=channel_id, peers=peers,
                           have_until=have_until, have_from=have_from,
                           request_id=request_id)


def _decode_data_request(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (chunk,) = I64.unpack_from(data, offset + 4)
    (first,) = U16.unpack_from(data, offset + 12)
    (last,) = U16.unpack_from(data, offset + 14)
    (seq,) = U32.unpack_from(data, offset + 16)
    return m.DataRequest(channel_id=channel_id, chunk=chunk, first=first,
                         last=last, seq=seq)


def _decode_data_reply(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (chunk,) = I64.unpack_from(data, offset + 4)
    (first,) = U16.unpack_from(data, offset + 12)
    (last,) = U16.unpack_from(data, offset + 14)
    (seq,) = U32.unpack_from(data, offset + 16)
    (have_until,) = I64.unpack_from(data, offset + 20)
    (have_from,) = I64.unpack_from(data, offset + 28)
    (payload_bytes,) = U32.unpack_from(data, offset + 36)
    return m.DataReply(channel_id=channel_id, chunk=chunk, first=first,
                       last=last, seq=seq, have_until=have_until,
                       have_from=have_from, payload_bytes=payload_bytes)


def _decode_poisoned_data_reply(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (chunk,) = I64.unpack_from(data, offset + 4)
    (first,) = U16.unpack_from(data, offset + 12)
    (last,) = U16.unpack_from(data, offset + 14)
    (seq,) = U32.unpack_from(data, offset + 16)
    (have_until,) = I64.unpack_from(data, offset + 20)
    (have_from,) = I64.unpack_from(data, offset + 28)
    (payload_bytes,) = U32.unpack_from(data, offset + 36)
    return m.PoisonedDataReply(
        channel_id=channel_id, chunk=chunk, first=first, last=last,
        seq=seq, have_until=have_until, have_from=have_from,
        payload_bytes=payload_bytes)


def _decode_buffer_map(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (have_until,) = I64.unpack_from(data, offset + 4)
    (have_from,) = I64.unpack_from(data, offset + 12)
    return m.BufferMapAnnounce(channel_id=channel_id,
                               have_until=have_until, have_from=have_from)


def _decode_data_miss(data, offset):
    (channel_id,) = U32.unpack_from(data, offset)
    (chunk,) = I64.unpack_from(data, offset + 4)
    (seq,) = U32.unpack_from(data, offset + 12)
    (have_until,) = I64.unpack_from(data, offset + 16)
    (have_from,) = I64.unpack_from(data, offset + 24)
    return m.DataMiss(channel_id=channel_id, chunk=chunk, seq=seq,
                      have_until=have_until, have_from=have_from)


_DECODERS = {
    m.ChannelListRequest.TYPE: _decode_channel_list_request,
    m.ChannelListReply.TYPE: _decode_channel_list_reply,
    m.PlaylinkRequest.TYPE: _decode_playlink_request,
    m.PlaylinkReply.TYPE: _decode_playlink_reply,
    m.TrackerQuery.TYPE: _decode_tracker_query,
    m.TrackerReply.TYPE: _decode_tracker_reply,
    m.Hello.TYPE: _decode_hello,
    m.HelloAck.TYPE: _decode_hello_ack,
    m.HelloReject.TYPE: _decode_hello_reject,
    m.Goodbye.TYPE: _decode_goodbye,
    m.PeerListRequest.TYPE: _decode_peer_list_request,
    m.PeerListReply.TYPE: _decode_peer_list_reply,
    m.DataRequest.TYPE: _decode_data_request,
    m.DataReply.TYPE: _decode_data_reply,
    m.DataMiss.TYPE: _decode_data_miss,
    m.BufferMapAnnounce.TYPE: _decode_buffer_map,
    m.PoisonedDataReply.TYPE: _decode_poisoned_data_reply,
}
