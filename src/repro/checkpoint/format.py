"""The on-disk checkpoint artifact format.

Every artifact — the campaign manifest, the per-unit day results, the
standalone session-metrics records — shares one envelope::

    {"schema": 1, "kind": "<artifact kind>",
     "payload": {...}, "digest": "<sha256 of canonical payload JSON>"}

The properties the resume contract needs all live here:

* **atomic**: :func:`write_artifact` writes to a temporary file in the
  same directory, flushes, fsyncs and ``os.replace``\\ s it into place —
  a SIGKILL at any instant leaves either the previous artifact or the
  new one, never a torn hybrid;
* **digest-stamped**: the payload digest is computed over the canonical
  JSON serialisation (sorted keys, no whitespace), so any bit of
  corruption — truncation aside, which already fails JSON parsing — is
  caught before a resume can silently diverge;
* **versioned**: ``schema`` is checked on read; an artifact written by
  a different format generation fails loudly with
  :class:`CheckpointError` instead of being reinterpreted.

JSON is deliberate: Python floats round-trip exactly through
``repr``-based JSON serialisation, so a restored locality percentage is
bit-for-bit the float the killed run computed — the foundation of the
byte-identical resume guarantee.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Union

#: Format generation.  Bump on any envelope or payload layout change;
#: readers refuse other generations.
SCHEMA_VERSION = 1

#: Suffix of in-flight temporary files (ignored by directory scans).
TMP_SUFFIX = ".tmp"


class CheckpointError(RuntimeError):
    """A checkpoint artifact is missing, corrupt, stale or incompatible.

    Raised instead of ever resuming from questionable state: a failed
    resume costs a re-run, a silently wrong one costs the campaign.
    """


def canonical_json(payload: dict) -> str:
    """The canonical serialisation the digest is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def payload_digest(payload: dict) -> str:
    """sha256 hex digest of the canonical payload JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")) \
        .hexdigest()


def write_artifact(path: Union[str, Path], kind: str,
                   payload: dict) -> None:
    """Atomically write one digest-stamped artifact to ``path``."""
    path = Path(path)
    try:
        body = json.dumps(
            {"schema": SCHEMA_VERSION, "kind": kind, "payload": payload,
             "digest": payload_digest(payload)},
            sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"unserialisable checkpoint payload for {path}: {exc}") \
            from exc
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=TMP_SUFFIX, dir=path.parent)
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(body + "\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise


def read_artifact(path: Union[str, Path], kind: str) -> dict:
    """Read and strictly validate one artifact; return its payload.

    Raises :class:`CheckpointError` on a missing or unreadable file,
    truncated/malformed JSON, a missing envelope field, a schema-version
    skew, a kind mismatch, or a payload-digest mismatch.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint artifact {path}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint artifact {path} (truncated or "
            f"malformed JSON): {exc}") from exc
    if not isinstance(envelope, dict):
        raise CheckpointError(
            f"corrupt checkpoint artifact {path}: expected a JSON "
            f"object, got {type(envelope).__name__}")
    for field in ("schema", "kind", "payload", "digest"):
        if field not in envelope:
            raise CheckpointError(
                f"corrupt checkpoint artifact {path}: missing "
                f"{field!r} field")
    if envelope["schema"] != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema skew in {path}: artifact is "
            f"generation {envelope['schema']!r}, this build reads "
            f"generation {SCHEMA_VERSION} — re-run without --resume")
    if envelope["kind"] != kind:
        raise CheckpointError(
            f"checkpoint kind mismatch in {path}: expected {kind!r}, "
            f"found {envelope['kind']!r}")
    payload = envelope["payload"]
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"corrupt checkpoint artifact {path}: payload is not an "
            f"object")
    if payload_digest(payload) != envelope["digest"]:
        raise CheckpointError(
            f"checkpoint digest mismatch in {path}: the payload does "
            f"not match its stamp (corrupt or hand-edited artifact)")
    return payload
