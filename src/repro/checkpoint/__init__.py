"""Checkpointed, resumable campaign runs.

A month-scale campaign is days of wall-clock; this package makes such
runs survivable: completed (program, day) units are persisted as
atomic, versioned, digest-stamped artifacts
(:mod:`repro.checkpoint.format`), a killed run resumes from them
byte-identically (``repro run fig06 --checkpoint DIR`` /
``--resume DIR``), and anything questionable on disk fails loudly with
:class:`CheckpointError` instead of resuming silently wrong.

See ``docs/CHECKPOINT.md`` for the format, the versioning rules and the
determinism contract the test suite enforces.
"""

from dataclasses import dataclass

from .format import (SCHEMA_VERSION, CheckpointError, canonical_json,
                     payload_digest, read_artifact, write_artifact)
from .store import (KIND_MANIFEST, KIND_UNIT, CampaignCheckpointStore,
                    UnitKey, config_digest_of)


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a campaign run checkpoints itself.

    ``path`` is the checkpoint directory.  ``every`` batches unit
    flushes: completed units are persisted in groups of N (a kill loses
    at most the unflushed tail of a batch; larger N trades re-work for
    fewer fsyncs).  ``resume`` loads the directory's completed units
    first and simulates only the remainder — the resumed result is
    byte-identical to an uninterrupted run.
    """

    path: str
    every: int = 1
    resume: bool = False

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(
                f"checkpoint-every must be >= 1, got {self.every}")


__all__ = [
    "SCHEMA_VERSION", "CheckpointError", "CheckpointPolicy",
    "CampaignCheckpointStore", "UnitKey", "KIND_MANIFEST", "KIND_UNIT",
    "canonical_json", "config_digest_of", "payload_digest",
    "read_artifact", "write_artifact",
]
