"""Directory layout of a resumable campaign checkpoint.

A checkpoint is a directory, not a single file, because the unit of
restart is the campaign's (program, day) simulation unit::

    <root>/
      campaign.json            # manifest: config digest, seed, shape
      units/popular-0000.json  # one digest-stamped artifact per
      units/unpopular-0003.json  # completed unit

Each artifact uses the :mod:`repro.checkpoint.format` envelope and is
written atomically, so a kill at any instant loses at most the units
completed since the last flush — never the directory's integrity.  Every
artifact embeds the campaign *config digest*: resuming with a different
seed, day count, population, fault schedule or model knob fails with
:class:`CheckpointError` instead of silently splicing incompatible
results together.

The store never holds more than one unit artifact in memory at a time
(:meth:`CampaignCheckpointStore.iter_units` is a generator), which is
what keeps a month-scale resume at constant RSS.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

from .format import (CheckpointError, payload_digest, read_artifact,
                     write_artifact)

#: Artifact kinds used by the campaign store.
KIND_MANIFEST = "campaign-manifest"
KIND_UNIT = "campaign-unit"

MANIFEST_NAME = "campaign.json"
UNITS_DIR = "units"

_UNIT_FILE = re.compile(r"^(?P<popularity>[a-z]+)-(?P<day>\d{4})\.json$")

#: A campaign unit key: ``(popularity value, day index)`` — the same
#: key the parallel job runner merges by.
UnitKey = Tuple[str, int]


class CampaignCheckpointStore:
    """Reads and writes one campaign checkpoint directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def units_dir(self) -> Path:
        return self.root / UNITS_DIR

    def unit_path(self, key: UnitKey) -> Path:
        popularity, day = key
        return self.units_dir / f"{popularity}-{day:04d}.json"

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def initialize(self, config_digest: str, *, seed: int, days: int,
                   total_units: int) -> None:
        """Write the manifest for a fresh (or restarted) campaign.

        Any unit artifacts already in the directory are removed first: a
        fresh ``--checkpoint`` run must never splice in days from an
        earlier campaign that happened to share the directory.
        """
        if self.units_dir.is_dir():
            for stale in self.units_dir.glob("*.json"):
                stale.unlink()
        self.root.mkdir(parents=True, exist_ok=True)
        write_artifact(self.manifest_path, KIND_MANIFEST,
                       {"config_digest": config_digest, "seed": seed,
                        "days": days, "total_units": total_units})

    def load_manifest(self, config_digest: str) -> dict:
        """Read, validate and config-match the manifest.

        ``config_digest`` is the digest of the configuration the caller
        is about to run; a mismatch means the checkpoint belongs to a
        *different* campaign and resuming would be silently wrong.
        """
        if not self.manifest_path.exists():
            raise CheckpointError(
                f"no campaign checkpoint at {self.root} (missing "
                f"{MANIFEST_NAME}); start one with --checkpoint")
        manifest = read_artifact(self.manifest_path, KIND_MANIFEST)
        if manifest.get("config_digest") != config_digest:
            raise CheckpointError(
                f"stale checkpoint at {self.root}: it was written for a "
                f"different campaign configuration (checkpoint config "
                f"{manifest.get('config_digest')!r}, requested "
                f"{config_digest!r}); re-run with --checkpoint to start "
                f"over")
        return manifest

    # ------------------------------------------------------------------
    # Units
    # ------------------------------------------------------------------
    def write_unit(self, key: UnitKey, config_digest: str,
                   payload: dict) -> None:
        """Atomically persist one completed unit's result."""
        popularity, day = key
        body = {"config_digest": config_digest,
                "popularity": popularity, "day": day}
        body.update(payload)
        write_artifact(self.unit_path(key), KIND_UNIT, body)

    def iter_units(self, config_digest: str) -> Iterator[
            Tuple[UnitKey, dict]]:
        """Yield every persisted unit, strictly validated, one at a time.

        Deterministic (sorted filename) order; any invalid artifact —
        truncated, digest-mismatched, schema-skewed, misnamed, or
        belonging to a different configuration — raises
        :class:`CheckpointError` rather than being skipped.
        """
        if not self.units_dir.is_dir():
            return
        for path in sorted(self.units_dir.glob("*.json")):
            match = _UNIT_FILE.match(path.name)
            if match is None:
                raise CheckpointError(
                    f"unexpected file in checkpoint unit directory: "
                    f"{path} (not a campaign unit artifact)")
            payload = read_artifact(path, KIND_UNIT)
            key = (payload.get("popularity"), payload.get("day"))
            named = (match.group("popularity"),
                     int(match.group("day")))
            if key != named:
                raise CheckpointError(
                    f"checkpoint unit {path} is mislabeled: file says "
                    f"{named}, payload says {key}")
            if payload.get("config_digest") != config_digest:
                raise CheckpointError(
                    f"stale checkpoint unit {path}: written for a "
                    f"different campaign configuration")
            yield key, payload

    def load_units(self, config_digest: str) -> Dict[UnitKey, dict]:
        """All persisted units as ``{key: payload}`` (small: the heavy
        state stays on disk; payloads are day summaries)."""
        return dict(self.iter_units(config_digest))


def config_digest_of(fields: dict) -> str:
    """Digest a configuration's result-affecting fields.

    Thin wrapper over :func:`repro.checkpoint.format.payload_digest` so
    callers build the digest and the artifacts from one function family.
    """
    return payload_digest(fields)
