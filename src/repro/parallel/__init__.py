"""Parallel execution layer (S12): deterministic job fan-out.

``run_jobs`` fans independent simulation units (campaign days,
multi-seed replicas, ablation grid points) out to worker processes and
merges their results by job key, so every ``jobs`` value yields
byte-identical output; ``run_seed_sweep`` applies it to multi-seed
scenario sweeps.  See ``docs/PARALLEL.md`` for the execution model and
the determinism contract.
"""

from .jobs import (WHERE_FALLBACK, WHERE_POOL, WHERE_SERIAL, Job,
                   JobFailure, JobOutcome, execute_jobs, merge_by_key,
                   run_jobs)
from .sweeps import run_seed_sweep

__all__ = [
    "Job", "JobOutcome", "JobFailure",
    "run_jobs", "execute_jobs", "merge_by_key", "run_seed_sweep",
    "WHERE_SERIAL", "WHERE_POOL", "WHERE_FALLBACK",
]
