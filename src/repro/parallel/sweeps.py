"""Multi-seed sweeps over one scenario, fanned out with the job runner.

One simulated session is one draw from the model; honest claims rest on
several seeds.  :func:`run_seed_sweep` runs a scenario once per seed —
in-process when ``jobs=1``, across worker processes otherwise — and
returns the per-seed headline metrics **in seed order**, identical for
every ``jobs`` value (each session is seeded only by its own seed, so
completion order cannot leak into the output).

Heavy imports (scenario, analysis) happen lazily inside the functions:
this module sits below ``repro.workload``/``repro.analysis`` in the
import graph so the campaign can use the job runner without a cycle.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..obs import Instrumentation
from .jobs import Job, run_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.aggregate import SessionMetrics
    from ..workload.scenario import ScenarioConfig


def _seed_session_job(config: "ScenarioConfig", seed: int,
                      probe_name: Optional[str]) -> "SessionMetrics":
    """Worker entry point: one seeded session -> headline metrics.

    Only the (picklable) metrics cross back over the process boundary;
    the full :class:`SessionResult` never leaves the worker.
    """
    from ..analysis.aggregate import session_metrics
    from ..workload.scenario import SessionScenario
    seeded = dataclasses.replace(config, seed=seed)
    return session_metrics(SessionScenario(seeded).run(), probe_name)


def run_seed_sweep(config: "ScenarioConfig", seeds: Sequence[int], *,
                   jobs: int = 1, probe_name: Optional[str] = None,
                   timeout: Optional[float] = None, retries: int = 1,
                   obs: Optional[Instrumentation] = None
                   ) -> List["SessionMetrics"]:
    """Run ``config`` once per seed; metrics in ``seeds`` order."""
    if not seeds:
        raise ValueError("need at least one seed")
    if jobs <= 1:
        return [_seed_session_job(config, seed, probe_name)
                for seed in seeds]
    # Workers must not inherit the caller's instrumentation bundle
    # (open sinks do not pickle; metrics belong to the parent).
    worker_config = dataclasses.replace(config, instrumentation=None)
    job_list = [Job(key=(index, seed), fn=_seed_session_job,
                    args=(worker_config, seed, probe_name))
                for index, seed in enumerate(seeds)]
    merged = run_jobs(job_list, workers=jobs, timeout=timeout,
                      retries=retries, obs=obs)
    return list(merged.values())
