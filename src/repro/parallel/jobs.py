"""Deterministic fan-out of independent simulation jobs.

The campaign, the multi-seed sweeps and the ablation grids all share one
shape: N completely independent simulation units whose RNG streams are
derived from their own keys, so they can run in any order — or in
parallel processes — and still must produce byte-identical merged
results.  :func:`run_jobs` is that execution layer:

* ``workers=1`` (the default) runs every job in-process, in input
  order — the exact code path a plain serial loop would take;
* ``workers>1`` fans jobs out to a :class:`ProcessPoolExecutor`, with a
  per-job timeout, a bounded number of pool retry rounds after worker
  crashes, and a final in-process fallback for anything the pool could
  not finish — so a poisoned job degrades throughput, never correctness;
* results are merged **by job key, never by completion order**
  (:func:`merge_by_key`), which is the entire determinism contract:
  because each job seeds itself from its key, ordering is the only
  hazard parallelism introduces.

Worker processes never see the caller's :class:`Instrumentation`
bundle (it is not picklable and must not be shared); instead the parent
records per-job wall-clock and queue-wait metrics under the
``parallel.*`` namespace after each job completes.
"""

from __future__ import annotations

import concurrent.futures
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Hashable, List, Mapping,
                    Optional, Sequence, Tuple)

from ..obs import INFO, Instrumentation
from ..obs import resolve as resolve_obs

#: Where a job's successful attempt actually executed.
WHERE_SERIAL = "serial"      # workers=1 (or an empty pool request)
WHERE_POOL = "pool"          # in a ProcessPoolExecutor worker
WHERE_FALLBACK = "fallback"  # in-process, after the pool gave up


@dataclass(frozen=True)
class Job:
    """One independent unit of work.

    ``fn`` must be a module-level callable and ``args``/``kwargs``
    picklable, so the job can cross a process boundary.  ``key``
    identifies the job in the merged output and must be unique within
    one :func:`run_jobs` call.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class JobOutcome:
    """Execution record of one finished job (value + observability)."""

    key: Hashable
    value: Any
    #: Total attempts, pool rounds and the final fallback included.
    attempts: int
    #: Seconds spent inside the successful execution of ``fn``.
    wall_clock: float
    #: Seconds between submission and execution start (0 when serial).
    queue_wait: float
    #: One of :data:`WHERE_SERIAL` / :data:`WHERE_POOL` /
    #: :data:`WHERE_FALLBACK`.
    where: str


class JobFailure(RuntimeError):
    """A job failed even after retries and the in-process fallback."""

    def __init__(self, key: Hashable, cause: BaseException) -> None:
        super().__init__(f"job {key!r} failed: {cause!r}")
        self.key = key
        self.cause = cause


def merge_by_key(keys: Sequence[Hashable],
                 results: Mapping[Hashable, Any]) -> "OrderedDict":
    """Merge job results deterministically, by key, in ``keys`` order.

    ``results`` may have been populated in *any* completion order; the
    output depends only on ``keys``.  Raises ``KeyError`` when a result
    is missing and ``ValueError`` on duplicate or unknown keys.
    """
    merged: "OrderedDict" = OrderedDict()
    for key in keys:
        if key in merged:
            raise ValueError(f"duplicate job key {key!r}")
        if key not in results:
            raise KeyError(f"no result for job key {key!r}")
        merged[key] = results[key]
    if len(results) != len(merged):
        unknown = set(results) - set(merged)
        raise ValueError(f"results for unknown job keys {sorted(map(repr, unknown))}")
    return merged


# ----------------------------------------------------------------------
# Worker-side entry point
# ----------------------------------------------------------------------
def _invoke(fn: Callable[..., Any], args: Tuple[Any, ...],
            kwargs: Dict[str, Any]) -> Tuple[Any, float, float]:
    """Run ``fn`` in the worker, timing it with the system-wide
    monotonic clock so the parent can compute queue waits."""
    started = time.monotonic()
    value = fn(*args, **kwargs)
    return value, started, time.monotonic()


# ----------------------------------------------------------------------
# Execution paths
# ----------------------------------------------------------------------
def _run_in_process(job: Job, attempts_before: int,
                    where: str) -> JobOutcome:
    started = time.monotonic()
    try:
        value = job.fn(*job.args, **dict(job.kwargs))
    except Exception as exc:
        raise JobFailure(job.key, exc) from exc
    return JobOutcome(key=job.key, value=value,
                      attempts=attempts_before + 1,
                      wall_clock=time.monotonic() - started,
                      queue_wait=0.0, where=where)


def _make_pool(workers: int) -> Optional[concurrent.futures.Executor]:
    """A process pool, or ``None`` when the platform cannot provide one
    (no sem_open, no fork/spawn, resource limits, ...)."""
    try:
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, ValueError):
        return None


def _shutdown(executor: concurrent.futures.Executor,
              timed_out: bool) -> None:
    """Release the pool without blocking on hung workers.

    After a timeout the pool may hold a worker stuck inside a job that
    cannot be cancelled; a plain shutdown would wait on it forever, so
    the worker processes are terminated instead.
    """
    if not timed_out:
        executor.shutdown(wait=True)
        return
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


def _run_pool(jobs: Sequence[Job], workers: int,
              timeout: Optional[float], retries: int,
              obs: Instrumentation) -> Dict[Hashable, JobOutcome]:
    """Pool execution with bounded retry rounds and serial fallback."""
    outcomes: Dict[Hashable, JobOutcome] = {}
    attempts: Dict[Hashable, int] = {job.key: 0 for job in jobs}
    pending: List[Job] = list(jobs)

    for round_index in range(1 + max(0, retries)):
        if not pending:
            break
        if round_index > 0 and obs.enabled:
            obs.metrics.counter("parallel.retry_rounds").inc()
        executor = _make_pool(min(workers, len(pending)))
        if executor is None:
            break  # pool unavailable: everything left runs in-process
        failed: List[Job] = []
        timed_out = False
        try:
            submitted: List[Tuple[Job, concurrent.futures.Future, float]] = []
            try:
                for job in pending:
                    submitted.append((job,
                                      executor.submit(_invoke, job.fn,
                                                      job.args,
                                                      dict(job.kwargs)),
                                      time.monotonic()))
            except (OSError, RuntimeError):
                # Submission itself failed (pool broken mid-build);
                # whatever never got a future retries next round.
                failed.extend(pending[len(submitted):])
            # Collect in submission order: earlier waits overlap the
            # execution of every later job, so ``timeout`` is a per-job
            # ceiling, not a serial budget.
            for job, future, submit_time in submitted:
                attempts[job.key] += 1
                try:
                    value, started, finished = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    timed_out = True
                    future.cancel()
                    failed.append(job)
                    if obs.enabled:
                        obs.metrics.counter("parallel.timeouts").inc()
                except concurrent.futures.process.BrokenProcessPool:
                    failed.append(job)
                    if obs.enabled:
                        obs.metrics.counter("parallel.worker_crashes").inc()
                except concurrent.futures.CancelledError:
                    failed.append(job)
                except Exception:
                    # The job itself raised in the worker; retrying a
                    # deterministic failure is futile in the pool, but
                    # the in-process fallback will surface the real
                    # traceback as a JobFailure.
                    failed.append(job)
                else:
                    outcomes[job.key] = JobOutcome(
                        key=job.key, value=value,
                        attempts=attempts[job.key],
                        wall_clock=finished - started,
                        queue_wait=max(0.0, started - submit_time),
                        where=WHERE_POOL)
        finally:
            _shutdown(executor, timed_out)
        pending = failed

    for job in pending:  # graceful in-process fallback, input order
        outcomes[job.key] = _run_in_process(job, attempts[job.key],
                                            WHERE_FALLBACK)
    return outcomes


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def execute_jobs(jobs: Sequence[Job], *, workers: int = 1,
                 timeout: Optional[float] = None, retries: int = 1,
                 obs: Optional[Instrumentation] = None) -> List[JobOutcome]:
    """Run ``jobs`` and return their outcomes in **input order**.

    ``workers`` is the process count (``1`` = in-process serial path);
    ``timeout`` is a per-job ceiling in seconds (pool mode only);
    ``retries`` bounds the extra pool rounds after worker crashes or
    timeouts before the in-process fallback runs the leftovers.
    """
    jobs = list(jobs)
    keys = [job.key for job in jobs]
    if len(set(keys)) != len(keys):
        raise ValueError("job keys must be unique within one run")
    if not jobs:
        return []
    resolved = resolve_obs(obs)

    if workers <= 1:
        outcomes = {job.key: _run_in_process(job, 0, WHERE_SERIAL)
                    for job in jobs}
    else:
        outcomes = _run_pool(jobs, workers, timeout, retries, resolved)

    ordered = list(merge_by_key(keys, outcomes).values())
    if resolved.enabled:
        _record_metrics(ordered, workers, resolved)
        if resolved.spans.enabled:
            _record_spans(ordered, workers, resolved)
        if resolved.progress_bus is not None:
            _record_progress(ordered, resolved)
    return ordered


def run_jobs(jobs: Sequence[Job], *, workers: int = 1,
             timeout: Optional[float] = None, retries: int = 1,
             obs: Optional[Instrumentation] = None) -> "OrderedDict":
    """Like :func:`execute_jobs` but returns ``{key: value}`` in input
    order — the deterministic merged result most callers want."""
    outcomes = execute_jobs(jobs, workers=workers, timeout=timeout,
                            retries=retries, obs=obs)
    return OrderedDict((outcome.key, outcome.value)
                       for outcome in outcomes)


def _record_metrics(outcomes: Sequence[JobOutcome], workers: int,
                    obs: Instrumentation) -> None:
    """Parent-side accounting: per-job wall clock and queue wait."""
    obs.metrics.gauge("parallel.workers").set(workers)
    wall = obs.metrics.histogram("parallel.job_seconds")
    queue = obs.metrics.histogram("parallel.queue_seconds")
    for outcome in outcomes:
        obs.metrics.counter("parallel.jobs",
                            {"where": outcome.where}).inc()
        extra = outcome.attempts - 1
        if extra:
            obs.metrics.counter("parallel.job_retries").inc(extra)
        wall.observe(outcome.wall_clock)
        queue.observe(outcome.queue_wait)
    if obs.trace.enabled_for(INFO):
        by_where: Dict[str, int] = {}
        for outcome in outcomes:
            by_where[outcome.where] = by_where.get(outcome.where, 0) + 1
        obs.trace.emit(0.0, INFO, "parallel_run",
                       jobs=len(outcomes), workers=workers,
                       **{f"jobs_{where}": count
                          for where, count in sorted(by_where.items())})


def _record_progress(outcomes: Sequence[JobOutcome],
                     obs: Instrumentation) -> None:
    """Parent-side ``job_complete`` records, in merged key order.

    Workers never carry the bus (unpicklable; completion order is
    racy), so like spans these are emitted after the deterministic
    merge — the stream reports *what finished*, not when each worker
    happened to report in.
    """
    bus = obs.progress_bus
    total = len(outcomes)
    for index, outcome in enumerate(outcomes):
        bus.emit("job_complete", key=str(outcome.key),
                 index=index + 1, total=total, where=outcome.where,
                 attempts=outcome.attempts,
                 wall_clock=round(outcome.wall_clock, 3),
                 queue_wait=round(outcome.queue_wait, 3))


def _record_spans(outcomes: Sequence[JobOutcome], workers: int,
                  obs: Instrumentation) -> None:
    """Parent-side job spans, merged deterministically by job key.

    Workers never see the span sink (unpicklable, and worker completion
    order is racy), so the parent materialises one span per job *in
    merged key order* after :func:`merge_by_key`.  Span IDs and
    attributes are therefore identical run-to-run; only the wall-clock
    durations vary, which is exactly the parallel category's job: it
    measures the machine, not the simulation.  Each job is laid on a
    synthetic timeline — queue wait then execution, jobs end-to-end —
    so the fan-out reads as one track in Perfetto.
    """
    run_span = obs.spans.start_span("parallel_run", "parallel", 0.0,
                                    actor="parallel",
                                    jobs=len(outcomes), workers=workers)
    cursor = 0.0
    for outcome in outcomes:
        start = cursor + outcome.queue_wait
        end = start + outcome.wall_clock
        span = obs.spans.start_span(
            "job", "parallel", start, parent=run_span, actor="parallel",
            key=str(outcome.key), where=outcome.where,
            attempts=outcome.attempts,
            queue_wait=round(outcome.queue_wait, 6))
        span.finish(end)
        cursor = end
    run_span.finish(cursor)
