"""The :class:`Instrumentation` bundle threaded through the stack.

One object carries the three observability facets — metrics registry,
trace sink, engine profiler — plus the progress/heartbeat settings, so
components take a single optional ``obs`` argument instead of three.

:func:`resolve` maps ``None`` to the shared :data:`NULL_INSTRUMENTATION`
whose registry hands out no-op instruments and whose sink drops
everything; with it, the instrumented hot paths cost one no-op method
call and the simulator's behaviour (event stream, RNG draws, rendered
output) is bit-for-bit what it was before instrumentation existed —
heartbeat timers and trace emission only happen on enabled bundles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, TextIO

from .live import ProgressBus
from .metrics import NULL_REGISTRY, MetricsRegistry
from .profiler import EngineProfiler
from .spans import NULL_SPAN_SINK, SpanSink
from .trace import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flows import FlowSpec, FlowsWriter


class Instrumentation:
    """Metrics + tracing + profiling for one run (or campaign)."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 trace: Optional[TraceSink] = None,
                 profiler: Optional[EngineProfiler] = None,
                 spans: Optional[SpanSink] = None,
                 progress: bool = False,
                 progress_stream: Optional[TextIO] = None,
                 heartbeat_interval: float = 30.0,
                 progress_bus: Optional[ProgressBus] = None,
                 heartbeat: bool = True,
                 flows: Optional["FlowsWriter"] = None,
                 flows_spec: Optional["FlowSpec"] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else NULL_SINK
        self.spans = spans if spans is not None else NULL_SPAN_SINK
        self.profiler = profiler
        self.progress = progress
        self.progress_stream = progress_stream
        self.heartbeat_interval = heartbeat_interval
        #: Streaming progress.jsonl writer (``--progress-jsonl``);
        #: parent-side only, never shipped to worker processes.
        self.progress_bus = progress_bus
        #: Master switch for heartbeat-sampler installation; benches
        #: turn it off so the profiler can run without the sampler's
        #: timer events changing ``events_executed``.
        self.heartbeat = heartbeat
        #: Flows artifact writer (``--flows``); parent-side only, like
        #: the progress bus.  Workers account flows from the spec alone.
        self.flows = flows
        #: Ledger knobs; runs with a writer inherit its spec.
        self.flows_spec = flows_spec if flows_spec is not None else (
            flows.spec if flows is not None else None)
        self.enabled = True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def null(cls) -> "Instrumentation":
        """The shared disabled bundle (no-op everything)."""
        return NULL_INSTRUMENTATION

    @classmethod
    def full(cls, trace: Optional[TraceSink] = None,
             spans: Optional[SpanSink] = None,
             progress: bool = False) -> "Instrumentation":
        """Everything on: real registry, profiler, optional sinks."""
        return cls(metrics=MetricsRegistry(), trace=trace, spans=spans,
                   profiler=EngineProfiler(), progress=progress)

    # ------------------------------------------------------------------
    # Heartbeat wiring
    # ------------------------------------------------------------------
    @property
    def wants_heartbeat(self) -> bool:
        """Whether a scenario should install a heartbeat sampler."""
        return (self.enabled and self.heartbeat
                and (self.progress or self.profiler is not None
                     or self.trace is not NULL_SINK
                     or self.progress_bus is not None))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Fold profiler results into the metrics registry."""
        if self.profiler is not None:
            self.profiler.export_into(self.metrics)

    def close(self) -> None:
        self.trace.close()
        self.spans.close()
        if self.progress_bus is not None:
            self.progress_bus.close()
        if self.flows is not None:
            self.flows.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (f"<Instrumentation {state} series={len(self.metrics)} "
                f"profiler={'on' if self.profiler else 'off'}>")


class _NullInstrumentation(Instrumentation):
    """The disabled bundle; everything it hands out is a no-op."""

    def __init__(self) -> None:
        super().__init__(metrics=NULL_REGISTRY, trace=NULL_SINK,
                         spans=NULL_SPAN_SINK, profiler=None,
                         progress=False)
        self.enabled = False

    def finalize(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_INSTRUMENTATION = _NullInstrumentation()


def resolve(obs: Optional[Instrumentation]) -> Instrumentation:
    """Normalise an optional ``obs`` argument to a usable bundle."""
    return obs if obs is not None else NULL_INSTRUMENTATION
