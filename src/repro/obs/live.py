"""Live run telemetry: the streaming progress bus and its readers.

A long campaign used to be a black box until it exited.  The
:class:`ProgressBus` turns every run into an inspectable artifact while
it is still executing: a constant-memory, append-only ``progress.jsonl``
stream of small records — run start, periodic heartbeats, per-day /
per-job completions, and a terminal ``run_summary`` footer that is
written even when the run crashes or is interrupted.

Record shape: one JSON object per line, always with a ``kind`` field and
a ``wall_seconds`` offset from bus creation.  Deterministic simulation
fields (sim time, event counts, per-ISP peer counts, locality results)
live next to machine-measurement fields (wall clock, RSS, events/sec);
:data:`WALL_FIELDS` names the latter so equivalence tests can strip them
(:func:`strip_wall_fields`) before byte comparisons, mirroring
``repro.obs.export.strip_wall_metrics``.

The readers are tail-friendly: :func:`read_progress` tolerates a
partially-written final line, so ``repro status`` / ``repro top`` can be
pointed at a *live* run's artifact mid-write.  :func:`summarize_progress`
folds a record stream into one status dict (state, progress, ETA
extrapolation) and :func:`render_status` formats it for humans — the
two halves behind ``repro status`` and ``repro top``.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from typing import IO, Dict, List, Optional, Union

#: Record kinds emitted by the bus (not exhaustive; the bus accepts any).
KIND_RUN_START = "run_start"
KIND_CAMPAIGN_START = "campaign_start"
KIND_HEARTBEAT = "heartbeat"
KIND_DAY_COMPLETE = "day_complete"
KIND_JOB_COMPLETE = "job_complete"
KIND_RUN_SUMMARY = "run_summary"

#: Fields that measure the machine, not the simulation.  Stripped by
#: :func:`strip_wall_fields` before any run-to-run byte comparison.
WALL_FIELDS = frozenset({
    "wall_seconds", "unix", "rss_bytes", "peak_rss_bytes",
    "events_per_sec", "queue_wait", "wall_clock", "eta_seconds",
})

#: Kinds whose *presence* depends on the execution mode: worker
#: processes carry no bus, so serial runs emit heartbeats where
#: ``--jobs N`` runs emit parent-side job completions instead.  The
#: deterministic cross-mode view drops both.
MODE_DEPENDENT_KINDS = frozenset({KIND_HEARTBEAT, KIND_JOB_COMPLETE})

#: Fields that describe the execution mode, not the workload (a serial
#: run and a ``--jobs 4`` run of the same seed differ here by
#: construction; so does a ``--resume`` run, which replays checkpointed
#: days instead of simulating them).  Stripped alongside
#: :data:`WALL_FIELDS` by :func:`deterministic_records`.
MODE_FIELDS = frozenset({"jobs", "restored", "resumed_units"})


def peak_rss_bytes() -> int:
    """This process's peak RSS in bytes (ru_maxrss, normalised)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to bytes.
    return usage * 1024 if sys.platform != "darwin" else usage


class ProgressBus:
    """Append-only JSONL heartbeat stream for one run.

    Constant memory: every record is serialised and flushed as it is
    emitted, nothing is buffered, so a month-scale campaign costs the
    same RSS as a smoke run.  The bus is *parent-side only* — it is
    never pickled into worker processes; ``--jobs N`` runs get their
    per-job records emitted by the parent after the deterministic
    merge (see :mod:`repro.parallel.jobs`).
    """

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[str] = path_or_file
        else:
            self._file = path_or_file
            self._owns_file = False
            self.path = getattr(path_or_file, "name", None)
        self._started = time.perf_counter()
        self.records_written = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Append one record; ``wall_seconds`` is added automatically."""
        if self._closed:
            return
        record = {"kind": kind}
        record.update(fields)
        record["wall_seconds"] = round(
            time.perf_counter() - self._started, 3)
        self._file.write(json.dumps(record, default=str,
                                    separators=(",", ":")) + "\n")
        self._file.flush()
        self.records_written += 1

    def run_start(self, **fields) -> None:
        """The opening record; carries the absolute ``unix`` time so a
        reader can compute staleness of later offset-stamped records."""
        self.emit(KIND_RUN_START, unix=round(time.time(), 3), **fields)

    def heartbeat(self, **fields) -> None:
        self.emit(KIND_HEARTBEAT, **fields)

    def run_summary(self, status: str, **fields) -> None:
        """The terminal footer (also on crash/KeyboardInterrupt)."""
        self.emit(KIND_RUN_SUMMARY, status=status,
                  peak_rss_bytes=peak_rss_bytes(), **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "ProgressBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading (live- and finished-run tolerant)
# ----------------------------------------------------------------------
def read_progress(path_or_file: Union[str, IO[str]], *,
                  with_tail: bool = False):
    """Parse a progress JSONL stream into record dicts.

    Tolerates a partially-written final line (a live run flushing
    mid-record): the torn tail is dropped from the records.  Any
    *earlier* malformed line still raises — that is corruption, not
    liveness.  A line that parses but is not a JSON object counts as
    malformed too (every record in these streams is an object).

    With ``with_tail=True`` returns ``(records, tail)`` where ``tail``
    is the dropped torn text (``""`` if the file ended cleanly) — the
    readers use it to distinguish "no records yet" from "nothing but a
    torn fragment", which deserve different exit codes.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = path_or_file.read().splitlines()
    records: List[dict] = []
    tail = ""
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(
                    f"line {index + 1} is not a JSON object: {line[:80]!r}")
        except ValueError:
            if index == len(lines) - 1:
                tail = line  # torn tail of a live run
                break
            raise
        records.append(record)
    if with_tail:
        return records, tail
    return records


def strip_wall_fields(record: dict) -> dict:
    """The record without its machine-measurement fields."""
    return {key: value for key, value in record.items()
            if key not in WALL_FIELDS}


def deterministic_records(records: List[dict]) -> List[dict]:
    """The mode-independent, seed-deterministic view of a stream.

    Two runs of the same workload — serial vs ``--jobs N``, telemetry
    on different machines — must agree exactly on this projection:
    mode-dependent kinds are dropped (workers carry no bus, so
    heartbeats and job records differ by construction) and wall-clock
    fields are stripped from the rest.
    """
    dropped = WALL_FIELDS | MODE_FIELDS
    return [{key: value for key, value in record.items()
             if key not in dropped}
            for record in records
            if record.get("kind") not in MODE_DEPENDENT_KINDS]


# ----------------------------------------------------------------------
# Status model
# ----------------------------------------------------------------------
def _last_of(records: List[dict], kind: str) -> Optional[dict]:
    for record in reversed(records):
        if record.get("kind") == kind:
            return record
    return None


def summarize_progress(records: List[dict],
                       now_unix: Optional[float] = None) -> dict:
    """Fold a progress stream into one status dict.

    Handles every lifecycle stage: an empty file (run just started), a
    mid-flight stream (ETA extrapolated), and a finished stream (the
    ``run_summary`` footer wins).  ``now_unix`` (default: current time)
    is used only for staleness of the last record.
    """
    summary: dict = {"state": "empty", "records": len(records)}
    if not records:
        return summary
    summary["state"] = "running"

    start = _last_of(records, KIND_RUN_START)
    if start is not None:
        for key in ("experiment", "scale", "seed", "jobs"):
            if key in start:
                summary[key] = start[key]

    last = records[-1]
    elapsed = last.get("wall_seconds")
    summary["elapsed_wall_seconds"] = elapsed
    if start is not None and "unix" in start and elapsed is not None:
        now_unix = time.time() if now_unix is None else now_unix
        age = now_unix - (start["unix"] + elapsed)
        summary["last_record_age_seconds"] = round(max(0.0, age), 1)

    beat = _last_of(records, KIND_HEARTBEAT)
    if beat is not None:
        summary["sim_time"] = beat.get("t")
        summary["sim_end"] = beat.get("sim_end")
        summary["events_executed"] = beat.get("events_executed")
        summary["events_per_sec"] = beat.get("events_per_sec")
        summary["rss_bytes"] = beat.get("rss_bytes")
        if beat.get("peers_by_isp"):
            summary["peers_by_isp"] = beat["peers_by_isp"]
        if "viewers" in beat:
            summary["viewers"] = beat["viewers"]
        if "faults_active" in beat:
            summary["faults_active"] = beat["faults_active"]
        if beat.get("flows"):
            summary["flows"] = beat["flows"]

    campaign = _last_of(records, KIND_CAMPAIGN_START)
    days_done = [r for r in records if r.get("kind") == KIND_DAY_COMPLETE]
    jobs_done = [r for r in records if r.get("kind") == KIND_JOB_COMPLETE]
    if campaign is not None:
        total = campaign.get("total_units")
        done = max(len(days_done), len(jobs_done))
        summary["campaign"] = {
            "days": campaign.get("days"),
            "units_total": total,
            "units_done": done,
        }
        restored = sum(1 for r in days_done if r.get("restored"))
        if restored:
            summary["campaign"]["units_restored"] = restored
        if days_done:
            latest = days_done[-1]
            summary["campaign"]["last_day"] = {
                "day": latest.get("day"),
                "popularity": latest.get("popularity"),
                "locality_by_isp": latest.get("locality_by_isp"),
            }

    footer = _last_of(records, KIND_RUN_SUMMARY)
    if footer is not None:
        summary["state"] = "finished" if footer.get("status") == "ok" \
            else footer.get("status", "finished")
        summary["status"] = footer.get("status")
        summary["run_summary"] = strip_wall_fields(footer)
        summary["peak_rss_bytes"] = footer.get("peak_rss_bytes")
        if "events_executed" in footer:
            summary["events_executed"] = footer["events_executed"]
    else:
        summary["eta_seconds"] = _extrapolate_eta(
            summary, campaign, days_done or jobs_done, beat)
    return summary


def _extrapolate_eta(summary: dict, campaign: Optional[dict],
                     units_done: List[dict],
                     beat: Optional[dict]) -> Optional[float]:
    """Remaining wall-clock estimate for a still-running stream.

    Campaigns extrapolate from completed (program, day) units — the
    units are near-identical simulations, so wall-per-unit is the right
    rate.  Units replayed from a checkpoint (``restored``) complete in
    ~zero wall time and would wreck that rate on a ``--resume`` run, so
    only freshly simulated units contribute to it (they still count as
    progress).  Single sessions extrapolate from sim-time progress
    against the session's known end.
    """
    if campaign is not None and units_done:
        total = campaign.get("total_units")
        done = len(units_done)
        if not total or done <= 0 or done >= total:
            return None
        fresh = [r for r in units_done if not r.get("restored")]
        if not fresh:
            return None  # only checkpoint replays so far: no rate signal
        last_wall = fresh[-1].get("wall_seconds")
        if last_wall is None:
            return None
        first_index = units_done.index(fresh[0])
        if first_index > 0:
            base_wall = units_done[first_index - 1].get(
                "wall_seconds") or 0.0
        else:
            base_wall = campaign.get("wall_seconds", 0.0)
        per_unit = (last_wall - base_wall) / len(fresh)
        return round(max(0.0, per_unit * (total - done)), 1)
    if beat is not None:
        t_sim = beat.get("t")
        sim_end = beat.get("sim_end")
        wall = beat.get("wall_seconds")
        if t_sim and sim_end and wall and t_sim > 0 and sim_end > t_sim:
            rate = t_sim / wall  # sim seconds per wall second
            if rate > 0:
                return round((sim_end - t_sim) / rate, 1)
    return None


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_bytes(value: Optional[float]) -> str:
    if not value:
        return "?"
    return f"{value / (1024 * 1024):.0f} MiB"


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_status(summary: dict, source: str = "") -> str:
    """Human-readable one-shot status report (``repro status``)."""
    if summary.get("state") == "empty":
        return f"{source or 'progress stream'}: no records yet"
    head = [f"state={summary['state']}"]
    for key in ("experiment", "scale", "seed", "jobs"):
        if key in summary:
            head.append(f"{key}={summary[key]}")
    lines = []
    if source:
        lines.append(f"run: {source}")
    lines.append("  " + " ".join(head))

    elapsed = summary.get("elapsed_wall_seconds")
    clock = [f"elapsed {_fmt_duration(elapsed)}"]
    age = summary.get("last_record_age_seconds")
    if age is not None:
        clock.append(f"last record {age:.1f}s ago")
    if summary.get("eta_seconds") is not None:
        clock.append(f"ETA ~{_fmt_duration(summary['eta_seconds'])}")
    lines.append("  " + " · ".join(clock))

    if summary.get("sim_time") is not None:
        sim = f"sim t={summary['sim_time']:.0f}s"
        if summary.get("sim_end"):
            pct = 100.0 * summary["sim_time"] / summary["sim_end"]
            sim += f" / {summary['sim_end']:.0f}s ({pct:.0f}%)"
        lines.append("  " + sim)

    engine = []
    if summary.get("events_executed") is not None:
        engine.append(f"events {summary['events_executed']:,}")
    if summary.get("events_per_sec"):
        engine.append(f"{summary['events_per_sec'] / 1000.0:.1f}k ev/s")
    rss = summary.get("peak_rss_bytes") or summary.get("rss_bytes")
    if rss:
        engine.append(f"RSS {_fmt_bytes(rss)}")
    if engine:
        lines.append("  " + " · ".join(engine))

    swarm = []
    if summary.get("viewers") is not None:
        swarm.append(f"viewers {summary['viewers']}")
    if summary.get("peers_by_isp"):
        peers = " ".join(f"{isp}={count}" for isp, count
                         in sorted(summary["peers_by_isp"].items()))
        swarm.append(f"peers {peers}")
    faults = summary.get("faults_active")
    swarm.append(f"faults {'none' if not faults else faults}")
    if swarm:
        lines.append("  " + " · ".join(swarm))

    flows = summary.get("flows")
    if flows:
        traffic = []
        if flows.get("intra_share") is not None:
            traffic.append(f"intra {100.0 * flows['intra_share']:.1f}%")
        if flows.get("transit_bytes") is not None:
            traffic.append(f"transit {flows['transit_bytes']:,} B")
        if flows.get("transit_bps") is not None:
            traffic.append(
                f"{flows['transit_bps'] / 1000.0:.1f} kbit/s transit")
        if traffic:
            lines.append("  traffic " + " · ".join(traffic))

    campaign = summary.get("campaign")
    if campaign:
        done, total = campaign.get("units_done"), campaign.get("units_total")
        line = f"campaign {done}/{total} day-programs complete"
        last = campaign.get("last_day")
        if last and last.get("locality_by_isp"):
            locality = " ".join(
                f"{isp}={value:.1f}%" for isp, value
                in sorted(last["locality_by_isp"].items()))
            line += (f" · day {last.get('day')} ({last.get('popularity')}) "
                     f"{locality}")
        lines.append("  " + line)

    footer = summary.get("run_summary")
    if footer:
        detail = " ".join(f"{key}={value}" for key, value
                          in sorted(footer.items()) if key != "kind")
        lines.append(f"  summary: {detail}")
    return "\n".join(lines)
