"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the simulator's Prometheus-style accounting surface.
Call sites *bind* their instruments once (usually in a constructor) and
then update them on the hot path::

    sent = registry.counter("net.datagrams_sent")
    ...
    sent.inc()

Instruments are memoised per ``(name, tags)`` series, so two components
binding the same series share one underlying value — e.g. every peer in
``ChinaTelecom`` increments the same ``proto.gossip_rounds{isp=...}``
counter.  Iteration and :meth:`MetricsRegistry.snapshot` are
deterministic (sorted by name, then tags) so that two runs with the same
seed produce byte-identical dumps.

The :class:`NullRegistry` hands out shared no-op instruments; it is the
default everywhere, which keeps the un-instrumented hot path at the cost
of one no-op method call.

A tag-cardinality guard protects long campaigns from unbounded series
growth (e.g. a tag accidentally keyed by peer address): once a name
exceeds ``max_series_per_name`` distinct tag sets, further updates are
folded into a single ``{"overflow": "true"}`` series instead of
allocating new ones.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds) — spans sub-ms event
#: handling up to multi-second queueing delays.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

TagMap = Optional[Dict[str, str]]
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_OVERFLOW_TAGS = {"overflow": "true"}


def _tag_key(tags: TagMap) -> Tuple[Tuple[str, str], ...]:
    if not tags:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "tags", "value")
    kind = "counter"

    def __init__(self, name: str, tags: TagMap = None) -> None:
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_record(self) -> dict:
        return {"name": self.name, "type": self.kind, "tags": self.tags,
                "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{self.tags or ''} = {self.value}>"


class Gauge:
    """A value that can move in both directions (set or adjusted)."""

    __slots__ = ("name", "tags", "value")
    kind = "gauge"

    def __init__(self, name: str, tags: TagMap = None) -> None:
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def adjust(self, delta: float) -> None:
        self.value += delta

    def to_record(self) -> dict:
        return {"name": self.name, "type": self.kind, "tags": self.tags,
                "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{self.tags or ''} = {self.value}>"


class Histogram:
    """Fixed-bucket histogram (cumulative export, Prometheus-style).

    ``bounds`` are the inclusive upper bounds of each bucket; one extra
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "tags", "bounds", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                 tags: TagMap = None) -> None:
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} bounds must be sorted")
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def to_record(self) -> dict:
        return {"name": self.name, "type": self.kind, "tags": self.tags,
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count, "sum": self.sum}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name}{self.tags or ''} "
                f"n={self.count} sum={self.sum:.6f}>")


class CounterFamily:
    """Pre-resolved counter handles for one name, keyed by one tag value.

    Hot paths that increment ``name{tag_key=<value>}`` with a varying
    value (e.g. ``net.messages_sent{type=...}``) bind a family once and
    call :meth:`labeled` per update — a single dict hit instead of a tag
    normalisation + series lookup per call.  The handles come from the
    owning registry, so they are the same objects a direct
    :meth:`MetricsRegistry.counter` call would return and export
    identically.
    """

    __slots__ = ("_registry", "_name", "_tag_key", "_handles")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 tag_key: str) -> None:
        self._registry = registry
        self._name = name
        self._tag_key = tag_key
        self._handles: Dict[str, Counter] = {}

    def labeled(self, value: str) -> Counter:
        handle = self._handles.get(value)
        if handle is None:
            handle = self._registry.counter(self._name,
                                            {self._tag_key: value})
            self._handles[value] = handle
        return handle


class GaugeFamily:
    """Pre-resolved gauge handles; see :class:`CounterFamily`."""

    __slots__ = ("_registry", "_name", "_tag_key", "_handles")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 tag_key: str) -> None:
        self._registry = registry
        self._name = name
        self._tag_key = tag_key
        self._handles: Dict[str, Gauge] = {}

    def labeled(self, value: str) -> Gauge:
        handle = self._handles.get(value)
        if handle is None:
            handle = self._registry.gauge(self._name,
                                          {self._tag_key: value})
            self._handles[value] = handle
        return handle


class MetricsRegistry:
    """Holds every metric series, memoised per ``(name, tags)``."""

    #: Reports are deterministic, so instrument objects can be compared
    #: by identity: the same series is always the same object.
    def __init__(self, max_series_per_name: int = 512) -> None:
        if max_series_per_name < 1:
            raise ValueError("max_series_per_name must be >= 1")
        self.max_series_per_name = max_series_per_name
        self._series: Dict[_SeriesKey, object] = {}
        self._per_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def counter(self, name: str, tags: TagMap = None) -> Counter:
        return self._bind(Counter, name, tags)

    def gauge(self, name: str, tags: TagMap = None) -> Gauge:
        return self._bind(Gauge, name, tags)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  tags: TagMap = None) -> Histogram:
        return self._bind(Histogram, name, tags, bounds=bounds)

    def counter_family(self, name: str, tag_key: str) -> CounterFamily:
        """Bind a :class:`CounterFamily` over one varying tag."""
        return CounterFamily(self, name, tag_key)

    def gauge_family(self, name: str, tag_key: str) -> GaugeFamily:
        """Bind a :class:`GaugeFamily` over one varying tag."""
        return GaugeFamily(self, name, tag_key)

    def _bind(self, cls, name: str, tags: TagMap, **kwargs):
        key = (name, _tag_key(tags))
        metric = self._series.get(key)
        if metric is None:
            if self._per_name.get(name, 0) >= self.max_series_per_name:
                # Cardinality guard: fold runaway tag sets into one
                # overflow series rather than growing without bound.
                return self._bind(cls, name, _OVERFLOW_TAGS, **kwargs) \
                    if tags != _OVERFLOW_TAGS else self._overflow(cls, name,
                                                                  **kwargs)
            metric = cls(name, tags=tags, **kwargs)
            self._series[key] = metric
            self._per_name[name] = self._per_name.get(name, 0) + 1
        if type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} {dict(_tag_key(tags))} already registered "
                f"as {metric.kind}, requested {cls.kind}")
        return metric

    def _overflow(self, cls, name: str, **kwargs):
        # The guard tripped *and* the overflow series itself would exceed
        # the limit (max_series_per_name hit by untagged series): force it.
        key = (name, _tag_key(_OVERFLOW_TAGS))
        metric = self._series.get(key)
        if metric is None:
            metric = cls(name, tags=_OVERFLOW_TAGS, **kwargs)
            self._series[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[object]:
        """Deterministic iteration: sorted by (name, tag items)."""
        for key in sorted(self._series):
            yield self._series[key]

    def get(self, name: str, tags: TagMap = None) -> Optional[object]:
        return self._series.get((name, _tag_key(tags)))

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def snapshot(self) -> List[dict]:
        """All series as plain dict records, in deterministic order."""
        return [metric.to_record() for metric in self]

    def clear(self) -> None:
        self._series.clear()
        self._per_name.clear()


# ----------------------------------------------------------------------
# No-op instruments: the default, zero-overhead path
# ----------------------------------------------------------------------
class NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def adjust(self, delta: float) -> None:
        pass


class NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter("null")
NULL_GAUGE = NullGauge("null")
NULL_HISTOGRAM = NullHistogram("null")


class NullCounterFamily(CounterFamily):
    """Allocation-free family: every label resolves to the shared no-op."""

    __slots__ = ()

    def __init__(self) -> None:  # no registry needed
        pass

    def labeled(self, value: str) -> Counter:
        return NULL_COUNTER


class NullGaugeFamily(GaugeFamily):
    __slots__ = ()

    def __init__(self) -> None:
        pass

    def labeled(self, value: str) -> Gauge:
        return NULL_GAUGE


NULL_COUNTER_FAMILY = NullCounterFamily()
NULL_GAUGE_FAMILY = NullGaugeFamily()


class NullRegistry(MetricsRegistry):
    """Hands out shared no-op instruments and records nothing."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, tags: TagMap = None) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, tags: TagMap = None) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  tags: TagMap = None) -> Histogram:
        return NULL_HISTOGRAM

    def counter_family(self, name: str, tag_key: str) -> CounterFamily:
        return NULL_COUNTER_FAMILY

    def gauge_family(self, name: str, tag_key: str) -> GaugeFamily:
        return NULL_GAUGE_FAMILY


NULL_REGISTRY = NullRegistry()
