"""Observability (S-obs): metrics, structured tracing, engine profiling.

The paper is a measurement study; this package is the simulator's own
measurement substrate.  Three facets, bundled by
:class:`Instrumentation` and disabled (no-op, zero-overhead) by default:

* :mod:`repro.obs.metrics` — counters/gauges/histograms, taggable,
  deterministic export (:mod:`repro.obs.export` does JSONL/CSV),
* :mod:`repro.obs.trace` — structured, levelled trace records streamed
  to JSONL / ring buffer / stdlib logging,
* :mod:`repro.obs.profiler` — per-event-label wall-clock accounting in
  the engine plus the periodic heartbeat sampler for long campaigns,
* :mod:`repro.obs.spans` — causal transaction spans (trace/parent IDs,
  status, flat attributes) with JSONL and Chrome-trace (Perfetto)
  exporters; the simulator-side analogue of the paper's
  transaction-matching methodology,
* :mod:`repro.obs.live` — the streaming progress bus: constant-memory
  ``progress.jsonl`` heartbeats plus the status/ETA readers behind
  ``repro status`` / ``repro top``,
* :mod:`repro.obs.flows` — the streaming traffic-flow ledger: ISP×ISP
  traffic matrices, tumbling-window locality time-series and a top-k
  peer-pair sketch behind ``--flows`` / ``repro flows``,
* :mod:`repro.obs.attribution` — per-subsystem wall-time buckets
  (transport / protocol / playback / faults / engine dispatch / ...)
  derived from the profiler, embedded in the ``BENCH_*.json`` perf
  artifacts and diffed by ``repro bench --diff``.

See ``docs/OBSERVABILITY.md`` for the metric catalog, trace schema and
span model.
"""

from .attribution import (LABEL_SUBSYSTEMS, SUBSYSTEMS, build_attribution,
                          render_attribution, subsystem_of)
from .export import (metrics_to_records, read_metrics_csv,
                     read_metrics_jsonl, strip_wall_metrics,
                     write_metrics_csv, write_metrics_jsonl)
from .flows import (FLOWS_VERSION, FlowLedger, FlowSpec, FlowsWriter,
                    SpaceSavingSketch, flows_summary_payload, intra_share,
                    merge_flow_payloads, read_flows, render_flow_matrix,
                    render_flow_summary, render_flow_top,
                    render_flow_windows, summarize_flows, transit_share,
                    validate_flow_payload)
from .instrument import NULL_INSTRUMENTATION, Instrumentation, resolve
from .live import (WALL_FIELDS, ProgressBus, deterministic_records,
                   peak_rss_bytes, read_progress, render_status,
                   strip_wall_fields, summarize_progress)
from .metrics import (DEFAULT_BUCKETS, NULL_COUNTER_FAMILY,
                      NULL_GAUGE_FAMILY, NULL_REGISTRY, Counter,
                      CounterFamily, Gauge, GaugeFamily, Histogram,
                      MetricsRegistry, NullRegistry)
from .profiler import EngineProfiler, EngineSample, HeartbeatSampler
from .spans import (NULL_SPAN, NULL_SPAN_SINK, ChromeTraceSink,
                    JsonlSpanSink, MemorySpanSink, NullSpanSink, Span,
                    SpanSink, TeeSpanSink, read_chrome_trace,
                    read_spans_jsonl, span_categories,
                    validate_chrome_trace)
from .trace import (DEBUG, ERROR, INFO, NULL_SINK, WARNING, JsonlSink,
                    LoggingSink, NullSink, RingSink, TeeSink, TraceSink,
                    level_from_name, read_trace_jsonl)

__all__ = [
    "Instrumentation", "NULL_INSTRUMENTATION", "resolve",
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "CounterFamily", "GaugeFamily",
    "NULL_COUNTER_FAMILY", "NULL_GAUGE_FAMILY",
    "TraceSink", "NullSink", "NULL_SINK", "JsonlSink", "RingSink",
    "LoggingSink", "TeeSink", "level_from_name", "read_trace_jsonl",
    "DEBUG", "INFO", "WARNING", "ERROR",
    "Span", "SpanSink", "NullSpanSink", "NULL_SPAN_SINK", "NULL_SPAN",
    "MemorySpanSink", "JsonlSpanSink", "ChromeTraceSink", "TeeSpanSink",
    "read_spans_jsonl", "read_chrome_trace", "validate_chrome_trace",
    "span_categories",
    "EngineProfiler", "EngineSample", "HeartbeatSampler",
    "ProgressBus", "WALL_FIELDS", "read_progress", "strip_wall_fields",
    "deterministic_records", "summarize_progress", "render_status",
    "peak_rss_bytes",
    "FlowLedger", "FlowSpec", "FlowsWriter", "FLOWS_VERSION",
    "SpaceSavingSketch", "merge_flow_payloads", "validate_flow_payload",
    "read_flows", "summarize_flows", "flows_summary_payload",
    "intra_share", "transit_share",
    "render_flow_summary", "render_flow_matrix", "render_flow_windows",
    "render_flow_top",
    "SUBSYSTEMS", "LABEL_SUBSYSTEMS", "subsystem_of",
    "build_attribution", "render_attribution",
    "metrics_to_records", "strip_wall_metrics",
    "write_metrics_jsonl", "read_metrics_jsonl",
    "write_metrics_csv", "read_metrics_csv",
]
