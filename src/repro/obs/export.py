"""Metrics export: JSONL and CSV dumps, plus round-trip parsing.

One metric series becomes one record.  The record order is the
registry's deterministic iteration order, so two runs with the same seed
produce byte-identical dumps — *except* for wall-clock profiler series
(names containing ``wall``), which :func:`strip_wall_metrics` removes
before any such comparison.
"""

from __future__ import annotations

import csv
import json
from typing import IO, List, Union

from .metrics import MetricsRegistry

#: Metric-name fragment marking non-deterministic (wall-clock) series.
WALL_MARKER = "wall"

CSV_FIELDS = ("name", "type", "tags", "value", "count", "sum",
              "bounds", "bucket_counts")


def metrics_to_records(registry: MetricsRegistry) -> List[dict]:
    """All series of ``registry`` as plain dicts, deterministic order."""
    return registry.snapshot()


def strip_wall_metrics(records: List[dict]) -> List[dict]:
    """Drop wall-clock series, keeping only seed-deterministic ones."""
    return [r for r in records if WALL_MARKER not in r["name"]]


def _open_for_write(path_or_file: Union[str, IO[str]]):
    if isinstance(path_or_file, str):
        return open(path_or_file, "w", encoding="utf-8", newline=""), True
    return path_or_file, False


def write_metrics_jsonl(registry: MetricsRegistry,
                        path_or_file: Union[str, IO[str]]) -> int:
    """Dump every series as one JSON object per line; returns the count."""
    handle, owns = _open_for_write(path_or_file)
    try:
        records = metrics_to_records(registry)
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":"),
                                    sort_keys=True) + "\n")
        return len(records)
    finally:
        handle.flush()
        if owns:
            handle.close()


def read_metrics_jsonl(path_or_file: Union[str, IO[str]]) -> List[dict]:
    """Parse a JSONL metrics dump back into record dicts."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = path_or_file.readlines()
    return [json.loads(line) for line in lines if line.strip()]


def write_metrics_csv(registry: MetricsRegistry,
                      path_or_file: Union[str, IO[str]]) -> int:
    """Dump every series as CSV rows (nested fields JSON-encoded)."""
    handle, owns = _open_for_write(path_or_file)
    try:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        records = metrics_to_records(registry)
        for record in records:
            row = dict(record)
            row["tags"] = json.dumps(row.get("tags", {}), sort_keys=True)
            for key in ("bounds", "bucket_counts"):
                if key in row:
                    row[key] = json.dumps(row[key])
            writer.writerow(row)
        return len(records)
    finally:
        handle.flush()
        if owns:
            handle.close()


def read_metrics_csv(path_or_file: Union[str, IO[str]]) -> List[dict]:
    """Parse a CSV metrics dump back into record dicts."""
    if isinstance(path_or_file, str):
        handle = open(path_or_file, "r", encoding="utf-8", newline="")
        owns = True
    else:
        handle, owns = path_or_file, False
    try:
        records = []
        for row in csv.DictReader(handle):
            record = {"name": row["name"], "type": row["type"],
                      "tags": json.loads(row["tags"] or "{}")}
            if row["type"] == "histogram":
                record["bounds"] = json.loads(row["bounds"])
                record["bucket_counts"] = json.loads(row["bucket_counts"])
                record["count"] = int(row["count"])
                record["sum"] = float(row["sum"])
            else:
                value = float(row["value"])
                record["value"] = int(value) if value.is_integer() else value
            records.append(record)
        return records
    finally:
        if owns:
            handle.close()
