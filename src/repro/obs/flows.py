"""Streaming traffic-flow accounting: the live locality instrument.

The paper's subject is *where streaming bytes flow* — ISP-level traffic
locality, transit vs intra-ISP volume, contribution skew — but the rest
of the observability stack only measures *how fast* a run is going.
This module closes that gap with a constant-memory ledger that attaches
to the transport's flow-sink seam (:meth:`repro.network.transport
.UdpNetwork.set_flow_sink`; the general tap seam works too) and
accounts every *delivered* datagram into:

1. an ISP x ISP x message-kind traffic matrix (bytes and datagrams),
   each cell classified as ``intra`` (same AS), ``transoceanic``
   (crosses an ocean) or ``transit`` (any other inter-ISP path),
2. tumbling-window locality time-series keyed to *simulated* time:
   per-window totals per scope plus per-ISP in/out bytes,
3. a bounded space-saving top-k sketch of directed per-peer-pair flows
   (the live view of the paper's contribution-rank skew).

Everything the ledger stores is derived from simulation state alone —
no wall clock anywhere — so the artifact a run emits is byte-identical
across ``--jobs N``, checkpoint/resume, and telemetry on/off, like
every other deterministic artifact in this repo.

The address -> ISP join goes through the same :class:`AsnDirectory`
lookup the post-hoc analysis pipeline uses (the "Team Cymru" analogue),
which is what makes the ledger's transit-byte share *exactly* equal to
the number ``repro.analysis.locality.transit_byte_share`` computes from
a full delivery trace — asserted on the golden campaign in
``tests/test_flows.py``.

Artifact format (``--flows PATH``): append-only JSONL with sorted keys.
A ``flows_header`` record opens the file, one ``unit_flows`` record per
finished session / campaign (program, day) unit follows, and a
``flows_summary`` footer carries the deterministic merge of every unit.
:func:`read_flows` tolerates a torn final line exactly like the
progress-bus reader, so ``repro flows`` works on a live artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from heapq import heapify, heappop, heappush, heapreplace
from operator import itemgetter
from typing import (IO, Any, Dict, List, Optional, Sequence, Tuple,
                    Union)

from .live import read_progress

#: Sort key for draining pair slots ([bytes, sketch key]) canonically.
_slot_key = itemgetter(1)

#: Artifact schema version (bumped on incompatible format changes).
FLOWS_VERSION = 1

KIND_FLOWS_HEADER = "flows_header"
KIND_UNIT_FLOWS = "unit_flows"
KIND_FLOWS_SUMMARY = "flows_summary"

#: The three traffic scopes, in display order.
SCOPE_INTRA = "intra"
SCOPE_TRANSIT = "transit"
SCOPE_TRANSOCEANIC = "transoceanic"
SCOPES = (SCOPE_INTRA, SCOPE_TRANSIT, SCOPE_TRANSOCEANIC)


@dataclass(frozen=True)
class FlowSpec:
    """Knobs of the flow ledger.

    Frozen and picklable on purpose: the spec rides on scenario and
    campaign configs into worker processes (which carry no
    :class:`Instrumentation`), so ``--jobs N`` workers can account flows
    and ship the snapshots back for the parent's deterministic merge.
    """

    #: Tumbling-window length in simulated seconds.
    window: float = 60.0
    #: Capacity of the space-saving per-peer-pair sketch.
    top_k: int = 32

    def validate(self) -> None:
        if not self.window > 0:
            raise ValueError(f"flow window must be > 0, got {self.window}")
        if self.top_k < 1:
            raise ValueError(f"flow top_k must be >= 1, got {self.top_k}")

    def to_dict(self) -> dict:
        return {"window": float(self.window), "top_k": int(self.top_k)}

    @classmethod
    def from_dict(cls, data: dict) -> "FlowSpec":
        return cls(window=float(data["window"]), top_k=int(data["top_k"]))


# ----------------------------------------------------------------------
# Share helpers (the one formula, used by ledger, analysis cross-check
# and renderers alike, so "exactly equal" means exactly equal)
# ----------------------------------------------------------------------
def intra_share(totals: dict) -> float:
    """Fraction of delivered bytes that stayed inside one AS."""
    total = totals["bytes"]
    if total == 0:
        return 0.0
    return totals["intra_bytes"] / total


def transit_share(totals: dict) -> float:
    """Fraction of delivered bytes that crossed an AS boundary.

    Transoceanic bytes are transit bytes too — the split only refines
    *which* boundary was crossed — so this is ``1 - intra_share`` by
    construction, computed as ``(total - intra) / total`` on exact
    integer byte counts.
    """
    total = totals["bytes"]
    if total == 0:
        return 0.0
    return (total - totals["intra_bytes"]) / total


class SpaceSavingSketch:
    """Deterministic bounded-memory top-k counter (Metwally et al.).

    At most ``capacity`` keys are held.  A new key arriving at capacity
    evicts the current minimum — ties broken by key, never by insertion
    history — and inherits its count as the classic over-estimation
    bound, recorded per entry as ``error``.  With identical input the
    sketch state is a pure function of the multiset of additions, which
    is what the cross-mode byte-identity tests rely on.

    The minimum comes from a lazily-corrected heap (one ``[count, key]``
    entry per held key; an entry goes stale when its key's count grows
    and is re-keyed the next time it surfaces), so the per-datagram
    worst case — every arrival a new key, as when peer pairs rotate far
    faster than ``capacity`` — costs O(log capacity) instead of a full
    O(capacity) min-scan.  The victim is still exactly
    ``min((count, key))``: stale entries only ever under-state a count,
    so the first heap top whose count is current is the true minimum.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: key -> [count, error]
        self._counts: Dict[str, List[int]] = {}
        #: lazy min-heap of [count, key]; exactly one entry per held key
        self._heap: List[list] = []

    def __len__(self) -> int:
        return len(self._counts)

    def add(self, key: str, amount: int) -> None:
        counts = self._counts
        entry = counts.get(key)
        if entry is not None:
            entry[0] += amount  # heap entry goes stale; corrected lazily
            return
        if len(counts) < self.capacity:
            counts[key] = [amount, 0]
            heappush(self._heap, [amount, key])
            return
        heap = self._heap
        while True:
            top = heap[0]
            current = counts.get(top[1])
            if current is not None and current[0] == top[0]:
                break
            heappop(heap)
            if current is not None:
                heappush(heap, [current[0], top[1]])
        victim_count, victim_key = heap[0]
        heapreplace(heap, [victim_count + amount, key])
        del counts[victim_key]
        counts[key] = [victim_count + amount, victim_count]

    def items(self) -> List[List[Any]]:
        """``[key, count, error]`` rows, heaviest first, key-tie-broken."""
        return [[key, entry[0], entry[1]]
                for key, entry in sorted(self._counts.items(),
                                         key=lambda kv: (-kv[1][0], kv[0]))]

    def load_items(self, items: Sequence[Sequence[Any]]) -> None:
        self._counts = {str(key): [int(count), int(error)]
                        for key, count, error in items}
        if len(self._counts) > self.capacity:
            raise ValueError(
                f"sketch state holds {len(self._counts)} keys, over the "
                f"capacity {self.capacity}")
        self._heap = [[entry[0], key]
                      for key, entry in self._counts.items()]
        heapify(self._heap)

    @staticmethod
    def merged_items(capacity: int,
                     item_lists: Sequence[Sequence[Sequence[Any]]]
                     ) -> List[List[Any]]:
        """Union-sum several sketches' rows, keep the heaviest ``capacity``.

        A key the union drops could in principle out-count a survivor
        (both halves small), which is the usual sketch-merge caveat; the
        per-entry ``error`` fields carry through so readers can see the
        bound.  Deterministic: sums over keys, then a (-count, key) sort.
        """
        combined: Dict[str, List[int]] = {}
        for items in item_lists:
            for key, count, error in items:
                entry = combined.get(key)
                if entry is None:
                    combined[key] = [int(count), int(error)]
                else:
                    entry[0] += int(count)
                    entry[1] += int(error)
        rows = sorted(combined.items(), key=lambda kv: (-kv[1][0], kv[0]))
        return [[key, entry[0], entry[1]]
                for key, entry in rows[:capacity]]


class FlowLedger:
    """Constant-memory flow accounting for one session.

    Attach with ``udp.set_flow_sink(ledger.sink)`` (the dedicated
    delivered-datagram seam; ``udp.add_tap(ledger.tap,
    events=("recv",))`` is the general-seam equivalent).  Only
    deliveries are accounted (the same quantity as the transport's
    ``bytes_delivered`` counter, wire bytes = payload + 28-byte
    header).  Memory is bounded by |ISPs|^2 x |message kinds| matrix
    cells, the number of *non-empty* windows, and the sketch capacity —
    never by datagram count.

    The per-datagram path does almost nothing: it bumps a pending
    ``(src, dst, kind) -> [bytes, datagrams]`` accumulator and checks
    one float against the current window's end.  Address resolution,
    scope classification, matrix/totals updates and sketch feeding all
    happen at *fold points* — window rolls, :meth:`finish`,
    :meth:`snapshot_state` — where the pending aggregates are folded.
    Because every folded structure is a sum, the result is identical to
    per-datagram accounting; the sketch sees one deterministic per-fold
    aggregate per peer pair (drained in sorted sketch-key order)
    instead of every datagram, which is both ~1000x fewer additions and
    a strictly better-conditioned input for space-saving top-k.  Fold
    points are pure functions of simulated time and the datagram
    stream, so the artifact stays byte-identical across ``--jobs N``
    and resume.
    """

    __slots__ = (
        "spec", "_window", "_directory", "_catalog", "_header_bytes",
        "_classify", "_intra_class", "_ocean_class", "_isp_cache",
        "_scope_cache", "_pair_cache", "totals", "_matrix", "_windows",
        "_win", "_acc", "_fold_cache", "_pair_slots", "_isp_io",
        "_win_until", "_sketch", "datagrams_ignored", "_adversarial")

    def __init__(self, directory, catalog,
                 spec: Optional[FlowSpec] = None) -> None:
        # Deferred import: repro.network imports repro.obs at module
        # load, so the obs package cannot import network symbols at the
        # top level without an import cycle.
        from ..network.datagram import HEADER_BYTES
        from ..network.latency import PairClass, classify_pair
        self.spec = spec if spec is not None else FlowSpec()
        self.spec.validate()
        self._window = self.spec.window
        self._directory = directory
        self._catalog = catalog
        self._header_bytes = HEADER_BYTES
        self._classify = classify_pair
        self._intra_class = PairClass.INTRA_ISP
        self._ocean_class = PairClass.TRANSOCEANIC
        self._isp_cache: Dict[str, Any] = {}
        self._scope_cache: Dict[Tuple[int, int], str] = {}
        #: (src, dst) -> (src name, dst name, scope, scope index,
        #: sketch key), or None for an unresolvable endpoint.  One dict
        #: hit replaces two address joins, a classification and an
        #: f-string on the per-datagram path.
        self._pair_cache: Dict[Tuple[str, str], Any] = {}
        self.totals: Dict[str, int] = {
            "bytes": 0, "datagrams": 0, "intra_bytes": 0,
            "transit_bytes": 0, "transoceanic_bytes": 0}
        #: Addresses flagged adversarial (fault injection); bytes *sent*
        #: by them are tallied in ``totals["adversarial_bytes"]``.  The
        #: key only materialises once such bytes exist, so clean-run
        #: artifacts are byte-identical to the pre-adversary format.
        self._adversarial: set = set()
        #: (src ISP name, dst ISP name, kind) -> [scope, bytes, datagrams]
        self._matrix: Dict[Tuple[str, str, str], List[Any]] = {}
        self._windows: List[list] = []
        #: Open window in row form: [index, bytes, datagrams, intra,
        #: transit, transoceanic, by_isp dict], or None between windows.
        self._win: Optional[list] = None
        #: Pending (src, dst, kind) -> [bytes, datagrams] aggregates for
        #: the open window — the only thing the hot path writes.  The
        #: kind component is the payload class on the hot paths (name
        #: resolution is deferred to the fold plan) or a plain string
        #: via :meth:`record`.
        self._acc: Dict[Tuple[str, str, Any], List[int]] = {}
        #: (src, dst, kind) -> fold plan (matrix cell, scope index,
        #: per-ISP in/out slots, per-pair sketch slot, intra flag) or
        #: None, so repeat folds of a hot key skip resolution,
        #: classification and every per-visit dict lookup: a fold visit
        #: is list bumps on structures the plan points at directly.
        self._fold_cache: Dict[Tuple[str, str, Any], Any] = {}
        #: (src, dst) -> [pending sketch bytes, sketch key], shared by
        #: every kind's plan for that pair; drained (and zeroed) into
        #: the sketch at the end of each fold.
        self._pair_slots: Dict[Tuple[str, str], list] = {}
        #: ISP name -> [pending in-bytes, pending out-bytes], drained
        #: (and zeroed) into the open window's by-ISP row per fold.
        self._isp_io: Dict[str, list] = {}
        #: Sim time at which the open window ends; anything at or past
        #: it triggers a fold.  Starts in the past so the first datagram
        #: opens a window.
        self._win_until = -1.0
        self._sketch = SpaceSavingSketch(self.spec.top_k)
        #: Datagrams whose endpoints resolved to no AS (none in a
        #: default deployment; counted rather than silently skewed).
        self.datagrams_ignored = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def sink(self, datagram, now: float, wire_bytes: int) -> None:
        """The transport flow-sink: one delivered datagram.

        This is the hot attachment (``udp.set_flow_sink(ledger.sink)``):
        ``_deliver`` already computed ``wire_bytes`` for its own
        counters and passes it straight through, so the per-datagram
        cost is one pending-accumulator bump and a window-boundary
        check.  The accumulator key holds the payload *class* — turning
        it into the kind name is fold-point work, not hot-path work.
        Mirrors :meth:`record` inline rather than calling it — the
        extra call would cost more than the body.
        """
        if now >= self._win_until:
            self._roll(now)
        key = (datagram.src, datagram.dst, datagram.payload.__class__)
        acc = self._acc.get(key)
        if acc is None:
            self._acc[key] = [wire_bytes, 1]
        else:
            acc[0] += wire_bytes
            acc[1] += 1

    def tap(self, event: str, datagram, time: float) -> None:
        """Tap-seam attachment: account delivered datagrams only.

        Equivalent to :meth:`sink` for ``recv`` events; useful when the
        ledger shares the general tap seam with other observers.
        """
        if event != "recv":
            return
        if time >= self._win_until:
            self._roll(time)
        key = (datagram.src, datagram.dst, datagram.payload.__class__)
        acc = self._acc.get(key)
        if acc is None:
            self._acc[key] = [
                datagram.payload_bytes + self._header_bytes, 1]
        else:
            acc[0] += datagram.payload_bytes + self._header_bytes
            acc[1] += 1

    def _isp_of(self, address: str):
        isp = self._isp_cache.get(address, _UNRESOLVED)
        if isp is not _UNRESOLVED:
            return isp
        record = self._directory.lookup(address)
        isp = self._catalog.by_asn(record.asn) if record is not None \
            else None
        self._isp_cache[address] = isp
        return isp

    def _scope_of(self, src_isp, dst_isp) -> str:
        key = (src_isp.asn, dst_isp.asn)
        scope = self._scope_cache.get(key)
        if scope is None:
            pair_class = self._classify(src_isp, dst_isp)
            if pair_class is self._intra_class:
                scope = SCOPE_INTRA
            elif pair_class is self._ocean_class:
                scope = SCOPE_TRANSOCEANIC
            else:
                scope = SCOPE_TRANSIT
            self._scope_cache[key] = scope
        return scope

    def _pair_info(self, src: str, dst: str):
        """Cold path of the pair cache: resolve, classify, build keys."""
        src_isp = self._isp_of(src)
        dst_isp = self._isp_of(dst)
        if src_isp is None or dst_isp is None:
            return None
        scope = self._scope_of(src_isp, dst_isp)
        return (src_isp.name, dst_isp.name, scope, SCOPES.index(scope),
                f"{src}->{dst}")

    def record(self, src: str, dst: str, kind: str, wire_bytes: int,
               time: float) -> None:
        """Account one delivered datagram of ``wire_bytes`` at sim ``time``.

        Only bumps the pending accumulator; totals/matrix/windows/sketch
        reflect it after the next fold point (window roll,
        :meth:`finish` or :meth:`snapshot_state`).
        """
        if time >= self._win_until:
            self._roll(time)
        key = (src, dst, kind)
        acc = self._acc.get(key)
        if acc is None:
            self._acc[key] = [wire_bytes, 1]
        else:
            acc[0] += wire_bytes
            acc[1] += 1

    def _fold_plan(self, key: Tuple[str, str, Any]):
        """Cold path of the fold cache: everything a fold of ``key``
        needs that does not change between folds.

        ``key[2]`` is the payload class when the hot path accumulated
        it (:meth:`sink` / :meth:`tap`) or already a kind string
        (:meth:`record`); either way the matrix cell is keyed by the
        kind *name*, so both spellings fold into the same cell.
        """
        src, dst, kind = key
        if not isinstance(kind, str):
            kind = kind.__name__
        pair = (src, dst)
        info = self._pair_cache.get(pair, _UNRESOLVED)
        if info is _UNRESOLVED:
            info = self._pair_info(src, dst)
            self._pair_cache[pair] = info
        if info is None:
            return None
        src_name, dst_name, scope, scope_idx, flow_key = info
        cell_key = (src_name, dst_name, kind)
        cell = self._matrix.get(cell_key)
        if cell is None:
            cell = [scope, 0, 0]
            self._matrix[cell_key] = cell
        src_io = self._isp_io.get(src_name)
        if src_io is None:
            src_io = self._isp_io[src_name] = [0, 0]
        dst_io = self._isp_io.get(dst_name)
        if dst_io is None:
            dst_io = self._isp_io[dst_name] = [0, 0]
        pair_slot = self._pair_slots.get(pair)
        if pair_slot is None:
            pair_slot = self._pair_slots[pair] = [0, flow_key]
        return (cell, scope_idx, src_io, dst_io, pair_slot,
                src_name == dst_name, src in self._adversarial)

    def _fold_pending(self) -> None:
        """Fold pending aggregates into totals/matrix/window/sketch.

        Every target but the sketch is a sum, so the accumulator can be
        walked in insertion order with the scalar sums batched into one
        update per fold; the sketch — the one order-sensitive structure
        — is fed per-pair aggregates in sorted key order, making its
        state a canonical function of the window's traffic.
        """
        acc = self._acc
        if not acc:
            return
        win = self._win
        fold_cache = self._fold_cache
        touched: List[list] = []
        fold_bytes = fold_datagrams = adversarial_bytes = 0
        scoped = [0, 0, 0]  # intra, transit, transoceanic
        for key, pending in acc.items():
            plan = fold_cache.get(key, _UNRESOLVED)
            if plan is _UNRESOLVED:
                plan = self._fold_plan(key)
                fold_cache[key] = plan
            if plan is None:
                self.datagrams_ignored += pending[1]
                continue
            n_bytes = pending[0]
            cell, scope_idx, src_io, dst_io, pair_slot, same, adv = plan

            if adv:
                adversarial_bytes += n_bytes
            fold_bytes += n_bytes
            fold_datagrams += pending[1]
            scoped[scope_idx] += n_bytes
            cell[1] += n_bytes
            cell[2] += pending[1]

            if same:
                src_io[0] += n_bytes
                src_io[1] += n_bytes
            else:
                src_io[1] += n_bytes
                dst_io[0] += n_bytes

            if not pair_slot[0]:
                touched.append(pair_slot)
            pair_slot[0] += n_bytes

        totals = self.totals
        totals["bytes"] += fold_bytes
        totals["datagrams"] += fold_datagrams
        totals["intra_bytes"] += scoped[0]
        totals["transit_bytes"] += scoped[1]
        totals["transoceanic_bytes"] += scoped[2]
        if adversarial_bytes:
            totals["adversarial_bytes"] = (
                totals.get("adversarial_bytes", 0) + adversarial_bytes)
        win[1] += fold_bytes
        win[2] += fold_datagrams
        win[3] += scoped[0]
        win[4] += scoped[1]
        win[5] += scoped[2]

        # Drain the per-ISP in/out slots into the open window's by-ISP
        # row — at most one entry per ISP, however many pairs folded.
        by_isp = win[6]
        for name, io in self._isp_io.items():
            in_bytes, out_bytes = io
            if in_bytes or out_bytes:
                entry = by_isp.get(name)
                if entry is None:
                    by_isp[name] = [in_bytes, out_bytes]
                else:
                    entry[0] += in_bytes
                    entry[1] += out_bytes
                io[0] = 0
                io[1] = 0

        # Drain the touched pair slots into the sketch in sorted
        # sketch-key order — the canonical feed (slots are unique per
        # pair, so sorting by key is a total order).
        touched.sort(key=_slot_key)
        sketch_add = self._sketch.add
        for slot in touched:
            sketch_add(slot[1], slot[0])
            slot[0] = 0
        acc.clear()

    def _roll(self, now: float) -> None:
        """Close the current window (if any) and open the one at ``now``."""
        if self._win is not None:
            self._fold_pending()
            self._windows.append(self._window_row(self._win))
        index = int(now // self._window)
        self._win = [index, 0, 0, 0, 0, 0, {}]
        self._win_until = (index + 1) * self._window

    @staticmethod
    def _window_row(win: list) -> list:
        """Canonical JSON-safe row: scalars plus a key-sorted ISP map."""
        return win[:6] + [{name: list(in_out)
                           for name, in_out in sorted(win[6].items())}]

    def finish(self, now: float) -> None:
        """Close the open window; call once when the session ends."""
        if self._win is not None:
            self._fold_pending()
            self._windows.append(self._window_row(self._win))
            self._win = None
            self._win_until = -1.0

    # ------------------------------------------------------------------
    # Live views
    # ------------------------------------------------------------------
    def heartbeat_fields(self) -> dict:
        """Small deterministic snapshot folded into heartbeat records.

        Reads pending aggregates as a non-mutating overlay on the folded
        totals: heartbeats land mid-window, and actually folding here
        would make the sketch feed depend on whether a progress bus is
        attached — breaking the telemetry-on/off byte-identity contract.
        """
        total_bytes = self.totals["bytes"]
        intra_bytes = self.totals["intra_bytes"]
        pair_cache = self._pair_cache
        for (src, dst, _kind), (n_bytes, _n_datagrams) \
                in self._acc.items():
            pair = (src, dst)
            info = pair_cache.get(pair, _UNRESOLVED)
            if info is _UNRESOLVED:
                info = self._pair_info(src, dst)
                pair_cache[pair] = info
            if info is None:
                continue
            total_bytes += n_bytes
            if info[2] == SCOPE_INTRA:
                intra_bytes += n_bytes
        share = intra_bytes / total_bytes if total_bytes else 0.0
        fields = {
            "bytes": total_bytes,
            "intra_share": round(share, 4),
            "transit_bytes": total_bytes - intra_bytes,
        }
        reference = self._windows[-1] if self._windows else None
        if reference is not None:
            window_transit = reference[1] - reference[3]
            fields["transit_bps"] = round(
                8.0 * window_transit / self.spec.window, 1)
        return dict(sorted(fields.items()))

    def transit_byte_share(self) -> float:
        """The headline number: share of delivered bytes crossing an AS."""
        return transit_share(self.totals)

    def mark_adversarial(self, address: str) -> None:
        """Tag an address as adversarial: its *sent* bytes count toward
        ``totals["adversarial_bytes"]`` from here on.

        Addresses are marked the moment the fault injector attaches a
        model (at viewer spawn, before any of its datagrams deliver);
        cached fold plans for the address are invalidated anyway, in
        case an address is ever re-marked mid-stream.
        """
        if address in self._adversarial:
            return
        self._adversarial.add(address)
        stale = [key for key in self._fold_cache if key[0] == address]
        for key in stale:
            del self._fold_cache[key]

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpoint seam + artifact payload)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Full-fidelity, JSON-safe state (a JSON round-trip fixed point).

        After :meth:`finish` this doubles as the artifact/unit payload;
        mid-run it is a *fold point* — pending aggregates fold in first,
        the open window rides along — and a restored ledger continues
        byte-identically with a run that folded at the same sim time.
        Campaign checkpoints only ever snapshot finished units, where
        every fold has already happened.
        """
        self._fold_pending()
        totals = dict(sorted(self.totals.items()))
        if not totals.get("adversarial_bytes"):
            # Clean runs keep the pre-adversary payload shape, so golden
            # artifacts and their digests are unchanged.
            totals.pop("adversarial_bytes", None)
        state = {
            "version": FLOWS_VERSION,
            "window": float(self.spec.window),
            "top_k": int(self.spec.top_k),
            "totals": totals,
            "matrix": [[src, dst, kind, cell[0], cell[1], cell[2]]
                       for (src, dst, kind), cell
                       in sorted(self._matrix.items())],
            "windows": [list(row[:6]) + [dict(row[6])]
                        for row in self._windows],
            "top": self._sketch.items(),
            "open_window": (self._window_row(self._win)
                            if self._win is not None else None),
            "datagrams_ignored": self.datagrams_ignored,
        }
        if self._adversarial:
            state["adversarial"] = sorted(self._adversarial)
        return state

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` dict (exact fixed point)."""
        validate_flow_payload(state, self.spec)
        self.totals = {key: int(value)
                       for key, value in state["totals"].items()}
        self._adversarial = set(state.get("adversarial", []))
        self._matrix = {
            (src, dst, kind): [scope, int(n_bytes), int(n_datagrams)]
            for src, dst, kind, scope, n_bytes, n_datagrams
            in state["matrix"]}
        self._windows = [list(row[:6]) + [{name: [int(v) for v in in_out]
                                           for name, in_out
                                           in row[6].items()}]
                         for row in state["windows"]]
        self._sketch = SpaceSavingSketch(self.spec.top_k)
        self._sketch.load_items(state["top"])
        self._acc = {}
        # Plans point at the replaced matrix cells and drained slots;
        # rebuild all three together (slots are always zero post-fold,
        # so this is about object identity, not lost counts).
        self._fold_cache = {}
        self._pair_slots = {}
        self._isp_io = {}
        open_window = state.get("open_window")
        if open_window is None:
            self._win = None
            self._win_until = -1.0
        else:
            self._win = list(open_window[:6]) + [
                {name: [int(v) for v in in_out]
                 for name, in_out in open_window[6].items()}]
            self._win_until = (open_window[0] + 1) * self._window
        self.datagrams_ignored = int(state.get("datagrams_ignored", 0))


#: Sentinel distinguishing "never looked up" from "resolved to None".
_UNRESOLVED = object()


def validate_flow_payload(payload: dict,
                          spec: Optional[FlowSpec] = None) -> None:
    """Raise ``ValueError`` on version/shape/spec mismatches."""
    if not isinstance(payload, dict):
        raise ValueError(f"flow payload must be a dict, got "
                         f"{type(payload).__name__}")
    version = payload.get("version")
    if version != FLOWS_VERSION:
        raise ValueError(f"flow payload version {version!r} is not the "
                         f"supported version {FLOWS_VERSION}")
    for field in ("totals", "matrix", "windows", "top"):
        if field not in payload:
            raise ValueError(f"flow payload is missing {field!r}")
    if spec is not None:
        if (payload.get("window") != spec.window
                or payload.get("top_k") != spec.top_k):
            raise ValueError(
                f"flow payload was recorded with window="
                f"{payload.get('window')} top_k={payload.get('top_k')}, "
                f"but this run uses window={spec.window} "
                f"top_k={spec.top_k}")


def merge_flow_payloads(payloads: Sequence[dict]) -> dict:
    """Deterministic fold of unit payloads into one campaign payload.

    Totals and matrix cells sum; windows merge *by index* (the units
    are same-shaped sessions, so the merged series is the aggregate
    per-window-of-session profile); sketches union-sum and truncate
    back to capacity (see :meth:`SpaceSavingSketch.merged_items`).
    Pure function of the payload multiset — input order never shows.
    """
    if not payloads:
        raise ValueError("cannot merge zero flow payloads")
    first = payloads[0]
    validate_flow_payload(first)
    spec = FlowSpec.from_dict(first)
    totals = {"bytes": 0, "datagrams": 0, "intra_bytes": 0,
              "transit_bytes": 0, "transoceanic_bytes": 0}
    matrix: Dict[Tuple[str, str, str], List[Any]] = {}
    windows: Dict[int, list] = {}
    ignored = 0

    def fold_window(row: list) -> None:
        target = windows.get(row[0])
        if target is None:
            windows[row[0]] = [row[0], row[1], row[2], row[3], row[4],
                               row[5],
                               {name: [int(v) for v in in_out]
                                for name, in_out in row[6].items()}]
            return
        for position in range(1, 6):
            target[position] += row[position]
        by_isp = target[6]
        for name, in_out in row[6].items():
            entry = by_isp.get(name)
            if entry is None:
                by_isp[name] = [int(v) for v in in_out]
            else:
                entry[0] += in_out[0]
                entry[1] += in_out[1]

    for payload in payloads:
        validate_flow_payload(payload, spec)
        for key, value in payload["totals"].items():
            totals[key] = totals.get(key, 0) + int(value)
        for src, dst, kind, scope, n_bytes, n_datagrams \
                in payload["matrix"]:
            cell_key = (src, dst, kind)
            cell = matrix.get(cell_key)
            if cell is None:
                matrix[cell_key] = [scope, int(n_bytes), int(n_datagrams)]
            else:
                if cell[0] != scope:
                    raise ValueError(
                        f"flow payloads disagree on the scope of "
                        f"{cell_key}: {cell[0]!r} vs {scope!r}")
                cell[1] += int(n_bytes)
                cell[2] += int(n_datagrams)
        for row in payload["windows"]:
            fold_window(row)
        if payload.get("open_window") is not None:
            fold_window(payload["open_window"])
        ignored += int(payload.get("datagrams_ignored", 0))

    return {
        "version": FLOWS_VERSION,
        "window": spec.window,
        "top_k": spec.top_k,
        "totals": dict(sorted(totals.items())),
        "matrix": [[src, dst, kind, cell[0], cell[1], cell[2]]
                   for (src, dst, kind), cell in sorted(matrix.items())],
        "windows": [list(windows[index][:6]) +
                    [dict(sorted(windows[index][6].items()))]
                    for index in sorted(windows)],
        "top": SpaceSavingSketch.merged_items(
            spec.top_k, [payload["top"] for payload in payloads]),
        "open_window": None,
        "datagrams_ignored": ignored,
    }


# ----------------------------------------------------------------------
# Artifact writer
# ----------------------------------------------------------------------
class FlowsWriter:
    """Versioned append-only ``flows.jsonl`` artifact for one run.

    Records carry *no* wall-clock fields and are serialised with sorted
    keys, so two runs producing the same flow data produce the same
    bytes — the property the ``--jobs {1,2}`` and resume tests pin.
    The summary footer (deterministic merge of every unit written) lands
    on :meth:`close`, which the CLI drives through its ExitStack — so a
    crashed run still gets a summary over the units it finished.
    """

    def __init__(self, path_or_file: Union[str, IO[str]],
                 spec: Optional[FlowSpec] = None) -> None:
        self.spec = spec if spec is not None else FlowSpec()
        self.spec.validate()
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[str] = path_or_file
        else:
            self._file = path_or_file
            self._owns_file = False
            self.path = getattr(path_or_file, "name", None)
        self._payloads: List[dict] = []
        self._closed = False
        self.records_written = 0
        self._write({"kind": KIND_FLOWS_HEADER, "version": FLOWS_VERSION,
                     **self.spec.to_dict()})

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        self._file.flush()
        self.records_written += 1

    def write_unit(self, unit: dict, payload: dict) -> None:
        """Append one finished unit's flow payload.

        ``unit`` labels it (e.g. ``{"day": 3, "popularity": "popular"}``
        or ``{"session": "tele-popular@small#7"}``).
        """
        if self._closed:
            return
        validate_flow_payload(payload, self.spec)
        self._payloads.append(payload)
        self._write({"kind": KIND_UNIT_FLOWS, "unit": unit,
                     "flows": payload})

    def close(self) -> None:
        if self._closed:
            return
        if self._payloads:
            self._write({"kind": KIND_FLOWS_SUMMARY,
                         "units": len(self._payloads),
                         "flows": merge_flow_payloads(self._payloads)})
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()


# ----------------------------------------------------------------------
# Readers (torn-tail tolerant, like the progress bus)
# ----------------------------------------------------------------------
def read_flows(path_or_file: Union[str, IO[str]], *,
               with_tail: bool = False):
    """Parse a flows JSONL artifact; tolerates a torn final line."""
    return read_progress(path_or_file, with_tail=with_tail)


def flows_summary_payload(records: Sequence[dict]) -> Optional[dict]:
    """The merged payload for a record stream, or ``None`` if no units.

    Recomputed from the unit records rather than trusting the footer,
    so a live (footer-less) artifact summarises identically to the
    finished one — and the footer is verifiable against it.
    """
    payloads = [record["flows"] for record in records
                if record.get("kind") == KIND_UNIT_FLOWS
                and isinstance(record.get("flows"), dict)]
    if not payloads:
        return None
    return merge_flow_payloads(payloads)


def summarize_flows(records: Sequence[dict]) -> dict:
    """Fold a flows record stream into one status dict."""
    summary: dict = {"records": len(records)}
    header = next((record for record in records
                   if record.get("kind") == KIND_FLOWS_HEADER), None)
    if header is not None:
        summary["version"] = header.get("version")
        summary["window"] = header.get("window")
        summary["top_k"] = header.get("top_k")
    units = [record for record in records
             if record.get("kind") == KIND_UNIT_FLOWS]
    summary["units"] = len(units)
    footer = next((record for record in reversed(records)
                   if record.get("kind") == KIND_FLOWS_SUMMARY), None)
    summary["state"] = "finished" if footer is not None else (
        "running" if records else "empty")
    merged = flows_summary_payload(records)
    if merged is not None:
        totals = merged["totals"]
        summary["totals"] = totals
        summary["intra_share"] = intra_share(totals)
        summary["transit_share"] = transit_share(totals)
        summary["transoceanic_bytes"] = totals["transoceanic_bytes"]
        summary["windows"] = len(merged["windows"])
        summary["matrix_cells"] = len(merged["matrix"])
        summary["top_flows"] = len(merged["top"])
        summary["datagrams_ignored"] = merged["datagrams_ignored"]
    return summary


# ----------------------------------------------------------------------
# Rendering (the `repro flows` views)
# ----------------------------------------------------------------------
def _fmt_bytes(value: int) -> str:
    if value >= 1024 * 1024:
        return f"{value / (1024 * 1024):.1f} MiB"
    if value >= 1024:
        return f"{value / 1024:.1f} KiB"
    return f"{value} B"


def render_flow_summary(summary: dict, source: str = "") -> str:
    """Human-readable ``repro flows summary`` output."""
    lines = []
    if source:
        lines.append(f"flows: {source}")
    head = [f"state={summary.get('state', '?')}"]
    if summary.get("version") is not None:
        head.append(f"v{summary['version']}")
    if summary.get("window") is not None:
        head.append(f"window={summary['window']:g}s")
    head.append(f"units={summary.get('units', 0)}")
    lines.append("  " + " ".join(head))
    totals = summary.get("totals")
    if totals is None:
        lines.append("  no unit flow records yet")
        return "\n".join(lines)
    lines.append(
        f"  delivered {_fmt_bytes(totals['bytes'])} in "
        f"{totals['datagrams']:,} datagrams")
    lines.append(
        f"  intra-ISP {100.0 * summary['intra_share']:.1f}% · transit "
        f"{100.0 * summary['transit_share']:.1f}% (transoceanic "
        f"{_fmt_bytes(totals['transoceanic_bytes'])})")
    lines.append(
        f"  {summary['windows']} windows · "
        f"{summary['matrix_cells']} matrix cells · "
        f"top-{summary['top_flows']} flows tracked")
    if summary.get("datagrams_ignored"):
        lines.append(f"  datagrams ignored (unresolved AS): "
                     f"{summary['datagrams_ignored']}")
    return "\n".join(lines)


def render_flow_matrix(payload: dict, by_kind: bool = False) -> str:
    """ISP x ISP table; ``by_kind`` keeps the message-kind split."""
    if by_kind:
        rows = [((src, dst, kind), scope, n_bytes, n_datagrams)
                for src, dst, kind, scope, n_bytes, n_datagrams
                in payload["matrix"]]
        header = ("src", "dst", "kind", "scope", "bytes", "datagrams")
    else:
        folded: Dict[Tuple[str, str], List[Any]] = {}
        for src, dst, _kind, scope, n_bytes, n_datagrams \
                in payload["matrix"]:
            cell = folded.setdefault((src, dst), [scope, 0, 0])
            cell[1] += n_bytes
            cell[2] += n_datagrams
        rows = [(key, cell[0], cell[1], cell[2])
                for key, cell in sorted(folded.items())]
        header = ("src", "dst", "scope", "bytes", "datagrams")
    table = [header]
    for key, scope, n_bytes, n_datagrams in rows:
        table.append(tuple(key) + (scope, f"{n_bytes:,}",
                                   f"{n_datagrams:,}"))
    widths = [max(len(str(row[column])) for row in table)
              for column in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths))
                     .rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_flow_windows(payload: dict) -> str:
    """Per-window locality time-series table."""
    window = payload["window"]
    lines = [f"{'window':>14}  {'bytes':>12}  {'intra%':>7}  "
             f"{'transit':>12}  {'ocean':>10}",
             f"{'-' * 14}  {'-' * 12}  {'-' * 7}  {'-' * 12}  "
             f"{'-' * 10}"]
    for row in payload["windows"]:
        index, n_bytes = row[0], row[1]
        intra, ocean = row[3], row[5]
        transit_bytes = n_bytes - intra
        share = 100.0 * intra / n_bytes if n_bytes else 0.0
        span = f"{index * window:g}-{(index + 1) * window:g}s"
        lines.append(f"{span:>14}  {n_bytes:>12,}  {share:>6.1f}%  "
                     f"{transit_bytes:>12,}  {ocean:>10,}")
    return "\n".join(lines)


def render_flow_top(payload: dict, limit: Optional[int] = None) -> str:
    """Heaviest peer-pair flows (space-saving estimates)."""
    total = payload["totals"]["bytes"]
    rows = payload["top"][:limit] if limit else payload["top"]
    lines = [f"{'flow':<34}  {'bytes':>12}  {'share':>6}  {'±err':>10}",
             f"{'-' * 34}  {'-' * 12}  {'-' * 6}  {'-' * 10}"]
    for key, count, error in rows:
        share = 100.0 * count / total if total else 0.0
        lines.append(f"{key:<34}  {count:>12,}  {share:>5.1f}%  "
                     f"{error:>10,}")
    return "\n".join(lines)
