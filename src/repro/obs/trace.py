"""Structured sim-event tracing.

A *trace record* is one timestamped, levelled, named event with arbitrary
flat fields — the simulator's analogue of a structured log line::

    sink.emit(sim.now, WARNING, "uplink_drop", src="10.0.1.7",
              dst="10.2.0.3", wire_bytes=1420)

Sinks decide what happens to records:

* :class:`NullSink` — drops everything; ``enabled_for`` is always False
  so call sites can skip building fields entirely.  This is the default.
* :class:`JsonlSink` — streams records to a JSONL file as they happen
  (no buffering of a 28-day campaign in memory).
* :class:`RingSink` — keeps the last N records in memory (tests, crash
  forensics).
* :class:`LoggingSink` — bridges records into stdlib ``logging`` under
  the ``repro`` logger, so existing log tooling picks them up.
* :class:`TeeSink` — fans one record out to several sinks.

Severity levels reuse the stdlib numeric scale so bridging is a no-op.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from typing import IO, Deque, List, Optional, Sequence, Union

DEBUG = logging.DEBUG      # 10
INFO = logging.INFO        # 20
WARNING = logging.WARNING  # 30
ERROR = logging.ERROR      # 40

LEVEL_NAMES = {DEBUG: "debug", INFO: "info",
               WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {name: level for level, name in LEVEL_NAMES.items()}


def level_from_name(name: str) -> int:
    """Map ``"debug" | "info" | "warning" | "error"`` to its level."""
    try:
        return _NAME_LEVELS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown trace level {name!r}; expected one of "
                         f"{sorted(_NAME_LEVELS)}") from None


class TraceSink:
    """Base sink: level filtering plus the emit interface."""

    def __init__(self, level: int = DEBUG) -> None:
        self.level = level

    def enabled_for(self, level: int) -> bool:
        """Whether a record at ``level`` would be kept — check this
        before assembling expensive fields."""
        return level >= self.level

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """Swallows everything; the zero-overhead default."""

    def __init__(self) -> None:
        super().__init__(level=ERROR + 1)

    def enabled_for(self, level: int) -> bool:
        return False

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        pass


NULL_SINK = NullSink()


class JsonlSink(TraceSink):
    """Streams one JSON object per record to a file or file object."""

    def __init__(self, path_or_file: Union[str, IO[str]],
                 level: int = INFO) -> None:
        super().__init__(level)
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False
        self.records_written = 0

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        if level < self.level:
            return
        record = {"t": time, "level": LEVEL_NAMES.get(level, str(level)),
                  "event": event}
        record.update(fields)
        self._file.write(json.dumps(record, default=str,
                                    separators=(",", ":")) + "\n")
        self.records_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class RingSink(TraceSink):
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096, level: int = DEBUG) -> None:
        super().__init__(level)
        self._ring: Deque[dict] = deque(maxlen=capacity)

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        if level < self.level:
            return
        record = {"t": time, "level": LEVEL_NAMES.get(level, str(level)),
                  "event": event}
        record.update(fields)
        self._ring.append(record)

    @property
    def records(self) -> List[dict]:
        return list(self._ring)

    def events(self, name: Optional[str] = None) -> List[dict]:
        if name is None:
            return self.records
        return [r for r in self._ring if r["event"] == name]


class LoggingSink(TraceSink):
    """Bridges trace records into stdlib ``logging``."""

    def __init__(self, logger: Optional[logging.Logger] = None,
                 level: int = INFO) -> None:
        super().__init__(level)
        self.logger = logger if logger is not None \
            else logging.getLogger("repro")

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        if level < self.level or not self.logger.isEnabledFor(level):
            return
        detail = " ".join(f"{k}={v}" for k, v in fields.items())
        self.logger.log(level, "t=%.3f %s %s", time, event, detail)


class TeeSink(TraceSink):
    """Fans each record out to every child sink."""

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        super().__init__(min(s.level for s in sinks))
        self.sinks = list(sinks)

    def enabled_for(self, level: int) -> bool:
        return any(s.enabled_for(level) for s in self.sinks)

    def emit(self, time: float, level: int, event: str, **fields) -> None:
        for sink in self.sinks:
            sink.emit(time, level, event, **fields)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_trace_jsonl(path: str) -> List[dict]:
    """Parse a JSONL trace file back into record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
