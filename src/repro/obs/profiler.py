"""Engine profiling: where does the wall-clock time go?

:class:`EngineProfiler` plugs into :class:`repro.sim.engine.Simulator`
(``Simulator(seed, profiler=...)``) and accounts executed events by their
scheduling *label* — the hitherto-unused ``label`` argument of
``call_at`` / ``call_after``: per-label event counts and cumulative
callback wall-clock time, plus periodic samples of queue depth and
events/second so a long campaign's throughput is visible while it runs.

Event *counts* are deterministic for a fixed seed; *wall-clock* fields
are not, so :meth:`export_into` publishes them under names containing
``wall`` which :func:`repro.obs.export.strip_wall_metrics` excludes when
comparing runs.

:class:`HeartbeatSampler` is the periodic sim-time progress beacon: at a
fixed simulated interval it collects a caller-supplied sample (swarm
size, neighbor fill, buffer health, ...), takes an engine sample, emits
an ``INFO`` ``heartbeat`` trace record, and optionally prints a one-line
progress report to a stream.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional

from .live import peak_rss_bytes
from .trace import INFO


@dataclass
class LabelProfile:
    """Accumulated cost of one event label."""

    count: int = 0
    wall_seconds: float = 0.0


@dataclass
class EngineSample:
    """One point of the engine throughput series."""

    sim_time: float
    events_executed: int
    queue_depth: int
    wall_seconds: float
    #: Events per wall-clock second since the previous sample (0.0 for
    #: the first sample).
    events_per_sec: float = 0.0


UNLABELLED = "(unlabelled)"


class EngineProfiler:
    """Per-label wall-clock/count accounting for the event loop."""

    def __init__(self) -> None:
        self._labels: Dict[str, LabelProfile] = {}
        self.samples: List[EngineSample] = []
        self._started_at = perf_counter()
        #: Coarse run-phase wall clocks ("setup", "sim", "analysis"):
        #: cumulative, so multi-session runs (campaigns) accumulate.
        self.phases: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Hot path (called by Simulator.step for every event)
    # ------------------------------------------------------------------
    def record(self, label: str, wall_seconds: float) -> None:
        profile = self._labels.get(label)
        if profile is None:
            profile = self._labels[label] = LabelProfile()
        profile.count += 1
        profile.wall_seconds += wall_seconds

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of one run phase under ``name``.

        The attribution report (:mod:`repro.obs.attribution`) uses the
        "sim" phase to separate event-loop dispatch overhead from
        callback time, and "setup"/"analysis" to account the work
        outside the loop entirely.
        """
        started = perf_counter()
        try:
            yield
        finally:
            self.phases[name] = (self.phases.get(name, 0.0)
                                 + perf_counter() - started)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, sim) -> EngineSample:
        """Record a queue-depth / throughput sample from ``sim``."""
        now_wall = perf_counter() - self._started_at
        point = EngineSample(sim_time=sim.now,
                             events_executed=sim.events_executed,
                             queue_depth=len(sim.queue),
                             wall_seconds=now_wall)
        if self.samples:
            last = self.samples[-1]
            d_wall = point.wall_seconds - last.wall_seconds
            if d_wall > 0:
                point.events_per_sec = ((point.events_executed
                                         - last.events_executed) / d_wall)
        self.samples.append(point)
        return point

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(p.count for p in self._labels.values())

    @property
    def total_wall_seconds(self) -> float:
        return sum(p.wall_seconds for p in self._labels.values())

    def label_stats(self) -> Dict[str, LabelProfile]:
        """Per-label profiles, sorted by descending wall time."""
        return dict(sorted(self._labels.items(),
                           key=lambda kv: (-kv[1].wall_seconds, kv[0])))

    def export_into(self, registry) -> None:
        """Publish the profile into a metrics registry.

        Idempotent (gauges, not counters) so it can run after every
        session of a multi-session experiment.
        """
        for label, profile in sorted(self._labels.items()):
            tags = {"label": label or UNLABELLED}
            registry.gauge("sim.events_by_label", tags).set(profile.count)
            registry.gauge("sim.wall_seconds_by_label",
                           tags).set(profile.wall_seconds)
        registry.gauge("sim.wall_seconds_total").set(self.total_wall_seconds)
        if self.samples:
            registry.gauge("sim.queue_depth_last").set(
                self.samples[-1].queue_depth)
            rates = [s.events_per_sec for s in self.samples[1:]]
            if rates:
                registry.gauge("sim.events_per_sec_wall_mean").set(
                    sum(rates) / len(rates))

    def render(self, top: int = 12) -> str:
        """Human-readable profile table."""
        lines = [f"engine profile: {self.total_events} events, "
                 f"{self.total_wall_seconds:.3f}s in callbacks"]
        lines.append(f"{'label':<20}{'events':>10}{'wall s':>10}{'avg us':>10}")
        for label, profile in list(self.label_stats().items())[:top]:
            avg_us = (profile.wall_seconds / profile.count * 1e6
                      if profile.count else 0.0)
            lines.append(f"{(label or UNLABELLED):<20}{profile.count:>10}"
                         f"{profile.wall_seconds:>10.3f}{avg_us:>10.1f}")
        return "\n".join(lines)


#: Returns the deterministic heartbeat fields for the current sim time.
SampleFn = Callable[[float], Dict[str, object]]


class HeartbeatSampler:
    """Periodic sim-time progress beacon for long runs.

    ``sample_fn(now)`` supplies the domain fields (swarm size, neighbor
    fill, backlog, playback health); the sampler adds engine fields,
    emits one ``heartbeat`` trace record per beat, and, when ``stream``
    is given, prints a single-line progress report there.
    """

    def __init__(self, sim, instrumentation, sample_fn: SampleFn,
                 interval: float = 30.0, label: str = "",
                 stream=None) -> None:
        self.sim = sim
        self.obs = instrumentation
        self.sample_fn = sample_fn
        self.label = label
        self.stream = stream
        self.beats = 0
        self._timer = sim.every(interval, self._beat, label="obs-heartbeat")

    def stop(self) -> None:
        self._timer.stop()

    def _beat(self) -> None:
        now = self.sim.now
        self.beats += 1
        fields = dict(self.sample_fn(now))
        fields["events_executed"] = self.sim.events_executed
        fields["queue_depth"] = len(self.sim.queue)
        events_per_sec = None
        profiler = self.obs.profiler
        if profiler is not None:
            point = profiler.sample(self.sim)
            if point.events_per_sec:
                events_per_sec = point.events_per_sec
                # Wall-clock rate: progress/trace only, never metrics.
                fields["events_per_sec_wall"] = round(events_per_sec, 1)
        self.obs.trace.emit(now, INFO, "heartbeat", **fields)
        bus = self.obs.progress_bus
        if bus is not None:
            beat = {"t": round(now, 3)}
            beat.update((key, value) for key, value in fields.items()
                        if key != "events_per_sec_wall")
            if events_per_sec is not None:
                beat["events_per_sec"] = round(events_per_sec, 1)
            beat["rss_bytes"] = peak_rss_bytes()
            bus.heartbeat(**beat)
        if self.stream is not None:
            self._print_progress(now, fields, events_per_sec)

    def _print_progress(self, now: float, fields: Dict[str, object],
                        events_per_sec: Optional[float]) -> None:
        parts = [f"[{self.label or 'run'}] t={now:.0f}s"]
        for key, value in fields.items():
            # Nested structures (per-ISP census) stay in trace/bus records.
            if key in ("events_per_sec_wall",) or isinstance(value, dict):
                continue
            if isinstance(value, float):
                parts.append(f"{key}={value:.2f}")
            else:
                parts.append(f"{key}={value}")
        if events_per_sec is not None:
            parts.append(f"({events_per_sec / 1000.0:.1f}k ev/s)")
        print(" ".join(parts), file=self.stream or sys.stderr)
        try:
            (self.stream or sys.stderr).flush()
        except (AttributeError, ValueError):  # pragma: no cover
            pass
