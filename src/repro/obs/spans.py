"""Causal transaction spans.

The paper's methodology is reconstructing *transactions* from raw
packets — peer-list requests matched to replies, data requests matched
to sub-piece replies — and judging locality from what those
transactions reveal.  A :class:`Span` is the simulator-side native form
of the same idea: a named, categorised interval of simulated time with
a causal parent, so "why was this chunk fetched from a Foreign peer?"
is one parent-chain walk instead of a JSONL hand-join.

The span model is deliberately flat and deterministic:

* ``trace_id`` groups one causal tree (one peer's session, one
  campaign job); ``span_id``/``parent_id`` encode the tree edges.
  IDs are small integers allocated by the sink in call order, which is
  deterministic because the simulator is.
* ``start``/``end`` are simulated seconds (wall-clock never enters a
  span, so span files from two runs with the same seed are
  byte-identical — except the ``parallel`` category, whose durations
  are honest wall-clock measurements).
* ``status`` records how the transaction resolved: ``ok``, ``miss``,
  ``timeout``, ``rejected``, ``unanswered``, ...
* attributes are flat key → scalar, like trace-record fields.

Sinks mirror the :class:`repro.obs.trace.TraceSink` contract:

* :class:`NullSpanSink` — the shared zero-overhead default.  Its
  ``enabled`` is ``False`` and every call site guards on that, so an
  un-instrumented run allocates no span objects at all.
* :class:`MemorySpanSink` — collects finished spans in a list (tests,
  ``repro report``).
* :class:`JsonlSpanSink` — streams each finished span as one JSON line.
* :class:`ChromeTraceSink` — writes Chrome trace-event format JSON so a
  run opens directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.
* :class:`TeeSpanSink` — fans spans out to several sinks.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence, Union

#: Span status values used by the instrumented chains.  Free-form
#: strings are allowed; these are the conventional ones.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One causally-linked interval of simulated time."""

    __slots__ = ("sink", "trace_id", "span_id", "parent_id", "name",
                 "category", "actor", "start", "end", "status", "attrs")

    def __init__(self, sink: "SpanSink", trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 actor: Optional[str], start: float,
                 attrs: Optional[dict] = None) -> None:
        self.sink = sink
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.actor = actor
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    def annotate(self, **attrs) -> "Span":
        """Attach flat key → scalar attributes; last write wins."""
        self.attrs.update(attrs)
        return self

    def finish(self, time: float, status: str = STATUS_OK,
               **attrs) -> "Span":
        """Close the span and hand it to the sink (idempotent)."""
        if self.end is not None:
            return self
        if attrs:
            self.attrs.update(attrs)
        self.end = time
        self.status = status
        self.sink._record(self)
        return self

    def to_record(self) -> dict:
        """The span as a flat dict (the JSONL line format)."""
        record = {"trace": self.trace_id, "span": self.span_id,
                  "parent": self.parent_id, "name": self.name,
                  "cat": self.category, "start": self.start,
                  "end": self.end, "status": self.status}
        if self.actor is not None:
            record["actor"] = self.actor
        record.update(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"status={self.status}" if self.finished else "open"
        return (f"<Span {self.category}/{self.name} id={self.span_id} "
                f"trace={self.trace_id} {state}>")


class SpanSink:
    """Base sink: ID allocation plus the start/record interface.

    ``enabled`` is the hot-path guard — call sites skip all span work
    (including building attribute dicts) when it is ``False``.
    """

    enabled = True

    def __init__(self) -> None:
        self._next_id = 1
        self.spans_recorded = 0

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def start_span(self, name: str, category: str, time: float,
                   parent: Optional[Span] = None,
                   actor: Optional[str] = None, **attrs) -> Span:
        """Open a span.  With ``parent`` the span joins that trace;
        otherwise it roots a fresh trace."""
        span_id = self._next_id
        self._next_id += 1
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if actor is None:
                actor = parent.actor
        else:
            trace_id = span_id
            parent_id = None
        return Span(self, trace_id, span_id, parent_id, name, category,
                    actor, time, attrs)

    def instant(self, name: str, category: str, time: float,
                parent: Optional[Span] = None,
                actor: Optional[str] = None, **attrs) -> Span:
        """A zero-duration marker span, recorded immediately."""
        span = self.start_span(name, category, time, parent=parent,
                               actor=actor, **attrs)
        return span.finish(time)

    # ------------------------------------------------------------------
    # Recording (called by Span.finish)
    # ------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        self.spans_recorded += 1
        self._write(span)

    def _write(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; finishing spans afterwards is
        an error for file-backed sinks."""

    def __enter__(self) -> "SpanSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSpanSink(SpanSink):
    """Swallows everything; the shared zero-overhead default."""

    enabled = False

    def start_span(self, name: str, category: str, time: float,
                   parent: Optional[Span] = None,
                   actor: Optional[str] = None, **attrs) -> Span:
        return NULL_SPAN

    def instant(self, name: str, category: str, time: float,
                parent: Optional[Span] = None,
                actor: Optional[str] = None, **attrs) -> Span:
        return NULL_SPAN

    def _record(self, span: Span) -> None:
        pass

    def _write(self, span: Span) -> None:
        pass


NULL_SINK = NullSpanSink()
NULL_SPAN_SINK = NULL_SINK  # canonical import name

#: Shared inert span handed out by the null sink; finishing or
#: annotating it is a no-op, so stray references stay harmless.
NULL_SPAN = Span(NULL_SINK, 0, 0, None, "null", "null", None, 0.0)
NULL_SPAN.end = 0.0
NULL_SPAN.status = STATUS_OK


class MemorySpanSink(SpanSink):
    """Keeps every finished span in memory (tests, ``repro report``)."""

    def __init__(self) -> None:
        super().__init__()
        self.spans: List[Span] = []

    def _write(self, span: Span) -> None:
        self.spans.append(span)

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})


class JsonlSpanSink(SpanSink):
    """Streams one JSON object per finished span to a file."""

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        super().__init__()
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False

    def _write(self, span: Span) -> None:
        self._file.write(json.dumps(span.to_record(), default=str,
                                    separators=(",", ":")) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class ChromeTraceSink(SpanSink):
    """Collects spans and writes Chrome trace-event JSON on close.

    The output opens directly in Perfetto (https://ui.perfetto.dev,
    "Open trace file") or ``chrome://tracing``.  Mapping:

    * one *thread* per span actor (peer address, component name);
      thread-name metadata events label the tracks,
    * finished spans become complete (``"ph": "X"``) events with
      microsecond timestamps (simulated seconds × 1e6),
    * zero-duration spans become instant (``"ph": "i"``) events,
    * span attributes, status and causal IDs ride in ``args``.
    """

    DEFAULT_ACTOR = "(global)"

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        super().__init__()
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = path_or_file
            self._owns_file = False
        self._events: List[dict] = []
        self._tids: Dict[str, int] = {}

    def _tid(self, actor: Optional[str]) -> int:
        key = actor if actor is not None else self.DEFAULT_ACTOR
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
        return tid

    def _write(self, span: Span) -> None:
        args = {"trace": span.trace_id, "span": span.span_id,
                "status": span.status}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = value if isinstance(value, (int, float, bool)) \
                else str(value)
        start_us = span.start * 1e6
        duration_us = (span.end - span.start) * 1e6
        event = {"name": span.name, "cat": span.category,
                 "ts": start_us, "pid": 1, "tid": self._tid(span.actor),
                 "args": args}
        if duration_us > 0:
            event["ph"] = "X"
            event["dur"] = duration_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        self._events.append(event)

    def close(self) -> None:
        metadata = [{"name": "thread_name", "ph": "M", "pid": 1,
                     "tid": tid, "args": {"name": actor}}
                    for actor, tid in sorted(self._tids.items(),
                                             key=lambda kv: kv[1])]
        document = {"traceEvents": metadata + self._events,
                    "displayTimeUnit": "ms"}
        json.dump(document, self._file, default=str,
                  separators=(",", ":"))
        self._file.write("\n")
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._events = []


class TeeSpanSink(SpanSink):
    """Fans each finished span out to every child sink.

    The tee allocates the IDs; children only record, so span identity
    is consistent across all outputs.
    """

    def __init__(self, sinks: Sequence[SpanSink]) -> None:
        if not sinks:
            raise ValueError("TeeSpanSink needs at least one child sink")
        super().__init__()
        self.sinks = list(sinks)

    def _write(self, span: Span) -> None:
        for sink in self.sinks:
            sink._record(span)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# Reading / validation helpers
# ----------------------------------------------------------------------
def read_spans_jsonl(path: str) -> List[dict]:
    """Parse a JSONL span file back into record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def read_chrome_trace(path: str) -> List[dict]:
    """Load a Chrome trace file and return its event list.

    Accepts both the object form (``{"traceEvents": [...]}`` — what
    :class:`ChromeTraceSink` writes) and the bare-array form.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        return document["traceEvents"]
    return document


#: Phases that mark span-shaped events in a Chrome trace.
_SPAN_PHASES = {"X", "i", "I"}


def validate_chrome_trace(events: List[dict]) -> List[str]:
    """Schema-check trace events; returns a list of problems (empty =
    valid).  Checks the invariants Perfetto/chrome://tracing rely on:
    every event has name/ph/pid/tid, timestamps are numbers, complete
    events carry a non-negative ``dur``."""
    problems = []
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        phase = event.get("ph")
        if phase == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: non-numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: complete event with bad dur")
        elif phase not in _SPAN_PHASES:
            problems.append(f"{where}: unexpected phase {phase!r}")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args is not an object")
    return problems


def span_categories(events: List[dict]) -> List[str]:
    """Distinct categories among span-shaped events of a Chrome trace."""
    return sorted({e.get("cat") for e in events
                   if e.get("ph") in _SPAN_PHASES and e.get("cat")})
