"""Per-subsystem wall-time attribution.

The engine profiler accounts every executed event under its scheduling
*label*; this module folds those labels into a handful of subsystem
buckets — transport, protocol, playback, workload churn, fault
injection, observability — and adds the three phase buckets the event
loop cannot see from inside a callback:

* ``engine`` — event-loop dispatch overhead: the wall time of the
  ``sim`` phase minus the time spent inside callbacks (heap pops, clock
  writes, pooling, profiler bookkeeping),
* ``setup`` — deployment wiring before the loop starts,
* ``analysis`` — post-run trace matching and figure statistics.

:func:`build_attribution` turns a profiler plus the run's measured total
wall time into the attribution block embedded in ``BENCH_engine.json`` /
``BENCH_campaign.json``: per-bucket seconds, share of total, and event
counts, plus a ``coverage`` ratio (bucketed / total) that the bench
suite asserts stays ≥ 0.9 — if a new hot path appears outside every
bucket, the gate notices.
"""

from __future__ import annotations

from typing import Dict, Optional

from .profiler import EngineProfiler

#: Buckets in display order; ``other`` catches unmapped labels.
SUBSYSTEMS = ("engine", "transport", "protocol", "playback", "workload",
              "faults", "obs", "analysis", "setup", "other")

#: Scheduling label -> subsystem.  Exact names first; prefixes below.
LABEL_SUBSYSTEMS: Dict[str, str] = {
    "udp-deliver": "transport",
    "tracker-round": "protocol",
    "hello-timeout": "protocol",
    "data-timeout": "protocol",
    "gossip-round": "protocol",
    "sched-tick": "protocol",
    "buffermap-round": "protocol",
    "bootstrap-retry": "protocol",
    "playback-maintenance": "playback",
    "probe-join": "workload",
    "viewer-arrive": "workload",
    "viewer-depart": "workload",
    "timer": "workload",
    "": "workload",
    "obs-heartbeat": "obs",
    "chaos-bin": "analysis",
}

_PREFIX_SUBSYSTEMS = (
    ("fault-", "faults"),
    ("spawn:", "workload"),
)


def subsystem_of(label: str) -> str:
    """Map one scheduling label to its subsystem bucket."""
    subsystem = LABEL_SUBSYSTEMS.get(label)
    if subsystem is not None:
        return subsystem
    for prefix, bucket in _PREFIX_SUBSYSTEMS:
        if label.startswith(prefix):
            return bucket
    return "other"


def build_attribution(profiler: EngineProfiler,
                      total_wall_seconds: float) -> dict:
    """The per-subsystem attribution block for one profiled run.

    ``total_wall_seconds`` is the caller's end-to-end measurement of the
    run (setup + simulation + analysis); shares and coverage are
    computed against it.
    """
    seconds: Dict[str, float] = {}
    events: Dict[str, int] = {}
    for label, profile in profiler.label_stats().items():
        bucket = subsystem_of(label)
        seconds[bucket] = seconds.get(bucket, 0.0) + profile.wall_seconds
        events[bucket] = events.get(bucket, 0) + profile.count

    callback_total = profiler.total_wall_seconds
    phases = profiler.phases
    # Dispatch overhead: loop wall minus callback wall, never negative
    # (a phase-less profiler contributes a zero engine bucket).
    sim_phase = phases.get("sim", 0.0)
    seconds["engine"] = max(0.0, sim_phase - callback_total)
    events["engine"] = profiler.total_events
    for phase in ("setup", "analysis"):
        if phases.get(phase):
            seconds[phase] = seconds.get(phase, 0.0) + phases[phase]

    total = max(total_wall_seconds, 1e-9)
    buckets = {}
    for name in SUBSYSTEMS:
        if name not in seconds:
            continue
        buckets[name] = {
            "wall_seconds": round(seconds[name], 4),
            "share": round(seconds[name] / total, 4),
            "events": events.get(name, 0),
        }
    for name in sorted(set(seconds) - set(SUBSYSTEMS)):  # pragma: no cover
        buckets[name] = {
            "wall_seconds": round(seconds[name], 4),
            "share": round(seconds[name] / total, 4),
            "events": events.get(name, 0),
        }
    covered = sum(entry["wall_seconds"] for entry in buckets.values())
    return {
        "total_wall_seconds": round(total_wall_seconds, 4),
        "coverage": round(min(1.0, covered / total), 4),
        "buckets": buckets,
    }


def render_attribution(attribution: Optional[dict]) -> str:
    """One-line-per-bucket table for bench output and ``--diff``."""
    if not attribution:
        return "(no attribution block)"
    lines = [f"{'subsystem':<12}{'wall s':>9}{'share':>8}{'events':>12}"]
    for name, entry in attribution["buckets"].items():
        lines.append(f"{name:<12}{entry['wall_seconds']:>9.3f}"
                     f"{entry['share']:>8.1%}{entry['events']:>12}")
    lines.append(f"{'covered':<12}{'':>9}"
                 f"{attribution['coverage']:>8.1%}")
    return "\n".join(lines)
