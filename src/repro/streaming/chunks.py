"""Chunk and sub-piece geometry of a live stream.

PPLive divides the video into chunks, "which may be further divided into
smaller sub-pieces of 1380 or 690 bytes each" (paper, Section 2).  A
:class:`ChunkGeometry` fixes, for one channel: the stream bitrate, the
chunk duration, the sub-piece size, and therefore how many sub-pieces a
chunk contains and which chunk is at the live edge at any instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The two sub-piece sizes observed on the wire (bytes).
SUBPIECE_LARGE = 1380
SUBPIECE_SMALL = 690


@dataclass(frozen=True)
class ChunkGeometry:
    """Static layout of one channel's stream."""

    bitrate_bps: float = 384_000.0
    chunk_seconds: float = 4.0
    subpiece_bytes: int = SUBPIECE_LARGE

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.chunk_seconds <= 0:
            raise ValueError("chunk duration must be positive")
        if self.subpiece_bytes not in (SUBPIECE_LARGE, SUBPIECE_SMALL):
            raise ValueError(
                f"sub-piece size must be {SUBPIECE_LARGE} or "
                f"{SUBPIECE_SMALL}, got {self.subpiece_bytes}")
        # The geometry is immutable and these two values sit on the
        # simulator's hottest path — precompute them once.
        chunk_bytes = int(self.bitrate_bps * self.chunk_seconds / 8.0)
        object.__setattr__(self, "_chunk_bytes", chunk_bytes)
        total = max(1, math.ceil(chunk_bytes / self.subpiece_bytes))
        object.__setattr__(self, "_subpieces_per_chunk", total)
        # Per-sub-piece size table and its prefix sums: `subpiece_size`
        # and `range_bytes` become O(1) lookups on the data hot path.
        sizes = []
        for index in range(total):
            if index < total - 1:
                sizes.append(self.subpiece_bytes)
            else:
                remainder = chunk_bytes - self.subpiece_bytes * index
                sizes.append(remainder if remainder > 0
                             else self.subpiece_bytes)
        object.__setattr__(self, "_sizes", tuple(sizes))
        cumulative = [0]
        for size in sizes:
            cumulative.append(cumulative[-1] + size)
        object.__setattr__(self, "_cumulative_bytes", tuple(cumulative))

    @property
    def chunk_bytes(self) -> int:
        """Payload bytes of one complete chunk."""
        return self._chunk_bytes

    @property
    def subpieces_per_chunk(self) -> int:
        """Number of sub-pieces in one chunk (last one may be short)."""
        return self._subpieces_per_chunk

    def subpiece_size(self, index: int) -> int:
        """Size in bytes of sub-piece ``index`` within a chunk."""
        if not 0 <= index < self._subpieces_per_chunk:
            raise IndexError(f"sub-piece {index} out of range")
        return self._sizes[index]

    def range_bytes(self, first: int, last: int) -> int:
        """Total bytes of sub-pieces ``first..last`` inclusive."""
        if first > last:
            raise ValueError(f"empty range {first}..{last}")
        if first < 0 or last >= self._subpieces_per_chunk:
            index = first if first < 0 else last
            raise IndexError(f"sub-piece {index} out of range")
        cumulative = self._cumulative_bytes
        return cumulative[last + 1] - cumulative[first]

    def live_chunk(self, now: float, channel_start: float = 0.0) -> int:
        """Index of the newest *complete* chunk at simulated time ``now``.

        Chunk ``k`` covers stream time ``[k*d, (k+1)*d)`` and becomes
        available at the source once fully generated, i.e. at
        ``channel_start + (k+1)*d``.  Returns -1 before the first chunk
        completes.
        """
        elapsed = now - channel_start
        return math.floor(elapsed / self.chunk_seconds) - 1

    def chunk_playout_time(self, chunk: int, playout_start: float,
                           first_chunk: int) -> float:
        """Wall-clock time at which ``chunk`` must be ready for playout."""
        return playout_start + (chunk - first_chunk) * self.chunk_seconds
