"""Live-video streaming substrate (S4): chunks, channels, buffers, playback."""

from .buffer import ChunkBuffer
from .chunks import (SUBPIECE_LARGE, SUBPIECE_SMALL, ChunkGeometry)
from .playback import PlaybackMonitor, PlayerState
from .video import LiveChannel, Popularity

__all__ = [
    "ChunkGeometry",
    "SUBPIECE_LARGE",
    "SUBPIECE_SMALL",
    "ChunkBuffer",
    "PlaybackMonitor",
    "PlayerState",
    "LiveChannel",
    "Popularity",
]
