"""Playback state machine and quality accounting.

A live viewer buffers a startup window, then plays chunks at real-time
rate; whenever the next chunk is incomplete at its deadline the player
stalls (rebuffers) until it arrives.  The monitor records startup delay,
stall count/duration and the continuity index — the fraction of chunk
deadlines met — which the protocol layer uses to decide when playback is
"satisfactory" (at which point PPLive drops its tracker-query rate to
once per five minutes).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..obs import INFO, Instrumentation
from ..obs import resolve as resolve_obs
from .buffer import ChunkBuffer
from .chunks import ChunkGeometry


class PlayerState(enum.Enum):
    STARTUP = "startup"
    PLAYING = "playing"
    STALLED = "stalled"
    STOPPED = "stopped"

    def __str__(self) -> str:
        return self.value


class PlaybackMonitor:
    """Tracks playout progress against the receive buffer."""

    def __init__(self, geometry: ChunkGeometry, buffer: ChunkBuffer,
                 join_time: float, startup_chunks: int = 3,
                 obs: Optional[Instrumentation] = None,
                 obs_tags: Optional[dict] = None,
                 actor: Optional[str] = None,
                 span_parent: object = None) -> None:
        if startup_chunks < 1:
            raise ValueError("startup_chunks must be >= 1")
        self.geometry = geometry
        self.buffer = buffer
        self.join_time = join_time
        self.startup_chunks = startup_chunks
        self.state = PlayerState.STARTUP
        self.playout_chunk = buffer.first_chunk - 1
        self.playout_started_at: Optional[float] = None
        self.startup_delay: Optional[float] = None
        self.stall_count = 0
        self.stall_seconds = 0.0
        self._stall_began: Optional[float] = None
        self.deadlines_met = 0
        self.deadlines_missed = 0
        # Observability: no-op by default; series shared per tag set.
        obs = resolve_obs(obs)
        self._trace = obs.trace
        self._spans = obs.spans
        self._actor = actor
        self._span_parent = span_parent
        self._startup_span = None
        self._stall_span = None
        if self._spans.enabled:
            # Playback chain root: buffering from join until first play.
            self._startup_span = self._spans.start_span(
                "startup", "playback", join_time, parent=span_parent,
                actor=actor, startup_chunks=startup_chunks)
        metrics = obs.metrics
        self._m_deadlines_met = metrics.counter("streaming.deadlines_met",
                                                obs_tags)
        self._m_deadline_misses = metrics.counter(
            "streaming.deadline_misses", obs_tags)
        self._m_stalls = metrics.counter("streaming.stalls", obs_tags)
        self._h_startup_delay = metrics.histogram(
            "streaming.startup_delay_seconds",
            bounds=(1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0, 120.0),
            tags=obs_tags)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def tick(self, now: float) -> None:
        """Advance playout bookkeeping to time ``now``.

        Called periodically (and after data arrivals) by the peer.
        """
        if self.state is PlayerState.STOPPED:
            return
        if self.state is PlayerState.STARTUP:
            self._maybe_start(now)
            return
        self._consume_due_chunks(now)

    def stop(self, now: float) -> None:
        if self.state is PlayerState.STALLED and self._stall_began is not None:
            self.stall_seconds += now - self._stall_began
            self._stall_began = None
        if self._startup_span is not None and not self._startup_span.finished:
            # Viewer left before playback ever started.
            self._startup_span.finish(now, "stopped")
        if self._stall_span is not None:
            self._stall_span.finish(now, "stopped")
            self._stall_span = None
        self.state = PlayerState.STOPPED

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------
    @property
    def continuity_index(self) -> float:
        """Fraction of playout deadlines met so far (1.0 when none due)."""
        total = self.deadlines_met + self.deadlines_missed
        if total == 0:
            return 1.0
        return self.deadlines_met / total

    def is_satisfactory(self, threshold: float = 0.9) -> bool:
        """Whether playback quality passes the tracker-backoff threshold."""
        return (self.state is PlayerState.PLAYING
                and self.continuity_index >= threshold)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_start(self, now: float) -> None:
        target = self.buffer.first_chunk + self.startup_chunks - 1
        if self.buffer.have_until >= target:
            self.state = PlayerState.PLAYING
            self.playout_started_at = now
            self.startup_delay = now - self.join_time
            self._h_startup_delay.observe(self.startup_delay)
            if self._startup_span is not None:
                self._startup_span.finish(
                    now, startup_delay=round(self.startup_delay, 3))
            self.playout_chunk = self.buffer.first_chunk - 1
            self._consume_due_chunks(now)

    def _due_chunk(self, now: float) -> int:
        """Chunk index whose playout deadline has arrived at ``now``."""
        assert self.playout_started_at is not None
        effective_elapsed = (now - self.playout_started_at
                             - self.stall_seconds)
        if self.state is PlayerState.STALLED and self._stall_began is not None:
            effective_elapsed -= now - self._stall_began
        return (self.buffer.first_chunk
                + int(effective_elapsed / self.geometry.chunk_seconds))

    def _consume_due_chunks(self, now: float) -> None:
        due = self._due_chunk(now)
        while self.playout_chunk < due:
            next_chunk = self.playout_chunk + 1
            if self.buffer.has_chunk(next_chunk):
                if self.state is PlayerState.STALLED:
                    self._end_stall(now)
                self.playout_chunk = next_chunk
                self.deadlines_met += 1
                self._m_deadlines_met.inc()
                due = self._due_chunk(now)
            else:
                # Count the miss once, on the transition into the stall;
                # while stalled the deadline clock is frozen.
                if self.state is PlayerState.PLAYING:
                    self._begin_stall(now)
                    self.deadlines_missed += 1
                    self._m_deadline_misses.inc()
                break
        self.buffer.evict_before(self.playout_chunk)

    def _begin_stall(self, now: float) -> None:
        self.state = PlayerState.STALLED
        self.stall_count += 1
        self._m_stalls.inc()
        self._stall_began = now
        if self._spans.enabled:
            # The deadline miss is the instant; the stall it opens is
            # the interval the viewer experiences.
            self._spans.instant("deadline_miss", "playback", now,
                                parent=self._span_parent, actor=self._actor,
                                chunk=self.playout_chunk + 1)
            self._stall_span = self._spans.start_span(
                "stall", "playback", now, parent=self._span_parent,
                actor=self._actor, chunk=self.playout_chunk + 1)
        if self._trace.enabled_for(INFO):
            self._trace.emit(now, INFO, "playback_stall",
                             chunk=self.playout_chunk + 1,
                             continuity=round(self.continuity_index, 4))

    def _end_stall(self, now: float) -> None:
        if self._stall_began is not None:
            duration = now - self._stall_began
            self.stall_seconds += duration
            self._stall_began = None
            if self._trace.enabled_for(INFO):
                self._trace.emit(now, INFO, "playback_resume",
                                 stalled_for=round(duration, 3))
        if self._stall_span is not None:
            self._stall_span.finish(now)
            self._stall_span = None
        self.state = PlayerState.PLAYING
