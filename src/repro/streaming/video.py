"""Live channels.

A :class:`LiveChannel` is the unit a viewer joins: it has an id, a
human-readable name, a :class:`ChunkGeometry`, a popularity rating (the
rough analogue of PPLive's access-count-based channel rating), and the
simulated time at which its broadcast started.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .chunks import ChunkGeometry


class Popularity(enum.Enum):
    """Coarse channel rating, mirroring the paper's popular/unpopular split."""

    POPULAR = "popular"
    UNPOPULAR = "unpopular"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class LiveChannel:
    """One live-streaming channel."""

    channel_id: int
    name: str
    popularity: Popularity = Popularity.POPULAR
    geometry: ChunkGeometry = field(default_factory=ChunkGeometry)
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.channel_id < 0:
            raise ValueError("channel id must be non-negative")
        if not self.name:
            raise ValueError("channel needs a name")

    def live_chunk(self, now: float) -> int:
        """Newest complete chunk index at time ``now`` (-1 if none yet)."""
        return self.geometry.live_chunk(now, self.start_time)

    def __str__(self) -> str:
        return f"#{self.channel_id} {self.name} ({self.popularity})"
