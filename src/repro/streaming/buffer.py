"""Receiver-side chunk buffer.

Tracks which sub-pieces of which chunks have arrived, maintains the
highest *contiguous* complete chunk (what the peer can advertise and can
play), and evicts chunks far behind the playout point so memory stays
bounded over a multi-hour session.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from .chunks import ChunkGeometry


class ChunkBuffer:
    """Sub-piece-accurate receive buffer for one live session."""

    def __init__(self, geometry: ChunkGeometry,
                 first_chunk: int, keep_behind: int = 32) -> None:
        if keep_behind < 1:
            raise ValueError("keep_behind must be >= 1")
        self.geometry = geometry
        self.first_chunk = first_chunk
        self.keep_behind = keep_behind
        #: Highest chunk index such that every chunk in
        #: [first_chunk, have_until] is complete; first_chunk-1 when none.
        self.have_until = first_chunk - 1
        #: Partially received chunks: chunk -> set of received sub-pieces.
        self._partial: Dict[int, Set[int]] = {}
        #: Complete chunks above the contiguous frontier.
        self._complete_ahead: Set[int] = set()
        self.bytes_received = 0
        self.duplicate_subpieces = 0
        self.chunks_completed = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_chunk(self, chunk: int) -> bool:
        """True when every sub-piece of ``chunk`` has arrived."""
        if chunk < self.first_chunk:
            return False
        return chunk <= self.have_until or chunk in self._complete_ahead

    def has_subpiece(self, chunk: int, subpiece: int) -> bool:
        if self.has_chunk(chunk):
            return True
        return subpiece in self._partial.get(chunk, ())

    def missing_subpieces(self, chunk: int) -> list:
        """Sub-piece indices of ``chunk`` not yet received, ascending."""
        if self.has_chunk(chunk):
            return []
        total = self.geometry.subpieces_per_chunk
        received = self._partial.get(chunk)
        if not received:
            # Untouched chunk — the scheduler's common case.
            return list(range(total))
        return [i for i in range(total) if i not in received]

    def completion(self, chunk: int) -> float:
        """Fraction of ``chunk``'s sub-pieces received, in [0, 1]."""
        if self.has_chunk(chunk):
            return 1.0
        received = len(self._partial.get(chunk, ()))
        return received / self.geometry.subpieces_per_chunk

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_subpiece(self, chunk: int, subpiece: int) -> bool:
        """Record one received sub-piece.  Returns True if it was new."""
        total = self.geometry.subpieces_per_chunk
        if not 0 <= subpiece < total:
            raise IndexError(f"sub-piece {subpiece} out of range 0..{total-1}")
        if chunk < self.first_chunk or self.has_subpiece(chunk, subpiece):
            self.duplicate_subpieces += 1
            return False
        received = self._partial.setdefault(chunk, set())
        received.add(subpiece)
        self.bytes_received += self.geometry.subpiece_size(subpiece)
        if len(received) == total:
            del self._partial[chunk]
            self._complete_ahead.add(chunk)
            self.chunks_completed += 1
            self._advance_frontier()
        return True

    def add_range(self, chunk: int, first: int, last: int) -> int:
        """Record sub-pieces ``first..last`` inclusive; returns #new ones."""
        added = 0
        for subpiece in range(first, last + 1):
            if self.add_subpiece(chunk, subpiece):
                added += 1
        return added

    def _advance_frontier(self) -> None:
        while self.have_until + 1 in self._complete_ahead:
            self._complete_ahead.discard(self.have_until + 1)
            self.have_until += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def evict_before(self, playout_chunk: int) -> int:
        """Drop partial state far behind playout; returns #chunks dropped.

        Complete chunks are summarised by ``have_until`` so only partial
        and ahead-of-frontier bookkeeping needs eviction.
        """
        horizon = playout_chunk - self.keep_behind
        stale = [c for c in self._partial if c < horizon]
        for chunk in stale:
            del self._partial[chunk]
        # A partial chunk behind playout will never complete: advance the
        # frontier past it so scheduling stops considering it.
        if self.have_until < horizon:
            self.have_until = horizon
            self._advance_frontier()
        return len(stale)

    def partial_chunks(self) -> Iterable[int]:
        return self._partial.keys()

    def advertised_have(self) -> int:
        """The availability this peer advertises to neighbors."""
        return self.have_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ChunkBuffer have_until={self.have_until} "
                f"partial={len(self._partial)} "
                f"ahead={len(self._complete_ahead)}>")
