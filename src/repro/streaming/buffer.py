"""Receiver-side chunk buffer.

Tracks which sub-pieces of which chunks have arrived, maintains the
highest *contiguous* complete chunk (what the peer can advertise and can
play), and evicts chunks far behind the playout point so memory stays
bounded over a multi-hour session.

Per-chunk sub-piece bookkeeping is an int bitmask (bit ``i`` set == sub-
piece ``i`` received) rather than a ``set``: membership, insertion and
"which sub-pieces are missing" become single integer operations, and a
partially received chunk costs one small int instead of a hash table.
The bitmask representation is internal — every public query keeps its
list/bool API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from .chunks import ChunkGeometry


class ChunkBuffer:
    """Sub-piece-accurate receive buffer for one live session."""

    def __init__(self, geometry: ChunkGeometry,
                 first_chunk: int, keep_behind: int = 32) -> None:
        if keep_behind < 1:
            raise ValueError("keep_behind must be >= 1")
        self.geometry = geometry
        self.first_chunk = first_chunk
        self.keep_behind = keep_behind
        #: Highest chunk index such that every chunk in
        #: [first_chunk, have_until] is complete; first_chunk-1 when none.
        self.have_until = first_chunk - 1
        #: Partially received chunks: chunk -> bitmask of received
        #: sub-pieces (bit i == sub-piece i).
        self._partial: Dict[int, int] = {}
        #: Complete chunks above the contiguous frontier.
        self._complete_ahead: Set[int] = set()
        self.bytes_received = 0
        self.duplicate_subpieces = 0
        self.chunks_completed = 0
        # Hot-path constants: geometry is frozen, bind once.
        self._subpieces = geometry.subpieces_per_chunk
        self._full_mask = (1 << self._subpieces) - 1
        self._sizes = tuple(geometry.subpiece_size(i)
                            for i in range(self._subpieces))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_chunk(self, chunk: int) -> bool:
        """True when every sub-piece of ``chunk`` has arrived."""
        if chunk < self.first_chunk:
            return False
        return chunk <= self.have_until or chunk in self._complete_ahead

    def has_subpiece(self, chunk: int, subpiece: int) -> bool:
        if self.has_chunk(chunk):
            return True
        received = self._partial.get(chunk)
        if not received or subpiece < 0:
            return False
        return (received >> subpiece) & 1 == 1

    def has_range(self, chunk: int, first: int, last: int) -> bool:
        """True when every sub-piece in ``first..last`` has arrived."""
        if self.has_chunk(chunk):
            return True
        if first > last or first < 0:
            return False
        received = self._partial.get(chunk)
        if not received:
            return False
        span = ((1 << (last - first + 1)) - 1) << first
        return received & span == span

    def missing_mask(self, chunk: int) -> int:
        """Bitmask of sub-pieces of ``chunk`` not yet received."""
        if self.has_chunk(chunk):
            return 0
        received = self._partial.get(chunk)
        if not received:
            return self._full_mask
        return self._full_mask & ~received

    def missing_subpieces(self, chunk: int) -> list:
        """Sub-piece indices of ``chunk`` not yet received, ascending."""
        if self.has_chunk(chunk):
            return []
        received = self._partial.get(chunk)
        if not received:
            # Untouched chunk — the scheduler's common case.
            return list(range(self._subpieces))
        missing = self._full_mask & ~received
        return [i for i in range(self._subpieces) if (missing >> i) & 1]

    def completion(self, chunk: int) -> float:
        """Fraction of ``chunk``'s sub-pieces received, in [0, 1]."""
        if self.has_chunk(chunk):
            return 1.0
        received = self._partial.get(chunk, 0)
        return bin(received).count("1") / self._subpieces

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_subpiece(self, chunk: int, subpiece: int) -> bool:
        """Record one received sub-piece.  Returns True if it was new."""
        total = self._subpieces
        if not 0 <= subpiece < total:
            raise IndexError(f"sub-piece {subpiece} out of range 0..{total-1}")
        bit = 1 << subpiece
        received = self._partial.get(chunk, 0)
        if (chunk < self.first_chunk or chunk <= self.have_until
                or received & bit or chunk in self._complete_ahead):
            self.duplicate_subpieces += 1
            return False
        received |= bit
        self.bytes_received += self._sizes[subpiece]
        if received == self._full_mask:
            self._partial.pop(chunk, None)
            self._complete_ahead.add(chunk)
            self.chunks_completed += 1
            self._advance_frontier()
        else:
            self._partial[chunk] = received
        return True

    def add_range(self, chunk: int, first: int, last: int) -> int:
        """Record sub-pieces ``first..last`` inclusive; returns #new ones.

        Equivalent to calling :meth:`add_subpiece` per index (including
        the duplicate accounting and the ``IndexError`` on an index past
        the chunk end), but performed as one bitmask update.
        """
        total = self._subpieces
        if last < first:
            return 0
        if first < 0:
            raise IndexError(f"sub-piece {first} out of range 0..{total-1}")
        overflow = last >= total
        stop = total - 1 if overflow else last
        added = 0
        if stop >= first:
            count = stop - first + 1
            span = ((1 << count) - 1) << first
            if (chunk < self.first_chunk or chunk <= self.have_until
                    or chunk in self._complete_ahead):
                self.duplicate_subpieces += count
            else:
                received = self._partial.get(chunk, 0)
                fresh = span & ~received
                if fresh:
                    added = bin(fresh).count("1")
                    self.duplicate_subpieces += count - added
                    sizes = self._sizes
                    gained = 0
                    bits = fresh
                    while bits:
                        low = bits & -bits
                        gained += sizes[low.bit_length() - 1]
                        bits ^= low
                    self.bytes_received += gained
                    received |= span
                    if received == self._full_mask:
                        self._partial.pop(chunk, None)
                        self._complete_ahead.add(chunk)
                        self.chunks_completed += 1
                        self._advance_frontier()
                    else:
                        self._partial[chunk] = received
                else:
                    self.duplicate_subpieces += count
        if overflow:
            raise IndexError(f"sub-piece {total} out of range 0..{total-1}")
        return added

    def _advance_frontier(self) -> None:
        while self.have_until + 1 in self._complete_ahead:
            self._complete_ahead.discard(self.have_until + 1)
            self.have_until += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def evict_before(self, playout_chunk: int) -> int:
        """Drop partial state far behind playout; returns #chunks dropped.

        Complete chunks are summarised by ``have_until`` so only partial
        and ahead-of-frontier bookkeeping needs eviction.
        """
        horizon = playout_chunk - self.keep_behind
        stale = [c for c in self._partial if c < horizon]
        for chunk in stale:
            del self._partial[chunk]
        # A partial chunk behind playout will never complete: advance the
        # frontier past it so scheduling stops considering it.
        if self.have_until < horizon:
            self.have_until = horizon
            self._advance_frontier()
        return len(stale)

    def partial_chunks(self) -> Iterable[int]:
        return self._partial.keys()

    def advertised_have(self) -> int:
        """The availability this peer advertises to neighbors."""
        return self.have_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ChunkBuffer have_until={self.have_until} "
                f"partial={len(self._partial)} "
                f"ahead={len(self._complete_ahead)}>")
