"""Deterministic misbehaving-peer models (see docs/ROBUSTNESS.md).

A fraction of churned-in viewers can be turned adversarial by an
``adversary`` event in a :class:`repro.faults.FaultSchedule`; each
attached model misbehaves at well-defined override points inside
:class:`repro.protocol.peer.PPLivePeer` while the rest of the client
stays honest.  Every model draws only from its own
:class:`random.Random`, seeded from the fault event's stream, so
adversarial runs are byte-identical at any ``--jobs`` and across
checkpoint/resume.
"""

from .models import (ADVERSARY_BEHAVIORS, AdversaryModel, BufferMapLiar,
                     ChunkPolluter, FreeRider, RequestFlooder,
                     StalePeerlistResponder, build_adversary)

__all__ = [
    "ADVERSARY_BEHAVIORS",
    "AdversaryModel",
    "BufferMapLiar",
    "ChunkPolluter",
    "FreeRider",
    "RequestFlooder",
    "StalePeerlistResponder",
    "build_adversary",
]
