"""The five misbehaving-peer behavior models.

Each model is a small strategy object the peer consults at four
override points; the base class answers every one honestly, so a
concrete model overrides exactly the points its misbehaviour needs:

* :meth:`AdversaryModel.serve_action` — how to answer a data request
  (``"serve"`` honestly, ``"miss"`` to free-ride, ``"poison"`` to send
  a corrupted payload),
* :meth:`AdversaryModel.advertised_have` — the availability advertised
  in hellos and buffer-map announcements,
* :meth:`AdversaryModel.flood_requests` — extra junk data requests to
  emit per scheduler tick,
* :meth:`AdversaryModel.peer_list` — an override for the peer list
  served to gossip requests (``None`` = honest list).

Determinism contract: a model draws *only* from ``self.rng`` (its own
``random.Random``, seeded by the fault injector from the adversary
event's stream), never from the host peer's streams — attaching an
adversary therefore perturbs no honest peer's draw sequence, and the
honest code path never even reads these objects.  Models snapshot and
restore their full state (RNG included) for checkpoint/resume.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class AdversaryModel:
    """Base strategy: behaves honestly at every override point."""

    BEHAVIOR = ""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # Override points (honest defaults)
    # ------------------------------------------------------------------
    def serve_action(self) -> str:
        """``"serve"``, ``"miss"`` or ``"poison"`` for one data request."""
        return "serve"

    def advertised_have(self, have_until: int) -> int:
        """The availability to advertise given the honest value."""
        return have_until

    def flood_requests(self) -> int:
        """Extra junk data requests to emit this scheduler tick."""
        return 0

    def peer_list(self, candidates: Sequence, limit: int
                  ) -> Optional[List[str]]:
        """Replacement peer list, or ``None`` to answer honestly.

        ``candidates`` is the peer's candidate-pool contents (stable
        insertion order).
        """
        return None

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"behavior": self.BEHAVIOR, "seed": self.seed,
                "rng": self.rng.getstate()}

    def restore_state(self, state: dict) -> None:
        self.seed = state["seed"]
        self.rng.setstate(state["rng"])


class FreeRider(AdversaryModel):
    """Downloads normally but never uploads: every request is missed.

    The classic incentive attack — costs the swarm its upload capacity
    while consuming download capacity.  The defense is indirect: misses
    feed the requester's availability bias and cooldowns, so free-riders
    fade out of schedules; with advertise strikes on, misses against
    advertised coverage also count toward a ban.
    """

    BEHAVIOR = "free_rider"

    def serve_action(self) -> str:
        return "miss"


class ChunkPolluter(AdversaryModel):
    """Serves corrupted payloads for most requests.

    The receiver pays full download bandwidth before integrity
    verification rejects the payload (``proto.poisoned_rejected``),
    re-fetches the range elsewhere and strikes the polluter toward a
    ban.  A fraction of requests is served honestly so the polluter
    does not instantly out itself — the shape real pollution attacks
    take.
    """

    BEHAVIOR = "chunk_polluter"

    #: Probability one request is answered with a poisoned payload.
    POLLUTE_PROBABILITY = 0.8

    def serve_action(self) -> str:
        if self.rng.random() < self.POLLUTE_PROBABILITY:
            return "poison"
        return "serve"


class BufferMapLiar(AdversaryModel):
    """Advertises chunks far beyond what it will ever serve.

    Inflated availability attracts requests the liar then answers with
    misses (it genuinely lacks the data), wasting requester timeouts
    and scheduler slots.  Defended by the authoritative-miss
    availability overwrite and, in hardened profiles, advertise-miss
    strikes.
    """

    BEHAVIOR = "buffermap_liar"

    #: The lie, in chunks ahead of the honest frontier.
    LIE_MIN = 20
    LIE_MAX = 60

    def advertised_have(self, have_until: int) -> int:
        if have_until < 0:
            return have_until
        return have_until + self.rng.randint(self.LIE_MIN, self.LIE_MAX)


class RequestFlooder(AdversaryModel):
    """Hammers neighbors with junk data requests every scheduler tick.

    Each flood request targets a random neighbor and a random stale
    range; replies (or misses) land outside the flooder's real pending
    window and are discarded as duplicates.  Defended by the serve-side
    per-neighbor token bucket: capped requests are dropped, counted in
    ``proto.requests_rate_limited`` and strike the flooder.
    """

    BEHAVIOR = "request_flooder"

    #: Junk requests per scheduler tick (the honest scheduler issues at
    #: most a handful, so this multiplies a victim's serve load).
    FLOOD_PER_TICK = 4

    def flood_requests(self) -> int:
        return self.FLOOD_PER_TICK


class StalePeerlistResponder(AdversaryModel):
    """Answers gossip with its *stalest* known addresses.

    Instead of its live neighbor set, the responder refers the oldest
    entries of its candidate pool — mostly departed peers — so
    requesters waste hello timeouts on dead addresses.  Defended by the
    connect retry policy: failures back dead candidates off
    exponentially, and the requester keeps gossiping elsewhere.
    """

    BEHAVIOR = "stale_peerlist"

    def peer_list(self, candidates: Sequence, limit: int
                  ) -> Optional[List[str]]:
        stale = sorted(candidates, key=lambda c: (c.last_seen, c.address))
        return [c.address for c in stale[:min(limit, 12)]]


_MODELS = {model.BEHAVIOR: model
           for model in (FreeRider, ChunkPolluter, BufferMapLiar,
                         RequestFlooder, StalePeerlistResponder)}

#: Valid ``behavior`` values of an ``adversary`` fault event.
ADVERSARY_BEHAVIORS = tuple(sorted(_MODELS))


def build_adversary(behavior: str, seed: int) -> AdversaryModel:
    """Instantiate the model for ``behavior`` with its own RNG seed."""
    try:
        model = _MODELS[behavior]
    except KeyError:
        raise ValueError(
            f"unknown adversary behavior {behavior!r} (expected one of "
            f"{', '.join(ADVERSARY_BEHAVIORS)})") from None
    return model(seed)
