"""Trace records produced by the packet sniffer.

A :class:`PacketRecord` is what Wireshark would have shown the authors
for one UDP datagram at a probe host: timestamp, direction, endpoint
addresses, size, and the decoded application payload.  Records are
flat and immutable so the analysis pipeline can treat a trace like a
dataframe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from ..protocol import messages as m


class Direction(enum.Enum):
    """Datagram direction relative to the probe host."""

    IN = "in"
    OUT = "out"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PacketRecord:
    """One captured datagram."""

    time: float
    direction: Direction
    src: str
    dst: str
    msg_type: str
    wire_bytes: int
    packet_id: int
    payload: Any

    @property
    def remote(self) -> str:
        """The non-probe endpoint of this packet."""
        return self.src if self.direction is Direction.IN else self.dst

    def summary(self) -> Dict[str, Any]:
        """Flat dict used by the JSONL trace serialisation."""
        row: Dict[str, Any] = {
            "time": self.time,
            "dir": self.direction.value,
            "src": self.src,
            "dst": self.dst,
            "type": self.msg_type,
            "bytes": self.wire_bytes,
            "packet_id": self.packet_id,
        }
        payload = self.payload
        for field_name in ("chunk", "first", "last", "seq", "have_until",
                           "payload_bytes", "request_id", "channel_id"):
            value = getattr(payload, field_name, None)
            if value is not None:
                row[field_name] = value
        if isinstance(payload, (m.PeerListReply, m.TrackerReply)):
            row["peers"] = list(payload.peers)
        if isinstance(payload, m.PeerListRequest):
            row["enclosed"] = list(payload.enclosed)
        return row


#: Message-type names considered "data transmissions" by the analysis.
DATA_REQUEST = m.DataRequest.__name__
DATA_REPLY = m.DataReply.__name__
DATA_MISS = m.DataMiss.__name__
PEER_LIST_REQUEST = m.PeerListRequest.__name__
PEER_LIST_REPLY = m.PeerListReply.__name__
TRACKER_QUERY = m.TrackerQuery.__name__
TRACKER_REPLY = m.TrackerReply.__name__


def record_from_summary(row: Dict[str, Any]) -> "PacketRecord":
    """Rebuild a (payload-less) record from its JSONL summary.

    The reconstructed record carries a :class:`ReplayedPayload` stand-in
    exposing the summarised fields as attributes, which is all the
    analysis pipeline needs.
    """
    payload = ReplayedPayload(row)
    return PacketRecord(
        time=float(row["time"]),
        direction=Direction(row["dir"]),
        src=row["src"],
        dst=row["dst"],
        msg_type=row["type"],
        wire_bytes=int(row["bytes"]),
        packet_id=int(row["packet_id"]),
        payload=payload,
    )


class ReplayedPayload:
    """Attribute view over a summarised payload row."""

    _FIELDS = ("chunk", "first", "last", "seq", "have_until",
               "payload_bytes", "request_id", "channel_id")

    def __init__(self, row: Dict[str, Any]) -> None:
        for field_name in self._FIELDS:
            if field_name in row:
                setattr(self, field_name, row[field_name])
        if "peers" in row:
            self.peers = tuple(row["peers"])
        if "enclosed" in row:
            self.enclosed = tuple(row["enclosed"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReplayedPayload {vars(self)}>"
