"""Wireshark-equivalent packet sniffer.

A :class:`ProbeSniffer` taps the simulated network and records every
datagram whose source or destination is the monitored probe address —
"collecting all incoming and outgoing packets at the deployed hosts with
Wireshark" (paper, Section 3.1).

Two fidelity details matter:

* An *outgoing* packet is recorded when it leaves the probe (send time),
  an *incoming* one when it arrives (delivery time) — so response times
  computed from the trace include real network and queueing delay.
* Packets lost in flight towards the probe never appear, and the probe's
  own uplink drops are invisible too (the OS saw the send attempt, but we
  record at the NIC like libpcap does after the queue): unanswered
  requests therefore look exactly as they did to the authors.
"""

from __future__ import annotations

from typing import Optional

from ..network.datagram import Datagram
from ..network.transport import UdpNetwork
from .records import Direction, PacketRecord
from .store import TraceStore


class ProbeSniffer:
    """Captures one probe host's traffic into a :class:`TraceStore`."""

    def __init__(self, network: UdpNetwork, probe_address: str,
                 store: Optional[TraceStore] = None) -> None:
        self.network = network
        self.probe_address = probe_address
        self.store = store if store is not None else TraceStore(probe_address)
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProbeSniffer":
        if not self._attached:
            self.network.add_tap(self._tap)
            self._attached = True
        return self

    def stop(self) -> TraceStore:
        if self._attached:
            self.network.remove_tap(self._tap)
            self._attached = False
        return self.store

    def __enter__(self) -> "ProbeSniffer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Tap
    # ------------------------------------------------------------------
    def _tap(self, event: str, datagram: Datagram, time: float) -> None:
        if event == "send" and datagram.src == self.probe_address:
            direction = Direction.OUT
        elif event == "recv" and datagram.dst == self.probe_address:
            direction = Direction.IN
        else:
            return
        self.store.append(PacketRecord(
            time=time,
            direction=direction,
            src=datagram.src,
            dst=datagram.dst,
            msg_type=type(datagram.payload).__name__,
            wire_bytes=datagram.wire_bytes,
            packet_id=datagram.packet_id,
            payload=datagram.payload,
        ))
