"""Request/reply matching over captured traces.

Reproduces the paper's trace post-processing (Section 3.1):

* "For data requests and replies, we match them based on the IP
  addresses and transmission sub-piece sequence numbers" —
  :func:`match_data_transactions` pairs each outgoing ``DataRequest``
  with the incoming ``DataReply`` carrying the same (remote IP, seq).
* "For peer list requests and replies, ... we match the peer list reply
  to the latest request designated to the same IP address" —
  :func:`match_peerlist_transactions` implements exactly that rule (the
  wire format does carry a request id, but the matcher deliberately does
  not use it, so the analysis inherits the same ambiguity the authors
  had).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .records import (DATA_MISS, DATA_REPLY, DATA_REQUEST,
                      PEER_LIST_REPLY, PEER_LIST_REQUEST,
                      TRACKER_QUERY, TRACKER_REPLY, Direction)
from .store import TraceStore


@dataclass(frozen=True)
class DataTransaction:
    """One matched data request/reply pair."""

    remote: str
    chunk: int
    first: int
    last: int
    request_time: float
    reply_time: float
    payload_bytes: int

    @property
    def response_time(self) -> float:
        return self.reply_time - self.request_time


@dataclass(frozen=True)
class PeerListTransaction:
    """One matched peer-list request/reply pair."""

    remote: str
    request_time: float
    reply_time: float
    peers: Tuple[str, ...]

    @property
    def response_time(self) -> float:
        return self.reply_time - self.request_time


@dataclass
class MatchReport:
    """Matched transactions plus what could not be matched."""

    data: List[DataTransaction]
    data_misses: int
    unanswered_data: int
    peer_lists: List[PeerListTransaction]
    unanswered_peer_lists: int


def match_data_transactions(
        trace: TraceStore) -> Tuple[List[DataTransaction], int, int]:
    """Pair the probe's data requests with replies by (remote, seq).

    Returns ``(transactions, miss_count, unanswered_count)``.
    """
    pending: Dict[Tuple[str, int], Tuple[float, int, int, int]] = {}
    transactions: List[DataTransaction] = []
    misses = 0
    for record in trace.of_type(DATA_REQUEST, DATA_REPLY, DATA_MISS):
        payload = record.payload
        if record.msg_type == DATA_REQUEST:
            if record.direction is Direction.OUT:
                key = (record.dst, payload.seq)
                pending[key] = (record.time, payload.chunk,
                                payload.first, payload.last)
        elif record.msg_type == DATA_REPLY:
            if record.direction is Direction.IN:
                key = (record.src, payload.seq)
                sent = pending.pop(key, None)
                if sent is None:
                    continue
                request_time, chunk, first, last = sent
                transactions.append(DataTransaction(
                    remote=record.src, chunk=chunk, first=first, last=last,
                    request_time=request_time, reply_time=record.time,
                    payload_bytes=getattr(payload, "payload_bytes", 0)))
        else:  # DATA_MISS
            if record.direction is Direction.IN:
                key = (record.src, payload.seq)
                if pending.pop(key, None) is not None:
                    misses += 1
    return transactions, misses, len(pending)


def match_peerlist_transactions(
        trace: TraceStore) -> Tuple[List[PeerListTransaction], int]:
    """Pair peer-list replies with the *latest* request to the same IP.

    Returns ``(transactions, unanswered_count)``.
    """
    latest_request: Dict[str, float] = {}
    outstanding: Dict[str, int] = {}
    transactions: List[PeerListTransaction] = []
    for record in trace.of_type(PEER_LIST_REQUEST, PEER_LIST_REPLY):
        if (record.msg_type == PEER_LIST_REQUEST
                and record.direction is Direction.OUT):
            latest_request[record.dst] = record.time
            outstanding[record.dst] = outstanding.get(record.dst, 0) + 1
        elif (record.msg_type == PEER_LIST_REPLY
                and record.direction is Direction.IN):
            request_time = latest_request.get(record.src)
            if request_time is None or request_time > record.time:
                continue
            if outstanding.get(record.src, 0) <= 0:
                continue
            outstanding[record.src] -= 1
            transactions.append(PeerListTransaction(
                remote=record.src, request_time=request_time,
                reply_time=record.time,
                peers=tuple(getattr(record.payload, "peers", ()))))
    unanswered = sum(n for n in outstanding.values() if n > 0)
    return transactions, unanswered


def match_all(trace: TraceStore) -> MatchReport:
    """Run both matchers over one trace."""
    data, misses, unanswered_data = match_data_transactions(trace)
    peer_lists, unanswered_pl = match_peerlist_transactions(trace)
    return MatchReport(data=data, data_misses=misses,
                       unanswered_data=unanswered_data,
                       peer_lists=peer_lists,
                       unanswered_peer_lists=unanswered_pl)


def tracker_reply_records(trace: TraceStore):
    """Incoming tracker replies (used by the list-source accounting)."""
    return trace.incoming(TRACKER_REPLY)


def tracker_query_records(trace: TraceStore):
    return trace.outgoing(TRACKER_QUERY)
