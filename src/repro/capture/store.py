"""Trace storage.

A :class:`TraceStore` accumulates the :class:`PacketRecord` stream of one
probe host over one viewing session and offers the slicing operations the
analysis needs (by message type, direction, time window).  Traces can be
round-tripped through JSON-lines files, which makes captured workloads
shareable between the experiment harness and offline analysis, the way
the authors kept their 130 GB of pcaps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, List, Union

from .records import Direction, PacketRecord, record_from_summary


class TraceStore:
    """Append-only store of captured packets for one probe."""

    def __init__(self, probe_address: str) -> None:
        self.probe_address = probe_address
        self._records: List[PacketRecord] = []

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def append(self, record: PacketRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> PacketRecord:
        return self._records[index]

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[PacketRecord], bool]
               ) -> List[PacketRecord]:
        return [r for r in self._records if predicate(r)]

    def of_type(self, *msg_types: str) -> List[PacketRecord]:
        wanted = set(msg_types)
        return [r for r in self._records if r.msg_type in wanted]

    def incoming(self, *msg_types: str) -> List[PacketRecord]:
        wanted = set(msg_types)
        return [r for r in self._records
                if r.direction is Direction.IN
                and (not wanted or r.msg_type in wanted)]

    def outgoing(self, *msg_types: str) -> List[PacketRecord]:
        wanted = set(msg_types)
        return [r for r in self._records
                if r.direction is Direction.OUT
                and (not wanted or r.msg_type in wanted)]

    def between(self, start: float, end: float) -> List[PacketRecord]:
        return [r for r in self._records if start <= r.time < end]

    def remotes(self) -> List[str]:
        """Distinct remote endpoints observed, in first-seen order."""
        seen = {}
        for record in self._records:
            seen.setdefault(record.remote, None)
        return list(seen)

    @property
    def span(self) -> float:
        """Duration covered by the trace in seconds (0 when < 2 packets)."""
        if len(self._records) < 2:
            return 0.0
        return self._records[-1].time - self._records[0].time

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def format_packets(self, limit: int = 20, offset: int = 0) -> str:
        """Wireshark-style one-line-per-packet view (debugging aid)."""
        lines = [f"# trace of {self.probe_address} "
                 f"({len(self._records)} packets)"]
        for record in self._records[offset:offset + limit]:
            arrow = "->" if record.direction.value == "out" else "<-"
            extra = ""
            payload = record.payload
            seq = getattr(payload, "seq", None)
            chunk = getattr(payload, "chunk", None)
            if chunk is not None:
                extra = f" chunk={chunk}"
            if seq is not None:
                extra += f" seq={seq}"
            lines.append(
                f"{record.time:10.4f}  {self.probe_address} {arrow} "
                f"{record.remote:<15} {record.msg_type:<18} "
                f"{record.wire_bytes:>6}B{extra}")
        remaining = len(self._records) - offset - limit
        if remaining > 0:
            lines.append(f"... {remaining} more packets")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Write the trace as JSON lines; returns the record count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"probe": self.probe_address}) + "\n")
            for record in self._records:
                fh.write(json.dumps(record.summary()) + "\n")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "TraceStore":
        """Rebuild a trace written by :meth:`save_jsonl`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line:
                raise ValueError(f"{path}: empty trace file")
            header = json.loads(header_line)
            store = cls(probe_address=header["probe"])
            for line in fh:
                line = line.strip()
                if line:
                    store.append(record_from_summary(json.loads(line)))
        return store
