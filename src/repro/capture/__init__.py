"""Packet capture at probe hosts (S7): sniffer, trace store, matching."""

from .matching import (DataTransaction, MatchReport, PeerListTransaction,
                       match_all, match_data_transactions,
                       match_peerlist_transactions)
from .records import (DATA_MISS, DATA_REPLY, DATA_REQUEST,
                      PEER_LIST_REPLY, PEER_LIST_REQUEST, TRACKER_QUERY,
                      TRACKER_REPLY, Direction, PacketRecord,
                      record_from_summary)
from .sniffer import ProbeSniffer
from .store import TraceStore

__all__ = [
    "ProbeSniffer",
    "TraceStore",
    "PacketRecord",
    "Direction",
    "record_from_summary",
    "DataTransaction",
    "PeerListTransaction",
    "MatchReport",
    "match_data_transactions",
    "match_peerlist_transactions",
    "match_all",
    "DATA_REQUEST", "DATA_REPLY", "DATA_MISS",
    "PEER_LIST_REQUEST", "PEER_LIST_REPLY",
    "TRACKER_QUERY", "TRACKER_REPLY",
]
